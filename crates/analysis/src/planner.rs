//! The instrumentation planner: from a program and a tool profile to a
//! [`CheckPlan`].
//!
//! This is the reproduction of the paper's compilation-phase pipeline
//! (§4.4): the planner first gives every access its instruction-level check,
//! then — capability flags permitting — merges must-aliased constant-offset
//! checks (Aliased Check Elimination), hoists loop-invariant checks, promotes
//! affine in-loop checks to one pre-header region check (Check-in-Loop
//! Promotion via the SCEV-style [`crate::affine`] decomposition), and routes
//! everything else through quasi-bound history caches. The worked example is
//! Figure 8: five checks become `CI(p, p+8)`, `CI(x, x+4N)` and one cached
//! check for `y[j]`.

use std::collections::HashMap;

use giantsan_ir::{
    CacheId, CheckPlan, Expr, LoopId, LoopPlan, PreCheck, Program, PtrId, SiteAction, SiteId, Stmt,
    VarId,
};
use giantsan_runtime::AccessKind;

use crate::affine::{self, DefEnv, VarDef};
use crate::profile::ToolProfile;

/// Why a site ended up with its action (static accounting for Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteFate {
    /// Plain instruction-level check.
    Direct,
    /// Anchored operation check.
    Anchored,
    /// Carries a merged region check covering eliminated aliases.
    MergeLeader,
    /// Eliminated: covered by a merge leader.
    MergedAway,
    /// Eliminated: hoisted to a loop pre-header (invariant or affine).
    Promoted,
    /// Routed through a quasi-bound cache.
    Cached,
    /// Memory intrinsic checked as a region by the runtime guardian.
    MemIntrinsic,
    /// Eliminated: the access is provably in bounds at compile time (a
    /// constant offset into a constant-size allocation with no intervening
    /// free) — no runtime check is needed at all.
    StaticallySafe,
}

/// A produced plan plus its static accounting.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The executable plan.
    pub plan: CheckPlan,
    /// Static fate of every site, indexed by [`SiteId`].
    pub fates: Vec<SiteFate>,
}

impl Analysis {
    /// Counts sites per fate.
    pub fn fate_counts(&self) -> HashMap<SiteFate, usize> {
        let mut m = HashMap::new();
        for f in &self.fates {
            *m.entry(*f).or_insert(0) += 1;
        }
        m
    }

    /// Renders the plan human-readably: one line per site, then the
    /// per-loop pre-checks (the "instrumented source" view of Figure 8c).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, fate) in self.fates.iter().enumerate() {
            let _ = writeln!(out, "site s{i}: {}", fate.describe());
        }
        let mut loops: Vec<_> = self.plan.loops.iter().collect();
        loops.sort_by_key(|(id, _)| **id);
        for (id, lp) in loops {
            for pre in &lp.pre_checks {
                let _ = writeln!(
                    out,
                    "loop {id} pre-header: CI({} + {}, {} + {})",
                    pre.ptr, pre.lo, pre.ptr, pre.hi
                );
            }
            for (cache, ptr) in &lp.caches {
                let _ = writeln!(out, "loop {id}: quasi-bound slot #{} for {ptr}", cache.0);
            }
        }
        out
    }
}

impl SiteFate {
    /// One-line description of the fate.
    pub fn describe(self) -> &'static str {
        match self {
            SiteFate::Direct => "instruction-level check every execution",
            SiteFate::Anchored => "anchored operation check every execution",
            SiteFate::MergeLeader => "merged region check (covers aliased sites)",
            SiteFate::MergedAway => "eliminated (covered by a merged check)",
            SiteFate::Promoted => "eliminated (hoisted to a loop pre-header CI)",
            SiteFate::Cached => "history-cached (quasi-bound)",
            SiteFate::MemIntrinsic => "region-checked by the runtime guardian",
            SiteFate::StaticallySafe => "eliminated (statically in bounds)",
        }
    }
}

/// Runs the planner for `program` under `profile`.
///
/// # Example
///
/// The paper's Figure 8 merging result:
///
/// ```
/// use giantsan_analysis::{analyze, SiteFate, ToolProfile};
/// use giantsan_ir::{Expr, ProgramBuilder};
///
/// // p[0] + p[10] + p[20] — three aliased constant-offset loads into a
/// // runtime-sized buffer (a constant-size one would be statically safe).
/// let mut b = ProgramBuilder::new("alias");
/// let n = b.input(0);
/// let p = b.alloc_heap(n);
/// let _ = b.load(p, 0i64, 8);
/// let _ = b.load(p, 80i64, 8);
/// let _ = b.load(p, 160i64, 8);
/// let prog = b.build();
///
/// let a = analyze(&prog, &ToolProfile::giantsan());
/// assert_eq!(a.fates[0], SiteFate::MergeLeader);
/// assert_eq!(a.fates[1], SiteFate::MergedAway);
/// assert_eq!(a.fates[2], SiteFate::MergedAway);
/// ```
pub fn analyze(program: &Program, profile: &ToolProfile) -> Analysis {
    let mut cx = Cx {
        profile,
        env: DefEnv::new(),
        loop_stack: Vec::new(),
        loops: HashMap::new(),
        sites: vec![None; program.num_sites as usize],
        fates: vec![SiteFate::Direct; program.num_sites as usize],
        actions: vec![SiteAction::Direct; program.num_sites as usize],
        plans: HashMap::new(),
        caches: HashMap::new(),
        num_caches: 0,
        ptr_defs_in_loop: std::collections::HashSet::new(),
    };
    // Pass 0: which loops contain allocation/free barriers.
    let mut barriers: HashMap<LoopId, bool> = HashMap::new();
    mark_barriers(&program.stmts, &mut Vec::new(), &mut barriers);

    cx.walk_block(&program.stmts, &barriers);

    // Pass 2: decide remaining (unmerged) sites.
    for idx in 0..cx.sites.len() {
        if let Some(rec) = cx.sites[idx].take() {
            cx.decide(rec, &barriers);
        }
    }

    let plan = CheckPlan {
        sites: cx.actions,
        loops: cx.plans,
        num_caches: cx.num_caches,
    };
    Analysis {
        plan,
        fates: cx.fates,
    }
}

#[derive(Debug, Clone)]
struct LoopCtx {
    id: LoopId,
    var: VarId,
    lo: Expr,
    hi: Expr,
    opaque: bool,
}

#[derive(Debug, Clone)]
struct SiteRec {
    site: SiteId,
    ptr: PtrId,
    offset: Expr,
    width: u8,
    kind: AccessKind,
    loops: Vec<LoopCtx>,
}

#[derive(Debug, Clone)]
struct GroupEntry {
    site: SiteId,
    offset: i64,
    width: u8,
    kind: AccessKind,
}

struct Cx<'a> {
    profile: &'a ToolProfile,
    env: DefEnv,
    loop_stack: Vec<LoopCtx>,
    loops: HashMap<LoopId, LoopCtx>,
    /// Sites awaiting a pass-2 decision.
    sites: Vec<Option<SiteRec>>,
    fates: Vec<SiteFate>,
    actions: Vec<SiteAction>,
    plans: HashMap<LoopId, LoopPlan>,
    caches: HashMap<(LoopId, PtrId), CacheId>,
    num_caches: u32,
    /// `(ptr, loop)` pairs where the pointer is (re)defined inside the loop
    /// body: neither promotion nor caching is sound for such accesses — the
    /// pointer's value changes across iterations.
    ptr_defs_in_loop: std::collections::HashSet<(PtrId, LoopId)>,
}

fn mark_barriers(stmts: &[Stmt], stack: &mut Vec<LoopId>, out: &mut HashMap<LoopId, bool>) {
    for s in stmts {
        match s {
            Stmt::Alloc { .. } | Stmt::Free { .. } | Stmt::Realloc { .. } => {
                for l in stack.iter() {
                    out.insert(*l, true);
                }
            }
            Stmt::For { id, body, .. } => {
                stack.push(*id);
                out.entry(*id).or_insert(false);
                mark_barriers(body, stack, out);
                stack.pop();
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                mark_barriers(then_body, stack, out);
                mark_barriers(else_body, stack, out);
            }
            Stmt::Frame { body } => mark_barriers(body, stack, out),
            _ => {}
        }
    }
}

impl Cx<'_> {
    fn current_loops(&self) -> Vec<LoopId> {
        self.loop_stack.iter().map(|l| l.id).collect()
    }

    fn note_ptr_def(&mut self, ptr: PtrId) {
        for l in &self.loop_stack {
            self.ptr_defs_in_loop.insert((ptr, l.id));
        }
    }

    fn record_site(&mut self, rec: SiteRec) {
        let idx = rec.site.0 as usize;
        self.sites[idx] = Some(rec);
    }

    /// Walks a statement block, performing must-alias merging and
    /// static-safety elision inline.
    #[allow(clippy::only_used_in_recursion)]
    fn walk_block(&mut self, stmts: &[Stmt], barriers: &HashMap<LoopId, bool>) {
        // Constant-offset access groups per pointer within this block.
        let mut groups: HashMap<PtrId, Vec<GroupEntry>> = HashMap::new();
        // Pointers holding a fresh allocation of statically known size
        // (block-local and killed on free/realloc/redefinition): constant
        // accesses provably inside need no check at all.
        let mut fresh_sizes: HashMap<PtrId, i64> = HashMap::new();
        for s in stmts {
            match s {
                Stmt::Let { var, expr } => {
                    self.env.insert(
                        *var,
                        VarDef::Let {
                            expr: expr.clone(),
                            loops: self.current_loops(),
                        },
                    );
                }
                Stmt::Alloc { ptr, size, .. } => {
                    // Redefinition barrier for this pointer, and a general
                    // conservative barrier (allocation can recycle memory).
                    self.note_ptr_def(*ptr);
                    self.flush_group(&mut groups, Some(*ptr));
                    match affine::const_eval(size) {
                        Some(c) if c > 0 => fresh_sizes.insert(*ptr, c),
                        _ => fresh_sizes.remove(ptr),
                    };
                }
                Stmt::Free { ptr, .. } => {
                    self.flush_all(&mut groups);
                    fresh_sizes.remove(ptr);
                }
                Stmt::Realloc { ptr, new_size } => {
                    // Both a free and a redefinition of the pointer.
                    self.note_ptr_def(*ptr);
                    self.flush_all(&mut groups);
                    match affine::const_eval(new_size) {
                        Some(c) if c > 0 => fresh_sizes.insert(*ptr, c),
                        _ => fresh_sizes.remove(ptr),
                    };
                }
                Stmt::PtrCopy { dst, .. } => {
                    self.note_ptr_def(*dst);
                    self.flush_group(&mut groups, Some(*dst));
                    fresh_sizes.remove(dst);
                }
                Stmt::Load {
                    site,
                    ptr,
                    offset,
                    width,
                    dst,
                } => {
                    if let Some(d) = dst {
                        self.env.insert(
                            *d,
                            VarDef::Load {
                                loops: self.current_loops(),
                            },
                        );
                    }
                    self.access(
                        *site,
                        *ptr,
                        offset,
                        *width,
                        AccessKind::Read,
                        &mut groups,
                        &fresh_sizes,
                    );
                }
                Stmt::Store {
                    site,
                    ptr,
                    offset,
                    width,
                    ..
                } => {
                    self.access(
                        *site,
                        *ptr,
                        offset,
                        *width,
                        AccessKind::Write,
                        &mut groups,
                        &fresh_sizes,
                    );
                }
                Stmt::MemSet { site, .. }
                | Stmt::MemCpy { site, .. }
                | Stmt::StrCpy { site, .. } => {
                    // Intrinsics are checked as regions by the runtime
                    // guardian for every tool.
                    self.actions[site.0 as usize] = SiteAction::Direct;
                    self.fates[site.0 as usize] = SiteFate::MemIntrinsic;
                }
                Stmt::For {
                    id,
                    var,
                    lo,
                    hi,
                    opaque_bound,
                    body,
                    ..
                } => {
                    self.flush_all(&mut groups);
                    let ctx = LoopCtx {
                        id: *id,
                        var: *var,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        opaque: *opaque_bound,
                    };
                    self.loop_stack.push(ctx.clone());
                    self.loops.insert(*id, ctx);
                    self.env.insert(
                        *var,
                        VarDef::Induction {
                            of: *id,
                            loops: self.current_loops(),
                        },
                    );
                    self.walk_block(body, barriers);
                    self.loop_stack.pop();
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.flush_all(&mut groups);
                    self.walk_block(then_body, barriers);
                    self.walk_block(else_body, barriers);
                }
                Stmt::Frame { body } => {
                    self.flush_all(&mut groups);
                    self.walk_block(body, barriers);
                }
            }
        }
        self.flush_all(&mut groups);
    }

    #[allow(clippy::too_many_arguments)]
    fn access(
        &mut self,
        site: SiteId,
        ptr: PtrId,
        offset: &Expr,
        width: u8,
        kind: AccessKind,
        groups: &mut HashMap<PtrId, Vec<GroupEntry>>,
        fresh_sizes: &HashMap<PtrId, i64>,
    ) {
        let rec = SiteRec {
            site,
            ptr,
            offset: offset.clone(),
            width,
            kind,
            loops: self.loop_stack.clone(),
        };
        self.record_site(rec);
        if self.profile.elimination {
            if let Some(c) = affine::const_eval(offset) {
                // Statically in bounds of a fresh constant-size allocation:
                // no runtime check needed at all.
                if let Some(&size) = fresh_sizes.get(&ptr) {
                    if c >= 0 && c + width as i64 <= size {
                        self.actions[site.0 as usize] = SiteAction::Skip;
                        self.fates[site.0 as usize] = SiteFate::StaticallySafe;
                        self.sites[site.0 as usize] = None;
                        return;
                    }
                }
                groups.entry(ptr).or_default().push(GroupEntry {
                    site,
                    offset: c,
                    width,
                    kind,
                });
                return;
            }
        }
        // Non-constant offsets end any group on this pointer: merging across
        // them could reorder a check past a redzone-crossing access.
        self.flush_group(groups, Some(ptr));
    }

    fn flush_all(&mut self, groups: &mut HashMap<PtrId, Vec<GroupEntry>>) {
        let ptrs: Vec<PtrId> = groups.keys().copied().collect();
        for p in ptrs {
            self.flush_group(groups, Some(p));
        }
    }

    fn flush_group(&mut self, groups: &mut HashMap<PtrId, Vec<GroupEntry>>, ptr: Option<PtrId>) {
        let Some(ptr) = ptr else { return };
        let Some(entries) = groups.remove(&ptr) else {
            return;
        };
        if entries.len() < 2 {
            return; // single access: decided in pass 2
        }
        let lo = entries.iter().map(|e| e.offset).min().expect("nonempty");
        let hi = entries
            .iter()
            .map(|e| e.offset + e.width as i64)
            .max()
            .expect("nonempty");
        // With a linear guardian (ASan--), a merged region check walks one
        // shadow byte per covered segment: only merge when that walk is
        // cheaper than the per-access checks it replaces.
        if self.profile.linear_region_checks {
            let hull_segments = ((hi - lo) as u64).div_ceil(8);
            if hull_segments >= entries.len() as u64 {
                return;
            }
        }
        let lo = if self.profile.anchored { lo.min(0) } else { lo };
        let kind = if entries.iter().any(|e| e.kind == AccessKind::Write) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let leader = entries
            .iter()
            .map(|e| e.site)
            .min()
            .expect("nonempty group");
        for e in &entries {
            if e.site == leader {
                self.actions[e.site.0 as usize] = SiteAction::Region {
                    lo: Expr::Const(lo),
                    hi: Expr::Const(hi),
                };
                self.fates[e.site.0 as usize] = SiteFate::MergeLeader;
            } else {
                self.actions[e.site.0 as usize] = SiteAction::Skip;
                self.fates[e.site.0 as usize] = SiteFate::MergedAway;
            }
            // A merged site needs no pass-2 decision. Record the leader's
            // kind on the region by rewriting through the site table.
            self.sites[e.site.0 as usize] = None;
            let _ = kind;
        }
    }

    /// Pass-2 decision for one unmerged site.
    fn decide(&mut self, rec: SiteRec, barriers: &HashMap<LoopId, bool>) {
        let idx = rec.site.0 as usize;
        if let Some(inner) = rec.loops.last().cloned() {
            let has_barrier = barriers.get(&inner.id).copied().unwrap_or(false);
            // A pointer whose value changes inside the loop can be neither
            // promoted (the pre-check would test a stale pointer) nor cached
            // (the quasi-bound would describe a previous iteration's object).
            let ptr_varies = self.ptr_defs_in_loop.contains(&(rec.ptr, inner.id));
            if self.profile.operation_level && !has_barrier && !ptr_varies {
                if let Some(aff) = affine::decompose(&rec.offset, inner.id, inner.var, &self.env) {
                    let promotable = if aff.coeff == 0 {
                        // Loop-invariant check: hoist (needs elimination,
                        // the ASan-- style optimisation).
                        self.profile.elimination
                    } else {
                        // Affine: needs a knowable trip count.
                        !inner.opaque && self.bounds_invariant(&inner)
                    };
                    if promotable {
                        let (lo, hi) = self.promoted_range(&aff, &inner, rec.width);
                        // Multi-level hoisting: widen the hull through each
                        // enclosing loop whose induction variable it is
                        // affine in, as long as the loop being left provably
                        // runs (constant bounds, positive trip — lifting
                        // past a possibly-empty loop would fire checks for
                        // accesses that never execute), the enclosing loop
                        // has no allocation barrier, and the pointer is not
                        // redefined there.
                        let (target, lo, hi) =
                            self.hoist_hull(&rec.loops, lo, hi, rec.ptr, barriers);
                        let lo = self.anchor_lower(lo);
                        self.plans
                            .entry(target)
                            .or_default()
                            .pre_checks
                            .push(PreCheck {
                                ptr: rec.ptr,
                                lo,
                                hi,
                                kind: rec.kind,
                            });
                        self.actions[idx] = SiteAction::Skip;
                        self.fates[idx] = SiteFate::Promoted;
                        return;
                    }
                }
            }
            if self.profile.caching && !ptr_varies {
                let cache = *self.caches.entry((inner.id, rec.ptr)).or_insert_with(|| {
                    let id = CacheId(self.num_caches);
                    self.num_caches += 1;
                    self.plans
                        .entry(inner.id)
                        .or_default()
                        .caches
                        .push((id, rec.ptr));
                    id
                });
                self.actions[idx] = SiteAction::Cached { cache };
                self.fates[idx] = SiteFate::Cached;
                return;
            }
        }
        if self.profile.anchored {
            self.actions[idx] = SiteAction::Anchored;
            self.fates[idx] = SiteFate::Anchored;
        } else {
            self.actions[idx] = SiteAction::Direct;
            self.fates[idx] = SiteFate::Direct;
        }
    }

    /// Hoists a promoted hull `[lo, hi)` outward through the loop stack,
    /// widening it over each induction variable it is affine in. Returns the
    /// loop to attach the pre-check to and the widened hull.
    fn hoist_hull(
        &self,
        stack: &[LoopCtx],
        mut lo: Expr,
        mut hi: Expr,
        ptr: PtrId,
        barriers: &HashMap<LoopId, bool>,
    ) -> (LoopId, Expr, Expr) {
        let mut level = stack.len() - 1;
        while level > 0 {
            let current = &stack[level];
            let parent = &stack[level - 1];
            // The loop being left must provably execute at least once, so
            // the widened endpoints correspond to accesses that really run.
            let trip_positive = matches!(
                (affine::const_eval(&current.lo), affine::const_eval(&current.hi)),
                (Some(l), Some(h)) if h > l
            );
            if !trip_positive
                || barriers.get(&parent.id).copied().unwrap_or(false)
                || self.ptr_defs_in_loop.contains(&(ptr, parent.id))
            {
                break;
            }
            // Widen the hull over the *parent's* induction variable: the
            // bounds may still reference it after leaving `current`.
            let (Some(alo), Some(ahi)) = (
                affine::decompose(&lo, parent.id, parent.var, &self.env),
                affine::decompose(&hi, parent.id, parent.var, &self.env),
            ) else {
                break;
            };
            let plo = || parent.lo.clone();
            let phi = || parent.hi.clone() - 1;
            lo = affine::fold(if alo.coeff >= 0 {
                plo() * alo.coeff + alo.base
            } else {
                phi() * alo.coeff + alo.base
            });
            hi = affine::fold(if ahi.coeff >= 0 {
                phi() * ahi.coeff + ahi.base
            } else {
                plo() * ahi.coeff + ahi.base
            });
            level -= 1;
        }
        (stack[level].id, lo, hi)
    }

    /// Anchors a provably non-negative constant lower offset at the object
    /// base (§4.4.1) for anchored profiles.
    fn anchor_lower(&self, lo: Expr) -> Expr {
        if self.profile.anchored {
            if let Some(c) = lo.as_const() {
                if c >= 0 {
                    return Expr::Const(0);
                }
            }
        }
        lo
    }

    /// Are the loop's bound expressions invariant inside the loop itself?
    /// (They are evaluated at entry, but promotion also re-reads them in the
    /// pre-check, so anything defined *inside* the loop disqualifies.)
    fn bounds_invariant(&self, l: &LoopCtx) -> bool {
        let check = |e: &Expr| {
            e.vars().iter().all(|v| match self.env.get(v) {
                None => true,
                Some(d) => match d {
                    VarDef::Induction { loops, .. }
                    | VarDef::Let { loops, .. }
                    | VarDef::Load { loops } => !loops.contains(&l.id),
                },
            })
        };
        check(&l.lo) && check(&l.hi)
    }

    /// Builds the `[lo, hi)` offset expressions of a promoted check:
    /// `CI(x + min, x + max + width)` over the loop's iteration range, with
    /// the anchor folded in for anchored tools (Figure 8c's `CI(x, x+4N)`).
    fn promoted_range(&self, aff: &affine::Affine, l: &LoopCtx, width: u8) -> (Expr, Expr) {
        let a = aff.coeff;
        let b = || aff.base.clone();
        let lo_i = || l.lo.clone();
        let hi_i = || l.hi.clone() - 1;
        let (mut lo, hi) = if a >= 0 {
            (
                affine::fold(lo_i() * a + b()),
                affine::fold(hi_i() * a + b() + width as i64),
            )
        } else {
            (
                affine::fold(hi_i() * a + b()),
                affine::fold(lo_i() * a + b() + width as i64),
            )
        };
        if self.profile.anchored {
            // Anchor at the base pointer when the static lower offset is a
            // provably non-negative constant.
            if let Some(c) = lo.as_const() {
                if c >= 0 {
                    lo = Expr::Const(0);
                }
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::ProgramBuilder;

    /// The paper's Figure 8a program.
    fn figure8() -> Program {
        let mut b = ProgramBuilder::new("figure8");
        let n = b.input(0);
        // int *x = p[0]; int *y = p[1]; modelled as two buffers.
        let x = b.alloc_heap(Expr::input(0) * 4);
        let y = b.alloc_heap(Expr::input(0) * 4 + 1024);
        b.for_loop(0i64, n, |b, i| {
            let j = b.load(x, Expr::var(i) * 4, 4); // site 0
            b.store(y, Expr::var(j) * 4, 4, Expr::var(i)); // site 1
        });
        b.memset(x, 0i64, Expr::input(0) * 4, 0i64); // site 2
        b.free(x);
        b.free(y);
        b.build()
    }

    #[test]
    fn figure8_giantsan_plan_matches_figure_8c() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        // x[i] promoted to CI(x, x+4N); y[j] cached; memset checked as region.
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Cached);
        assert_eq!(a.fates[2], SiteFate::MemIntrinsic);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks.len(), 1);
        assert_eq!(lp.caches.len(), 1);
        assert_eq!(a.plan.num_caches, 1);
        // The promoted region is [0, 4N): anchored at x.
        assert_eq!(lp.pre_checks[0].lo, Expr::Const(0));
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[100]), 400);
    }

    #[test]
    fn figure8_asan_plan_is_all_direct() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::asan());
        assert_eq!(a.fates[0], SiteFate::Direct);
        assert_eq!(a.fates[1], SiteFate::Direct);
        assert!(a.plan.loops.is_empty());
        assert_eq!(a.plan.num_caches, 0);
    }

    #[test]
    fn figure8_asan_mm_promotes_but_does_not_cache() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Direct, "no caching in ASan--");
        // Non-anchored: the promoted range keeps its computed lower bound.
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo.eval(&[], &[100]), 0);
    }

    #[test]
    fn cache_only_profile_caches_everything_in_loops() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan_cache_only());
        assert_eq!(a.fates[0], SiteFate::Cached);
        assert_eq!(a.fates[1], SiteFate::Cached);
        assert_eq!(a.plan.num_caches, 2);
    }

    #[test]
    fn elimination_only_promotes_and_anchors_the_rest() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan_elimination_only());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        assert_eq!(a.fates[1], SiteFate::Anchored);
    }

    #[test]
    fn opaque_bounds_block_promotion() {
        let mut b = ProgramBuilder::new("opaque");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        b.for_loop_opaque(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Cached);
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Direct);
    }

    #[test]
    fn frees_inside_loops_block_promotion() {
        let mut b = ProgramBuilder::new("barrier");
        let n = b.input(0);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
            let q = b.alloc_heap(16);
            b.free(q);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(
            a.fates[0],
            SiteFate::Cached,
            "allocation churn in the loop must force the cached path"
        );
    }

    #[test]
    fn invariant_access_hoisted() {
        let mut b = ProgramBuilder::new("invariant");
        let n = b.input(0);
        let p = b.alloc_heap(64);
        b.for_loop(0i64, n, |b, _| {
            b.load_discard(p, 8i64, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo, Expr::Const(8));
        assert_eq!(lp.pre_checks[0].hi, Expr::Const(16));
    }

    #[test]
    fn reverse_affine_promotes_with_flipped_range() {
        let mut b = ProgramBuilder::new("rev");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        b.for_loop_rev(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        // Direction does not matter for the range: still [0, 8N).
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[64]), 512);
    }

    #[test]
    fn negative_stride_promotion() {
        let mut b = ProgramBuilder::new("negstride");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        // offset = 8*(N-1) - 8*i: walks backward with a forward loop.
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, (Expr::input(0) - 1) * 8 - Expr::var(i) * 8, 8);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        let lp = &a.plan.loops[&LoopId(0)];
        // For N = 4: region [0, 32).
        assert_eq!(lp.pre_checks[0].lo.eval(&[], &[4]), 0);
        assert_eq!(lp.pre_checks[0].hi.eval(&[], &[4]), 32);
    }

    #[test]
    fn merging_respects_barriers() {
        let mut b = ProgramBuilder::new("barrier2");
        let p = b.alloc_heap(64);
        b.load_discard(p, 0i64, 8);
        b.free(p);
        let q = b.alloc_heap(64);
        let _ = q;
        b.load_discard(p, 8i64, 8); // use-after-free, separately checked
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_ne!(a.fates[0], SiteFate::MergedAway);
        assert_ne!(a.fates[1], SiteFate::MergedAway);
    }

    #[test]
    fn merged_region_covers_hull_and_underflow_keeps_sign() {
        let mut b = ProgramBuilder::new("hull");
        let n = b.input(0);
        let p = b.alloc_heap(n);
        b.store(p, 16i64, 8, 1i64);
        b.load_discard(p, 40i64, 4);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        match &a.plan.sites[0] {
            SiteAction::Region { lo, hi } => {
                // Anchored: extends down to the base.
                assert_eq!(lo, &Expr::Const(0));
                assert_eq!(hi, &Expr::Const(44));
            }
            other => panic!("expected region, got {other:?}"),
        }
        // For ASan--, the hull spans 6 segments but only replaces 2 checks:
        // the linear guardian makes that merge unprofitable, so it is
        // refused.
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.plan.sites[0], SiteAction::Direct);
        assert_eq!(a.plan.sites[1], SiteAction::Direct);
    }

    #[test]
    fn asan_mm_merges_only_when_profitable() {
        // Three 8-byte accesses inside one 16-byte hull: the 2-segment walk
        // replaces 3 checks — profitable even for a linear guardian.
        let mut b = ProgramBuilder::new("dense");
        let n = b.input(0);
        let p = b.alloc_heap(n);
        b.load_discard(p, 0i64, 8);
        b.load_discard(p, 4i64, 8);
        b.load_discard(p, 8i64, 8);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        assert_eq!(a.fates[0], SiteFate::MergeLeader);
        assert_eq!(a.fates[1], SiteFate::MergedAway);
        assert_eq!(a.fates[2], SiteFate::MergedAway);
        match &a.plan.sites[0] {
            SiteAction::Region { lo, hi } => {
                assert_eq!(lo, &Expr::Const(0));
                assert_eq!(hi, &Expr::Const(16));
            }
            other => panic!("expected region, got {other:?}"),
        }
    }

    #[test]
    fn lfp_profile_anchors_every_site() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::lfp());
        assert_eq!(a.fates[0], SiteFate::Anchored);
        assert_eq!(a.fates[1], SiteFate::Anchored);
        assert!(a.plan.loops.is_empty());
    }

    #[test]
    fn constant_nests_hoist_to_the_outermost_loop() {
        // A stencil-style nest with constant inner bounds: the promoted
        // check climbs to the outer (runtime-bounded) loop and runs once per
        // outer iteration instead of once per row.
        let mut b = ProgramBuilder::new("nest");
        let steps = b.input(0);
        let p = b.alloc_heap(64 * 64 * 8);
        b.for_loop(0i64, steps, |b, _| {
            b.for_loop(1i64, 63i64, |b, y| {
                b.for_loop(1i64, 63i64, |b, x| {
                    b.load_discard(p, (Expr::var(y) * 64 + Expr::var(x)) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        // The pre-check lives on the outermost loop (id 0), anchored at the
        // base for the anchored profile.
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks.len(), 1);
        assert_eq!(lp.pre_checks[0].lo.as_const(), Some(0));
        assert_eq!(lp.pre_checks[0].hi.as_const(), Some((62 * 64 + 62) * 8 + 8));
        assert!(!a.plan.loops.contains_key(&LoopId(2)));
        // The non-anchored profile keeps the true widened lower offset.
        let a = analyze(&prog, &ToolProfile::asan_minus_minus());
        let lp = &a.plan.loops[&LoopId(0)];
        assert_eq!(lp.pre_checks[0].lo.as_const(), Some((64 + 1) * 8));
    }

    #[test]
    fn hoisting_stops_at_possibly_empty_loops() {
        // The middle loop's bound is a runtime input: it may run zero times,
        // so lifting the inner check past it would fire for accesses that
        // never happen. The check must stay on the inner loop.
        let mut b = ProgramBuilder::new("maybe-empty");
        let outer_n = b.input(0);
        let mid_n = b.input(1);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, outer_n, |b, _| {
            b.for_loop(0i64, mid_n.clone(), |b, _| {
                b.for_loop(0i64, 8i64, |b, x| {
                    b.load_discard(p, Expr::var(x) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::Promoted);
        // Hoisted out of the constant x-loop (id 2) to the mid loop (id 1),
        // but no further: the mid loop's own trip is not provably positive.
        assert!(a.plan.loops.contains_key(&LoopId(1)));
        assert!(!a.plan.loops.contains_key(&LoopId(0)));
        // Soundness at runtime: mid_n = 0 with a tiny buffer must not
        // report.
        let mut b = ProgramBuilder::new("maybe-empty-2");
        let outer_n = b.input(0);
        let mid_n = b.input(1);
        let p = b.alloc_heap(8);
        b.for_loop(0i64, outer_n, |b, _| {
            b.for_loop(0i64, mid_n.clone(), |b, _| {
                b.for_loop(0i64, 8i64, |b, x| {
                    b.load_discard(p, Expr::var(x) * 8, 8);
                });
            });
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let mut san = giantsan_core::GiantSan::new(giantsan_runtime::RuntimeConfig::small());
        let r = giantsan_ir::run(
            &prog,
            &[5, 0],
            &mut san,
            &a.plan,
            &giantsan_ir::ExecConfig::default(),
        );
        assert!(r.reports.is_empty(), "{:?}", r.reports.first());
    }

    #[test]
    fn strcpy_sites_are_guardian_checked() {
        let mut b = ProgramBuilder::new("strcpy");
        let src = b.alloc_heap(64);
        let dst = b.alloc_heap(64);
        b.strcpy(dst, 0i64, src, 0i64);
        let prog = b.build();
        for profile in [ToolProfile::giantsan(), ToolProfile::asan()] {
            let a = analyze(&prog, &profile);
            assert_eq!(a.fates[0], SiteFate::MemIntrinsic, "{}", profile.name);
        }
    }

    #[test]
    fn realloc_blocks_promotion_and_caching() {
        // The pointer is redefined by realloc inside the loop: neither a
        // hoisted pre-check nor a cache slot may survive the move.
        let mut b = ProgramBuilder::new("realloc-loop");
        let n = b.input(0);
        let p = b.alloc_heap(4096);
        b.for_loop(0i64, n, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
            b.realloc(p, 4096i64);
        });
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert!(
            matches!(a.fates[0], SiteFate::Anchored | SiteFate::Direct),
            "got {:?}",
            a.fates[0]
        );
        assert_eq!(a.plan.num_caches, 0);
        assert!(a.plan.loops.is_empty() || a.plan.loops[&LoopId(0)].pre_checks.is_empty());
    }

    #[test]
    fn fate_counts_sum_to_sites() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let total: usize = a.fate_counts().values().sum();
        assert_eq!(total, prog.num_sites as usize);
    }

    #[test]
    fn statically_safe_accesses_need_no_check() {
        // Constant offsets inside a fresh constant-size allocation: zero
        // runtime checks; the same offsets past the size still get checks.
        let mut b = ProgramBuilder::new("static");
        let p = b.alloc_heap(48);
        b.store(p, 0i64, 8, 1i64);
        b.store(p, 40i64, 8, 2i64);
        b.load_discard(p, 44i64, 4); // 44+4 = 48: still inside
        b.load_discard(p, 48i64, 1); // one past: needs a check
        b.free(p);
        b.load_discard(p, 0i64, 8); // after free: freshness is dead
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_eq!(a.fates[0], SiteFate::StaticallySafe);
        assert_eq!(a.fates[1], SiteFate::StaticallySafe);
        assert_eq!(a.fates[2], SiteFate::StaticallySafe);
        assert_ne!(a.fates[3], SiteFate::StaticallySafe);
        assert_ne!(a.fates[4], SiteFate::StaticallySafe);
        // ASan (no elimination) still checks everything.
        let a = analyze(&prog, &ToolProfile::asan());
        assert!(a.fates.iter().all(|f| *f == SiteFate::Direct));
    }

    #[test]
    fn static_safety_is_block_local_and_killed_by_redefinition() {
        let mut b = ProgramBuilder::new("static-scope");
        let p = b.alloc_heap(64);
        // Inside a nested construct: freshness does not propagate.
        b.if_nonzero(1i64, |b| {
            b.store(p, 0i64, 8, 1i64);
        });
        // Redefinition by ptr_add kills it for the alias.
        let q = b.ptr_add(p, 8i64);
        b.store(q, 0i64, 8, 2i64);
        let prog = b.build();
        let a = analyze(&prog, &ToolProfile::giantsan());
        assert_ne!(a.fates[0], SiteFate::StaticallySafe, "nested block");
        assert_ne!(a.fates[1], SiteFate::StaticallySafe, "derived pointer");
    }

    #[test]
    fn render_shows_sites_and_prechecks() {
        let prog = figure8();
        let a = analyze(&prog, &ToolProfile::giantsan());
        let s = a.render();
        assert!(s.contains("site s0: eliminated (hoisted"), "{s}");
        assert!(s.contains("site s1: history-cached"), "{s}");
        assert!(s.contains("pre-header: CI(p0 + 0, p0 +"), "{s}");
        assert!(s.contains("quasi-bound slot #0 for p1"), "{s}");
    }
}
