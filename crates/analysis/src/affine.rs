//! Affine (SCEV-style) decomposition of offset expressions.
//!
//! The paper's check-in-loop promotion (§4.4.2) relies on LLVM's scalar
//! evolution to express a loop access's offset as `a·i + b` with `a`
//! constant and `b` loop-invariant. This module performs the same
//! decomposition over mini-IR expressions, substituting through `let`
//! definitions and refusing anything that depends on a value loaded inside
//! the loop (the `y[x[i]]` pattern of Figure 8, which must fall back to
//! history caching).

use std::collections::HashMap;

use giantsan_ir::{Expr, LoopId, VarId};

/// Where and how a variable was defined, for invariance reasoning.
#[derive(Debug, Clone)]
pub enum VarDef {
    /// Induction variable of the given loop; `loops` is the enclosing loop
    /// stack *including* that loop.
    Induction {
        /// The loop this variable indexes.
        of: LoopId,
        /// Loop stack at the definition.
        loops: Vec<LoopId>,
    },
    /// Defined by `let var = expr`.
    Let {
        /// The defining expression.
        expr: Expr,
        /// Loop stack at the definition.
        loops: Vec<LoopId>,
    },
    /// Defined by a memory load: a runtime-opaque value.
    Load {
        /// Loop stack at the definition.
        loops: Vec<LoopId>,
    },
}

impl VarDef {
    fn loops(&self) -> &[LoopId] {
        match self {
            VarDef::Induction { loops, .. }
            | VarDef::Let { loops, .. }
            | VarDef::Load { loops } => loops,
        }
    }

    /// A definition varies across iterations of `target` iff it happened
    /// inside `target`'s body.
    fn varies_in(&self, target: LoopId) -> bool {
        self.loops().contains(&target)
    }
}

/// Definition environment: one entry per variable, in SSA fashion (the
/// builder never reassigns a variable except loop induction variables).
pub type DefEnv = HashMap<VarId, VarDef>;

/// The result of decomposing an offset w.r.t. a loop's induction variable:
/// `offset = coeff · i + base`, with `base` loop-invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Affine {
    /// Constant coefficient of the induction variable.
    pub coeff: i64,
    /// Loop-invariant remainder.
    pub base: Expr,
}

const MAX_DEPTH: u32 = 24;

/// Decomposes `expr` as `coeff · ivar + base` with `base` invariant in
/// `target`. Returns `None` when the expression is not affine in `ivar` or
/// depends on a value produced inside the loop.
///
/// # Example
///
/// ```
/// use giantsan_analysis::affine::{decompose, DefEnv};
/// use giantsan_ir::{Expr, LoopId, VarId};
///
/// let i = VarId(0);
/// let env = DefEnv::new();
/// let a = decompose(&(Expr::var(i) * 4 + 8), LoopId(0), i, &env).unwrap();
/// assert_eq!(a.coeff, 4);
/// assert_eq!(a.base.eval(&[], &[]), 8);
/// ```
pub fn decompose(expr: &Expr, target: LoopId, ivar: VarId, env: &DefEnv) -> Option<Affine> {
    go(expr, target, ivar, env, 0)
}

fn go(expr: &Expr, target: LoopId, ivar: VarId, env: &DefEnv, depth: u32) -> Option<Affine> {
    if depth > MAX_DEPTH {
        return None;
    }
    match expr {
        Expr::Const(_) | Expr::Input(_) => Some(Affine {
            coeff: 0,
            base: expr.clone(),
        }),
        // A dynamically-indexed input is invariant iff its index is; even
        // then it is data, not an affine function of the induction variable.
        Expr::InputDyn(e) => {
            let inner = go(e, target, ivar, env, depth + 1)?;
            if inner.coeff == 0 {
                Some(Affine {
                    coeff: 0,
                    base: expr.clone(),
                })
            } else {
                None
            }
        }
        Expr::Var(v) if *v == ivar => Some(Affine {
            coeff: 1,
            base: Expr::Const(0),
        }),
        Expr::Var(v) => match env.get(v) {
            None => Some(Affine {
                coeff: 0,
                base: expr.clone(),
            }),
            Some(def) if !def.varies_in(target) => Some(Affine {
                coeff: 0,
                base: expr.clone(),
            }),
            Some(VarDef::Let { expr: e, .. }) => go(e, target, ivar, env, depth + 1),
            Some(_) => None, // load or inner induction inside the loop
        },
        Expr::Add(a, b) => {
            let a = go(a, target, ivar, env, depth + 1)?;
            let b = go(b, target, ivar, env, depth + 1)?;
            Some(Affine {
                coeff: a.coeff.checked_add(b.coeff)?,
                base: fold(a.base + b.base),
            })
        }
        Expr::Sub(a, b) => {
            let a = go(a, target, ivar, env, depth + 1)?;
            let b = go(b, target, ivar, env, depth + 1)?;
            Some(Affine {
                coeff: a.coeff.checked_sub(b.coeff)?,
                base: fold(a.base - b.base),
            })
        }
        Expr::Mul(a, b) => {
            let a = go(a, target, ivar, env, depth + 1)?;
            let b = go(b, target, ivar, env, depth + 1)?;
            match (a.base.as_const(), b.base.as_const()) {
                // const * affine
                (Some(c), _) if a.coeff == 0 => Some(Affine {
                    coeff: b.coeff.checked_mul(c)?,
                    base: fold(b.base * c),
                }),
                // affine * const
                (_, Some(c)) if b.coeff == 0 => Some(Affine {
                    coeff: a.coeff.checked_mul(c)?,
                    base: fold(a.base * c),
                }),
                // invariant * invariant
                _ if a.coeff == 0 && b.coeff == 0 => Some(Affine {
                    coeff: 0,
                    base: fold(a.base * b.base),
                }),
                _ => None,
            }
        }
    }
}

/// Light constant folding to keep promoted-check expressions small.
pub fn fold(e: Expr) -> Expr {
    match e {
        Expr::Add(a, b) => match (fold(*a), fold(*b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_add(y)),
            (Expr::Const(0), y) => y,
            (x, Expr::Const(0)) => x,
            (x, y) => Expr::Add(Box::new(x), Box::new(y)),
        },
        Expr::Sub(a, b) => match (fold(*a), fold(*b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_sub(y)),
            (x, Expr::Const(0)) => x,
            (x, y) => Expr::Sub(Box::new(x), Box::new(y)),
        },
        Expr::Mul(a, b) => match (fold(*a), fold(*b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.wrapping_mul(y)),
            (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
            (Expr::Const(1), y) => y,
            (x, Expr::Const(1)) => x,
            (x, y) => Expr::Mul(Box::new(x), Box::new(y)),
        },
        e => e,
    }
}

/// Fully folds an expression to a constant if it only involves constants.
pub fn const_eval(e: &Expr) -> Option<i64> {
    fold(e.clone()).as_const()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop0() -> (LoopId, VarId) {
        (LoopId(0), VarId(0))
    }

    #[test]
    fn simple_affine_forms() {
        let (l, i) = loop0();
        let env = DefEnv::new();
        let cases: Vec<(Expr, i64, i64)> = vec![
            (Expr::var(i), 1, 0),
            (Expr::var(i) * 8, 8, 0),
            (Expr::var(i) * 4 + 16, 4, 16),
            (Expr::Const(100) - Expr::var(i) * 4, -4, 100),
            (Expr::Const(7), 0, 7),
        ];
        for (e, coeff, base) in cases {
            let a = decompose(&e, l, i, &env).unwrap();
            assert_eq!(a.coeff, coeff, "{e}");
            assert_eq!(a.base.eval(&[], &[]), base, "{e}");
        }
    }

    #[test]
    fn substitutes_through_lets() {
        let (l, i) = loop0();
        let j = VarId(1);
        let mut env = DefEnv::new();
        env.insert(
            j,
            VarDef::Let {
                expr: Expr::var(i) * 2 + 1,
                loops: vec![l],
            },
        );
        // offset = j * 4 = 8i + 4.
        let a = decompose(&(Expr::var(j) * 4), l, i, &env).unwrap();
        assert_eq!(a.coeff, 8);
        assert_eq!(a.base.eval(&[], &[]), 4);
    }

    #[test]
    fn loaded_values_block_promotion() {
        let (l, i) = loop0();
        let j = VarId(1);
        let mut env = DefEnv::new();
        env.insert(j, VarDef::Load { loops: vec![l] });
        assert!(decompose(&(Expr::var(j) * 4), l, i, &env).is_none());
    }

    #[test]
    fn values_from_outside_the_loop_are_invariant() {
        let (l, i) = loop0();
        let n = VarId(1);
        let mut env = DefEnv::new();
        env.insert(n, VarDef::Load { loops: vec![] });
        let a = decompose(&(Expr::var(i) * 4 + Expr::var(n)), l, i, &env).unwrap();
        assert_eq!(a.coeff, 4);
        assert_eq!(a.base, Expr::var(n));
    }

    #[test]
    fn outer_induction_is_invariant_in_inner_loop() {
        let outer = LoopId(0);
        let inner = LoopId(1);
        let oi = VarId(0);
        let ii = VarId(1);
        let mut env = DefEnv::new();
        env.insert(
            oi,
            VarDef::Induction {
                of: outer,
                loops: vec![outer],
            },
        );
        env.insert(
            ii,
            VarDef::Induction {
                of: inner,
                loops: vec![outer, inner],
            },
        );
        // offset = oi*64 + ii*8, decomposed w.r.t. the inner loop.
        let e = Expr::var(oi) * 64 + Expr::var(ii) * 8;
        let a = decompose(&e, inner, ii, &env).unwrap();
        assert_eq!(a.coeff, 8);
        assert!(a.base.uses_any(&[oi]));
        // And w.r.t. the outer loop, the inner induction blocks it.
        assert!(decompose(&e, outer, oi, &env).is_none());
    }

    #[test]
    fn non_affine_rejected() {
        let (l, i) = loop0();
        let env = DefEnv::new();
        assert!(decompose(&(Expr::var(i) * Expr::var(i)), l, i, &env).is_none());
        // variable (non-const) coefficient
        let n = VarId(1);
        assert!(decompose(&(Expr::var(i) * Expr::var(n)), l, i, &env).is_none());
    }

    #[test]
    fn invariant_times_invariant_ok() {
        let (l, i) = loop0();
        let env = DefEnv::new();
        let e = Expr::input(0) * Expr::input(1) + Expr::var(i);
        let a = decompose(&e, l, i, &env).unwrap();
        assert_eq!(a.coeff, 1);
    }

    #[test]
    #[allow(clippy::erasing_op)]
    fn folding() {
        assert_eq!(const_eval(&(Expr::Const(3) * 4 + 2)), Some(14));
        assert_eq!(fold(Expr::var(VarId(0)) * 1), Expr::var(VarId(0)));
        assert_eq!(fold(Expr::var(VarId(0)) * 0), Expr::Const(0));
        assert_eq!(fold(Expr::Const(0) + Expr::input(0)), Expr::input(0));
        assert_eq!(const_eval(&Expr::var(VarId(0))), None);
    }
}
