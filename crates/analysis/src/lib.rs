#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Static analyses and the instrumentation planner.
//!
//! Reproduces the compilation phase of GiantSan (§4.4): given a mini-IR
//! program and a [`ToolProfile`] describing a sanitizer's capabilities, the
//! planner produces a [`giantsan_ir::CheckPlan`] that the interpreter
//! executes. The analyses are the four of the paper's Table 1:
//!
//! | Analysis | Module | Effect |
//! |---|---|---|
//! | constant propagation | [`affine::const_eval`] | must-alias merging of constant-offset checks |
//! | predefined semantics | (interpreter) | `memset`/`memcpy` checked as one region |
//! | loop bound analysis (SCEV) | [`affine::decompose`] | check-in-loop promotion |
//! | must-alias analysis | [`analyze`] | aliased check elimination |
//!
//! plus history-cache assignment (§4.3) for whatever promotion cannot cover.
//!
//! The planner is organised as a pass pipeline (see [`pipeline`]): each
//! analysis above is a discrete pass over a shared context, profiles are
//! declarative [`PassSet`]s, and every site records which pass decided it
//! ([`Provenance`]) along with per-pass [`PassStats`].
//!
//! # Example
//!
//! ```
//! use giantsan_analysis::{analyze, ToolProfile};
//! use giantsan_ir::{Expr, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("loop");
//! let n = b.input(0);
//! let buf = b.alloc_heap(Expr::input(0) * 8);
//! b.for_loop(0i64, n, |b, i| {
//!     b.store(buf, Expr::var(i) * 8, 8, Expr::var(i));
//! });
//! let prog = b.build();
//!
//! // GiantSan promotes the N per-iteration checks into one CI(buf, buf+8N).
//! let analysis = analyze(&prog, &ToolProfile::giantsan());
//! assert_eq!(analysis.plan.loops.len(), 1);
//! ```

pub mod affine;
mod passes;
pub mod pipeline;
mod planner;
mod profile;

pub use pipeline::{PassId, PassManager, PassSet, PassStats, Provenance};
pub use planner::{analyze, analyze_recorded, Analysis, SiteFate};
pub use profile::ToolProfile;
