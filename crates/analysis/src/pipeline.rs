//! The planner's pass pipeline: an LLVM-style pass manager over a shared
//! analysis context.
//!
//! [`analyze`](crate::analyze) used to be one monolithic walker; it is now a
//! [`PassManager`] running discrete passes in a fixed canonical order (see
//! [`PassId::PIPELINE`]), each reading and extending one shared
//! `AnalysisCtx`. A [`crate::ToolProfile`] selects which passes run — the
//! paper's capability flags (§4.3–§4.4) are exactly pass subsets — and every
//! pass records:
//!
//! - per-pass statistics ([`PassStats`]: sites visited / transformed /
//!   eliminated, wall time), and
//! - a per-site provenance trace ([`Provenance`]: which pass decided the
//!   site's fate, and why).
//!
//! # Ordering constraints
//!
//! The canonical order is not arbitrary (DESIGN.md §12):
//!
//! 1. `const-prop` is structural: it builds the definition environment, the
//!    loop table, allocation barriers and the site records every later pass
//!    consumes, and settles memory intrinsics. It always runs.
//! 2. `must-alias` must precede `static-safety` and `merge` (it discovers
//!    both the candidate groups and the fresh-allocation sizes).
//! 3. `static-safety` must precede `merge`: statically-safe sites leave
//!    their group before the merge hull is computed.
//! 4. `merge` must precede `promote`, and `promote` must precede `cache`:
//!    each pass only considers sites the earlier passes left undecided.
//! 5. `loop-bounds` may run anywhere before `promote` (its only consumer).
//! 6. `anchor` runs after all placement decisions: it upgrades the leftover
//!    sites to anchored operation checks and rewrites provably non-negative
//!    constant lower bounds (of merged regions and promoted pre-checks) to
//!    the object base (§4.4.1).
//! 7. `finalize` is structural and last: whatever is still undecided gets a
//!    plain instruction-level check.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use giantsan_ir::{CacheId, CheckPlan, Expr, LoopId, LoopPlan, Program, PtrId, SiteAction, VarId};
use giantsan_runtime::AccessKind;

use crate::affine::DefEnv;
use crate::passes;
use crate::planner::{Analysis, SiteFate};
use crate::profile::ToolProfile;

/// Identity of one pipeline stage, in canonical execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PassId {
    /// Structural: constant propagation plus context building (definition
    /// environment, loop table, barriers, site records, intrinsic fates).
    ConstProp,
    /// Must-alias grouping of constant-offset accesses per pointer.
    MustAlias,
    /// Loop trip-count and bound-invariance facts (SCEV-style).
    LoopBounds,
    /// Elision of accesses provably inside a fresh constant-size allocation.
    StaticSafety,
    /// Aliased-check elimination: one region check per must-alias group.
    Merge,
    /// Check-in-loop promotion of affine/invariant accesses to pre-headers.
    Promote,
    /// Quasi-bound history-cache assignment (§4.3).
    Cache,
    /// Anchored operation checks and lower-bound anchoring (§4.4.1).
    Anchor,
    /// Structural: leftover sites get plain instruction-level checks.
    Finalize,
}

impl PassId {
    /// Every pass, in the canonical pipeline order.
    pub const PIPELINE: [PassId; 9] = [
        PassId::ConstProp,
        PassId::MustAlias,
        PassId::LoopBounds,
        PassId::StaticSafety,
        PassId::Merge,
        PassId::Promote,
        PassId::Cache,
        PassId::Anchor,
        PassId::Finalize,
    ];

    /// Short name used in reports and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            PassId::ConstProp => "const-prop",
            PassId::MustAlias => "must-alias",
            PassId::LoopBounds => "loop-bounds",
            PassId::StaticSafety => "static-safety",
            PassId::Merge => "merge",
            PassId::Promote => "promote",
            PassId::Cache => "cache",
            PassId::Anchor => "anchor",
            PassId::Finalize => "finalize",
        }
    }

    /// Structural passes build context or settle leftovers; they run for
    /// every profile and cannot be disabled.
    pub fn is_structural(self) -> bool {
        matches!(self, PassId::ConstProp | PassId::Finalize)
    }

    const fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

/// A set of enabled passes: the declarative form of a tool configuration.
///
/// The two structural passes ([`PassId::ConstProp`], [`PassId::Finalize`])
/// are members of every set built from [`PassSet::structural`] and cannot be
/// removed with [`PassSet::without`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PassSet(u16);

impl PassSet {
    /// The set containing no passes at all (not even structural ones); the
    /// pass manager still runs structural passes regardless.
    pub const fn empty() -> Self {
        PassSet(0)
    }

    /// The minimal set: just the always-run structural passes.
    pub fn structural() -> Self {
        PassSet::empty()
            .with(PassId::ConstProp)
            .with(PassId::Finalize)
    }

    /// Every pass in the pipeline.
    pub fn full() -> Self {
        PassId::PIPELINE
            .iter()
            .fold(PassSet::empty(), |s, p| s.with(*p))
    }

    /// Returns the set with `pass` added.
    #[must_use]
    pub const fn with(self, pass: PassId) -> Self {
        PassSet(self.0 | pass.bit())
    }

    /// Returns the set with `pass` removed. Structural passes are kept: the
    /// pipeline cannot run without them.
    #[must_use]
    pub fn without(self, pass: PassId) -> Self {
        if pass.is_structural() {
            self
        } else {
            PassSet(self.0 & !pass.bit())
        }
    }

    /// Is `pass` in the set?
    pub const fn contains(self, pass: PassId) -> bool {
        self.0 & pass.bit() != 0
    }

    /// The member passes, in canonical pipeline order.
    pub fn iter(self) -> impl Iterator<Item = PassId> {
        PassId::PIPELINE
            .into_iter()
            .filter(move |p| self.contains(*p))
    }

    /// Number of member passes.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no pass is a member.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Debug for PassSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut set = f.debug_set();
        for p in self.iter() {
            set.entry(&p.name());
        }
        set.finish()
    }
}

/// Which pass decided a site's fate, and the pass's own one-line reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// The deciding pass.
    pub pass: PassId,
    /// Human-readable justification recorded at decision time.
    pub reason: String,
}

/// Observability record for one pipeline stage of one [`analyze`] run.
///
/// [`analyze`]: crate::analyze
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Which pass this row describes.
    pub pass: PassId,
    /// Whether the profile enabled the pass (structural passes always are).
    pub enabled: bool,
    /// Sites (or loops, for `loop-bounds`) the pass examined.
    pub visited: u64,
    /// Sites whose plan entry the pass rewrote.
    pub transformed: u64,
    /// Sites whose runtime check the pass removed entirely.
    pub eliminated: u64,
    /// Wall time spent inside the pass.
    pub wall: Duration,
}

/// Per-pass counters returned by a pass run; the manager wraps them into
/// [`PassStats`] together with the enable flag and wall time.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PassOutcome {
    pub visited: u64,
    pub transformed: u64,
    pub eliminated: u64,
}

/// A loop's static description, as seen on the walk stack.
#[derive(Debug, Clone)]
pub(crate) struct LoopCtx {
    pub id: LoopId,
    pub var: VarId,
    pub lo: Expr,
    pub hi: Expr,
    pub opaque: bool,
}

/// One access site awaiting a placement decision.
#[derive(Debug, Clone)]
pub(crate) struct SiteRec {
    pub ptr: PtrId,
    pub offset: Expr,
    pub width: u8,
    pub kind: AccessKind,
    /// Enclosing loop stack at the access, outermost first.
    pub loops: Vec<LoopCtx>,
}

/// A must-alias candidate group: constant-offset accesses to one pointer
/// with no intervening kill, in site order.
#[derive(Debug, Clone)]
pub(crate) struct AliasGroup {
    pub ptr: PtrId,
    /// Member site indices, in access order.
    pub members: Vec<usize>,
}

/// The shared mutable state every pass reads and extends.
///
/// Facts flow strictly forward: `const-prop` fills the environment and site
/// tables, `must-alias` the groups and freshness records, `loop-bounds` the
/// per-loop facts; the deciding passes then consume those and write
/// decisions (action + fate + provenance) per site.
pub(crate) struct AnalysisCtx<'p> {
    pub program: &'p Program,
    pub profile: &'p ToolProfile,
    /// The pass set the manager is scheduling (pass-internal policy, e.g.
    /// promote's invariant-hoist rule, consults this rather than the
    /// profile so a hand-built manager stays self-consistent).
    pub enabled: PassSet,

    // -- facts from const-prop (structural) --
    pub env: DefEnv,
    pub loops: HashMap<LoopId, LoopCtx>,
    pub barriers: HashMap<LoopId, bool>,
    pub ptr_defs_in_loop: HashSet<(PtrId, LoopId)>,
    pub sites: Vec<Option<SiteRec>>,
    pub const_offsets: Vec<Option<i64>>,

    // -- facts from must-alias --
    pub groups: Vec<AliasGroup>,
    pub fresh_at_site: Vec<Option<i64>>,

    // -- facts from loop-bounds --
    pub trip_positive: HashMap<LoopId, bool>,
    pub bounds_invariant: HashMap<LoopId, bool>,

    // -- decisions --
    pub actions: Vec<SiteAction>,
    pub fates: Vec<SiteFate>,
    pub provenance: Vec<Option<Provenance>>,
    pub decided: Vec<bool>,
    pub plans: HashMap<LoopId, LoopPlan>,
    pub caches: HashMap<(LoopId, PtrId), CacheId>,
    pub num_caches: u32,
}

impl<'p> AnalysisCtx<'p> {
    pub(crate) fn new(program: &'p Program, profile: &'p ToolProfile, enabled: PassSet) -> Self {
        let n = program.num_sites as usize;
        AnalysisCtx {
            program,
            profile,
            enabled,
            env: DefEnv::new(),
            loops: HashMap::new(),
            barriers: HashMap::new(),
            ptr_defs_in_loop: HashSet::new(),
            sites: vec![None; n],
            const_offsets: vec![None; n],
            groups: Vec::new(),
            fresh_at_site: vec![None; n],
            trip_positive: HashMap::new(),
            bounds_invariant: HashMap::new(),
            actions: vec![SiteAction::Direct; n],
            fates: vec![SiteFate::Direct; n],
            provenance: vec![None; n],
            decided: vec![false; n],
            plans: HashMap::new(),
            caches: HashMap::new(),
            num_caches: 0,
        }
    }

    /// Finalises one site: action, fate, provenance, and no further pass may
    /// touch it.
    pub(crate) fn decide_site(
        &mut self,
        idx: usize,
        action: SiteAction,
        fate: SiteFate,
        pass: PassId,
        reason: String,
    ) {
        self.actions[idx] = action;
        self.fates[idx] = fate;
        self.decided[idx] = true;
        self.provenance[idx] = Some(Provenance { pass, reason });
    }
}

/// Schedules and runs the pipeline for one profile.
///
/// # Example
///
/// ```
/// use giantsan_analysis::{PassId, PassManager, ToolProfile};
/// use giantsan_ir::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new("tiny");
/// let p = b.alloc_heap(64);
/// b.load_discard(p, 0i64, 8);
/// let prog = b.build();
///
/// let profile = ToolProfile::giantsan();
/// let a = PassManager::for_profile(&profile).run(&prog, &profile);
/// assert_eq!(a.pass_stats.len(), PassId::PIPELINE.len());
/// assert!(a.pass_stats.iter().all(|s| s.enabled));
/// ```
#[derive(Debug, Clone)]
pub struct PassManager {
    enabled: PassSet,
}

impl PassManager {
    /// A manager scheduling exactly `enabled` (plus the structural passes,
    /// which always run).
    pub fn new(enabled: PassSet) -> Self {
        PassManager { enabled }
    }

    /// The manager for a profile's declared pass set.
    pub fn for_profile(profile: &ToolProfile) -> Self {
        PassManager::new(profile.passes())
    }

    /// The scheduled pass set.
    pub fn enabled(&self) -> PassSet {
        self.enabled
    }

    /// Runs the pipeline over `program`, producing the plan, the fate and
    /// provenance tables, and one [`PassStats`] row per pipeline stage
    /// (disabled stages appear with `enabled: false` and zero counters).
    ///
    /// `profile` supplies pass-internal policy that is not a pass on/off
    /// switch — today the runtime's region-check cost model
    /// ([`ToolProfile::linear_region_checks`]).
    pub fn run(&self, program: &Program, profile: &ToolProfile) -> Analysis {
        self.run_recorded(program, profile, &mut giantsan_telemetry::NoopRecorder)
    }

    /// [`PassManager::run`] with a telemetry [`Recorder`] attached: each
    /// pipeline stage additionally emits one [`EventKind::Pass`] event
    /// carrying its counters (the deterministic subset of [`PassStats`] —
    /// wall time stays out of the data plane).
    ///
    /// [`Recorder`]: giantsan_telemetry::Recorder
    /// [`EventKind::Pass`]: giantsan_telemetry::EventKind::Pass
    pub fn run_recorded<R: giantsan_telemetry::Recorder>(
        &self,
        program: &Program,
        profile: &ToolProfile,
        rec: &mut R,
    ) -> Analysis {
        let mut cx = AnalysisCtx::new(program, profile, self.enabled);
        let mut stats = Vec::with_capacity(PassId::PIPELINE.len());
        for pass in passes::registry() {
            let id = pass.id();
            let enabled = id.is_structural() || self.enabled.contains(id);
            let start = Instant::now();
            let out = if enabled {
                pass.run(&mut cx)
            } else {
                PassOutcome::default()
            };
            if R::ENABLED {
                rec.record(giantsan_telemetry::EventKind::Pass {
                    pass: id.name(),
                    enabled,
                    visited: out.visited,
                    transformed: out.transformed,
                    eliminated: out.eliminated,
                });
            }
            stats.push(PassStats {
                pass: id,
                enabled,
                visited: out.visited,
                transformed: out.transformed,
                eliminated: out.eliminated,
                wall: start.elapsed(),
            });
        }
        Analysis {
            plan: CheckPlan {
                sites: cx.actions,
                loops: cx.plans,
                num_caches: cx.num_caches,
            },
            fates: cx.fates,
            provenance: cx.provenance,
            pass_stats: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order_is_canonical_and_complete() {
        assert_eq!(PassId::PIPELINE.len(), 9);
        assert_eq!(PassId::PIPELINE[0], PassId::ConstProp);
        assert_eq!(PassId::PIPELINE[8], PassId::Finalize);
        // Strictly ascending: PassId's derive(Ord) matches pipeline order.
        assert!(PassId::PIPELINE.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn structural_passes_cannot_be_removed() {
        let s = PassSet::structural();
        assert_eq!(s.without(PassId::ConstProp), s);
        assert_eq!(s.without(PassId::Finalize), s);
        assert!(PassSet::full()
            .without(PassId::Cache)
            .contains(PassId::Merge));
        assert!(!PassSet::full()
            .without(PassId::Cache)
            .contains(PassId::Cache));
    }

    #[test]
    fn pass_set_debug_lists_names() {
        let s = PassSet::structural().with(PassId::Cache);
        let d = format!("{s:?}");
        assert!(d.contains("const-prop") && d.contains("cache"), "{d}");
    }

    #[test]
    fn pass_set_iter_is_in_pipeline_order() {
        let s = PassSet::empty()
            .with(PassId::Anchor)
            .with(PassId::ConstProp)
            .with(PassId::Merge);
        let v: Vec<PassId> = s.iter().collect();
        assert_eq!(v, vec![PassId::ConstProp, PassId::Merge, PassId::Anchor]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(PassSet::empty().is_empty());
    }

    #[test]
    fn disabled_passes_report_zero_counters() {
        let mut b = giantsan_ir::ProgramBuilder::new("t");
        let p = b.alloc_heap(64);
        b.load_discard(p, 0i64, 8);
        let prog = b.build();
        let profile = ToolProfile::asan();
        let a = PassManager::for_profile(&profile).run(&prog, &profile);
        let cache = a
            .pass_stats
            .iter()
            .find(|s| s.pass == PassId::Cache)
            .unwrap();
        assert!(!cache.enabled);
        assert_eq!(cache.visited + cache.transformed + cache.eliminated, 0);
        let scan = a
            .pass_stats
            .iter()
            .find(|s| s.pass == PassId::ConstProp)
            .unwrap();
        assert!(scan.enabled, "structural passes run for every profile");
        assert!(scan.visited > 0);
    }
}
