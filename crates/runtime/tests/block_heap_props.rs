//! Property tests for the Immix-style block/line heap: over random op
//! streams interleaving acquires and releases across several arenas, live
//! slots never overlap, every placement stays inside its arena's block
//! range, and `bytes_in_use` / `high_water` track a byte-wise model
//! exactly. A threaded smoke test drives the same heap through a mutex
//! from real concurrent arenas.

use std::sync::Mutex;

use proptest::prelude::*;

use giantsan_runtime::block_heap::{BLOCK_SIZE, MEDIUM_MAX};
use giantsan_runtime::{BlockHeap, HeapError};
use giantsan_shadow::Addr;

const HEAP_LO: u64 = 0x1_0000;

/// Ops per generated stream (the strategy vectors share this length).
const STREAM: usize = 96;

fn heap(blocks: u64, arenas: u32) -> BlockHeap {
    let lo = Addr::new(HEAP_LO);
    BlockHeap::new(lo, Addr::new(HEAP_LO + blocks * BLOCK_SIZE), arenas)
}

/// Block range `[start, end)` owned by `arena`, mirroring the partition in
/// `BlockHeap::new`: equal shares, the last arena absorbing the remainder.
fn arena_bounds(blocks: u64, arenas: u32, arena: u32) -> (u64, u64) {
    let per = blocks / arenas as u64;
    let first = arena as u64 * per;
    let last = if arena + 1 == arenas {
        blocks
    } else {
        first + per
    };
    (HEAP_LO + first * BLOCK_SIZE, HEAP_LO + last * BLOCK_SIZE)
}

/// One live allocation as the model sees it.
#[derive(Debug, Clone, Copy)]
struct Live {
    addr: u64,
    /// The caller's request length — `release` must be called with it.
    request: u64,
    /// Bytes the heap reserved (`Placement::slot_len`).
    reserved: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random acquire/release streams across arenas: placements stay in
    /// their arena, live ranges never overlap, accounting matches a
    /// byte-wise model, and draining everything returns the heap to empty
    /// with every block back in a free pool.
    #[test]
    fn op_streams_keep_slots_disjoint_and_accounting_exact(
        arenas in 1u32..=4,
        // Parallel streams decoded per op: kind < 3 acquires, else releases;
        // band < 3 picks a class-sized request, else a span.
        kinds in prop::collection::vec(0u32..5, STREAM),
        bands in prop::collection::vec(0u32..4, STREAM),
        class_lens in prop::collection::vec(1u64..=MEDIUM_MAX, STREAM),
        span_lens in prop::collection::vec(MEDIUM_MAX + 1..=3 * BLOCK_SIZE, STREAM),
        arena_picks in prop::collection::vec(0u32..4, STREAM),
        victims in prop::collection::vec(0usize..usize::MAX, STREAM),
    ) {
        let blocks = 512u64;
        let mut h = heap(blocks, arenas);
        let total_free = h.free_blocks();
        let mut live: Vec<Live> = Vec::new();
        let mut model_in_use = 0u64;
        let mut model_high = 0u64;

        for i in 0..STREAM {
            if kinds[i] < 3 {
                let arena = arena_picks[i] % arenas;
                let len = if bands[i] < 3 { class_lens[i] } else { span_lens[i] };
                let (addr, p) = match h.acquire_in(arena, len) {
                    Ok(got) => got,
                    Err(HeapError::OutOfMemory { .. }) => continue,
                    Err(e) => panic!("acquire_in({arena}, {len}): {e}"),
                };
                prop_assert_eq!(p.arena, arena, "placement reports the requested arena");
                prop_assert!(p.slot_len >= len, "reservation covers the request");
                let (lo, hi) = arena_bounds(blocks, arenas, arena);
                prop_assert!(
                    addr.raw() >= lo && addr.raw() + p.slot_len <= hi,
                    "slot [{:#x}, {:#x}) escapes arena {} [{:#x}, {:#x})",
                    addr.raw(), addr.raw() + p.slot_len, arena, lo, hi
                );
                for l in &live {
                    let disjoint = addr.raw() + p.slot_len <= l.addr
                        || l.addr + l.reserved <= addr.raw();
                    prop_assert!(
                        disjoint,
                        "slot [{:#x}, {:#x}) overlaps live [{:#x}, {:#x})",
                        addr.raw(), addr.raw() + p.slot_len, l.addr, l.addr + l.reserved
                    );
                }
                live.push(Live { addr: addr.raw(), request: len, reserved: p.slot_len });
                model_in_use += p.slot_len;
                model_high = model_high.max(model_in_use);
            } else {
                if live.is_empty() {
                    continue;
                }
                let l = live.swap_remove(victims[i] % live.len());
                h.release(Addr::new(l.addr), l.request).unwrap();
                model_in_use -= l.reserved;
            }
            prop_assert_eq!(h.bytes_in_use(), model_in_use, "bytes_in_use tracks the model");
            prop_assert_eq!(h.high_water(), model_high, "high_water is the running peak");
        }

        // Drain everything: accounting returns to zero and every block is
        // back in a free pool (drained class blocks and spans both recycle).
        for l in live.drain(..) {
            h.release(Addr::new(l.addr), l.request).unwrap();
        }
        prop_assert_eq!(h.bytes_in_use(), 0u64);
        prop_assert_eq!(h.high_water(), model_high, "draining does not lower the peak");
        prop_assert_eq!(h.free_blocks(), total_free, "all blocks return to the free pools");

        // Released capacity is reusable: the next acquire of any class from
        // any arena succeeds on the fully drained heap.
        for arena in 0..arenas {
            prop_assert!(h.acquire_in(arena, 64).is_ok());
        }
    }

    /// Releasing with a length that rounds to a different reservation than
    /// the original request is rejected and leaves accounting untouched.
    #[test]
    fn mismatched_release_is_rejected_without_side_effects(
        len in 1u64..=2 * BLOCK_SIZE,
    ) {
        let mut h = heap(64, 1);
        let (addr, p) = h.acquire_in(0, len).unwrap();
        let before = h.bytes_in_use();
        // Adding three whole blocks always changes the derived reservation:
        // a class request becomes a span, a span grows by three blocks.
        let wrong = len + 3 * BLOCK_SIZE;
        prop_assert!(matches!(
            h.release(addr, wrong),
            Err(HeapError::UnknownBlock { .. })
        ));
        prop_assert_eq!(h.bytes_in_use(), before);
        // The slot is still live and releasable with the true length.
        h.release(addr, len).unwrap();
        prop_assert_eq!(h.bytes_in_use(), before - p.slot_len);
    }
}

/// Real threads hammering distinct arenas through a mutex: every placement
/// lands in the caller's arena and no two user ranges overlap — the same
/// guarantee the `mt-arenas` study cell checks, at unit-test scale.
#[test]
fn concurrent_arenas_never_hand_out_overlapping_slots() {
    const THREADS: u32 = 4;
    const PER_THREAD: usize = 2_000;
    // Roughly a third of the allocations stay live and a fifth of those are
    // whole-block spans, so give each arena a comfortable 1024 blocks.
    let blocks = 4_096;
    let h = Mutex::new(heap(blocks, THREADS));
    let mut ranges: Vec<(u64, u64, u32)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|arena| {
                let h = &h;
                s.spawn(move || {
                    let sizes = [16u64, 96, 160, 1_000, 9_000];
                    // (addr, reserved, original request) per live slot.
                    let mut mine: Vec<(u64, u64, u64)> = Vec::with_capacity(PER_THREAD);
                    for i in 0..PER_THREAD {
                        let len = sizes[i % sizes.len()];
                        let (addr, p) = h.lock().unwrap().acquire_in(arena, len).unwrap();
                        assert_eq!(p.arena, arena);
                        mine.push((addr.raw(), p.slot_len, len));
                        // Churn every third slot so holes interleave with
                        // bump allocation under contention.
                        if i % 3 == 2 {
                            let (a, _, request) = mine.swap_remove(mine.len() / 2);
                            h.lock().unwrap().release(Addr::new(a), request).unwrap();
                        }
                    }
                    mine.into_iter()
                        .map(|(a, r, _)| (a, r, arena))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|j| j.join().unwrap())
            .collect()
    });
    ranges.sort_unstable();
    for w in ranges.windows(2) {
        let (a, len, _) = w[0];
        let (b, _, _) = w[1];
        assert!(
            a + len <= b,
            "live slots [{a:#x}+{len}) and [{b:#x}) overlap"
        );
    }
    let blocks_per_arena = blocks / THREADS as u64;
    for &(addr, len, arena) in &ranges {
        let lo = HEAP_LO + arena as u64 * blocks_per_arena * BLOCK_SIZE;
        let hi = lo + blocks_per_arena * BLOCK_SIZE;
        assert!(addr >= lo && addr + len <= hi, "slot escaped arena {arena}");
    }
}
