//! First-fit free-list heap over a range of the simulated address space.
//!
//! The heap deals purely in address-range bookkeeping — bytes live in the
//! [`giantsan_shadow::AddressSpace`] — which keeps allocation policy
//! independent from data storage, exactly like a real allocator's metadata
//! being out-of-band. Blocks handed out are always 8-byte aligned (the
//! paper's and ASan's baseline assumption, §4.1).

use std::collections::BTreeMap;
use std::fmt;

use giantsan_shadow::{align_up, Addr, SEGMENT_SIZE};

/// Error returned when the heap cannot serve a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// No free block large enough for the request.
    OutOfMemory {
        /// Bytes requested (including redzones).
        requested: u64,
    },
    /// The freed address does not correspond to an outstanding block.
    UnknownBlock {
        /// Address passed to `release`.
        addr: Addr,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "simulated heap exhausted serving {requested} bytes")
            }
            HeapError::UnknownBlock { addr } => {
                write!(f, "release of unknown heap block at {addr}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// A first-fit free-list allocator over `[lo, hi)`.
///
/// # Example
///
/// ```
/// use giantsan_runtime::SimHeap;
/// use giantsan_shadow::Addr;
///
/// let mut heap = SimHeap::new(Addr::new(0x1_0000), Addr::new(0x2_0000));
/// let a = heap.acquire(100)?;
/// assert_eq!(a.raw() % 8, 0);
/// heap.release(a, 100)?;
/// # Ok::<(), giantsan_runtime::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimHeap {
    lo: Addr,
    hi: Addr,
    /// Free blocks keyed by start address; values are lengths. Invariant:
    /// blocks are disjoint, non-empty, sorted, and never adjacent (adjacent
    /// blocks are coalesced on release).
    free: BTreeMap<u64, u64>,
    /// Outstanding blocks keyed by start, for double-release detection.
    live: BTreeMap<u64, u64>,
    bytes_in_use: u64,
    high_water: u64,
}

impl SimHeap {
    /// Creates a heap over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not segment aligned.
    pub fn new(lo: Addr, hi: Addr) -> Self {
        assert!(lo < hi, "empty heap range");
        assert!(lo.is_segment_aligned() && hi.is_segment_aligned());
        let mut free = BTreeMap::new();
        free.insert(lo.raw(), hi - lo);
        SimHeap {
            lo,
            hi,
            free,
            live: BTreeMap::new(),
            bytes_in_use: 0,
            high_water: 0,
        }
    }

    /// Lowest address managed by the heap.
    pub fn lo(&self) -> Addr {
        self.lo
    }

    /// One past the highest address managed by the heap.
    pub fn hi(&self) -> Addr {
        self.hi
    }

    /// Bytes currently handed out (including callers' redzones).
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes_in_use
    }

    /// Peak of [`SimHeap::bytes_in_use`] over the heap's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Acquires a block of at least `len` bytes (rounded up to 8).
    ///
    /// First-fit over the sorted free list: deterministic and, combined with
    /// the quarantine, reproduces the address-reuse behaviour temporal-error
    /// detection depends on.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when no block fits.
    pub fn acquire(&mut self, len: u64) -> Result<Addr, HeapError> {
        let len = align_up(len.max(1), SEGMENT_SIZE);
        let found = self
            .free
            .iter()
            .find(|(_, &blen)| blen >= len)
            .map(|(&start, &blen)| (start, blen));
        let (start, blen) = found.ok_or(HeapError::OutOfMemory { requested: len })?;
        self.free.remove(&start);
        if blen > len {
            self.free.insert(start + len, blen - len);
        }
        self.live.insert(start, len);
        self.bytes_in_use += len;
        self.high_water = self.high_water.max(self.bytes_in_use);
        Ok(Addr::new(start))
    }

    /// Returns a block previously handed out by [`SimHeap::acquire`].
    ///
    /// Adjacent free blocks are coalesced so the heap does not fragment
    /// irrecoverably under alloc/free churn.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownBlock`] if `start` is not an outstanding
    /// block of exactly `len` rounded-up bytes.
    pub fn release(&mut self, start: Addr, len: u64) -> Result<(), HeapError> {
        let len = align_up(len.max(1), SEGMENT_SIZE);
        match self.live.remove(&start.raw()) {
            Some(l) if l == len => {}
            Some(l) => {
                // Restore and reject: releasing with the wrong length would
                // corrupt the free list.
                self.live.insert(start.raw(), l);
                return Err(HeapError::UnknownBlock { addr: start });
            }
            None => return Err(HeapError::UnknownBlock { addr: start }),
        }
        self.bytes_in_use -= len;
        let mut new_start = start.raw();
        let mut new_len = len;
        // Coalesce with the predecessor.
        if let Some((&ps, &pl)) = self.free.range(..new_start).next_back() {
            if ps + pl == new_start {
                self.free.remove(&ps);
                new_start = ps;
                new_len += pl;
            }
        }
        // Coalesce with the successor.
        if let Some((&ss, &sl)) = self.free.range(new_start + new_len..).next() {
            if new_start + new_len == ss {
                self.free.remove(&ss);
                new_len += sl;
            }
        }
        self.free.insert(new_start, new_len);
        Ok(())
    }

    /// Number of blocks on the free list (useful for fragmentation tests).
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> SimHeap {
        SimHeap::new(Addr::new(0x1_0000), Addr::new(0x1_0000 + 4096))
    }

    #[test]
    fn acquire_is_aligned_and_first_fit() {
        let mut h = heap();
        let a = h.acquire(10).unwrap();
        let b = h.acquire(1).unwrap();
        assert_eq!(a, Addr::new(0x1_0000));
        assert_eq!(b, Addr::new(0x1_0000 + 16)); // 10 rounds to 16
        assert!(b.is_segment_aligned());
        assert_eq!(h.bytes_in_use(), 24);
    }

    #[test]
    fn release_coalesces() {
        let mut h = heap();
        let a = h.acquire(64).unwrap();
        let b = h.acquire(64).unwrap();
        let c = h.acquire(64).unwrap();
        h.release(a, 64).unwrap();
        h.release(c, 64).unwrap();
        assert_eq!(h.free_blocks(), 2); // [a] and [c..end]
        h.release(b, 64).unwrap();
        assert_eq!(h.free_blocks(), 1); // fully coalesced
        assert_eq!(h.bytes_in_use(), 0);
        // The whole arena is available again.
        let big = h.acquire(4096).unwrap();
        assert_eq!(big, Addr::new(0x1_0000));
    }

    #[test]
    fn out_of_memory() {
        let mut h = heap();
        assert!(matches!(
            h.acquire(8192),
            Err(HeapError::OutOfMemory { requested: 8192 })
        ));
        let _ = h.acquire(4096).unwrap();
        assert!(h.acquire(8).is_err());
    }

    #[test]
    fn double_release_rejected() {
        let mut h = heap();
        let a = h.acquire(32).unwrap();
        h.release(a, 32).unwrap();
        assert!(matches!(
            h.release(a, 32),
            Err(HeapError::UnknownBlock { .. })
        ));
    }

    #[test]
    fn wrong_length_release_rejected_and_state_kept() {
        let mut h = heap();
        let a = h.acquire(32).unwrap();
        assert!(h.release(a, 64).is_err());
        // The block is still live and can be released correctly.
        h.release(a, 32).unwrap();
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut h = heap();
        let a = h.acquire(128).unwrap();
        let b = h.acquire(128).unwrap();
        h.release(a, 128).unwrap();
        h.release(b, 128).unwrap();
        assert_eq!(h.high_water(), 256);
        assert_eq!(h.bytes_in_use(), 0);
    }

    #[test]
    fn reuse_is_deterministic_first_fit() {
        let mut h = heap();
        let a = h.acquire(64).unwrap();
        let _b = h.acquire(64).unwrap();
        h.release(a, 64).unwrap();
        let c = h.acquire(32).unwrap();
        assert_eq!(c, a, "first fit must reuse the earliest hole");
    }

    #[test]
    fn fragmentation_stress_recovers_fully() {
        // Alternating alloc/free of mixed sizes must not leak arena: after
        // releasing everything, one maximal allocation succeeds again.
        let mut h = SimHeap::new(Addr::new(0x1_0000), Addr::new(0x1_0000 + 65536));
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for round in 0..500u64 {
            let len = 8 + (round * 24) % 512;
            if let Ok(a) = h.acquire(len) {
                live.push((a, len));
            }
            if live.len() > 20 {
                // Free from the middle to maximise fragmentation.
                let (a, l) = live.remove(live.len() / 2);
                h.release(a, l).unwrap();
            }
        }
        for (a, l) in live {
            h.release(a, l).unwrap();
        }
        assert_eq!(h.bytes_in_use(), 0);
        assert_eq!(h.free_blocks(), 1, "coalescing must fully recover");
        assert!(h.acquire(65536).is_ok());
    }

    #[test]
    fn error_display() {
        let e = HeapError::OutOfMemory { requested: 7 };
        assert!(format!("{e}").contains("exhausted"));
        let e = HeapError::UnknownBlock { addr: Addr::new(8) };
        assert!(format!("{e}").contains("unknown heap block"));
    }
}
