//! Check and metadata-loading statistics.
//!
//! These counters drive the reproduction of the paper's ablation study
//! (Figure 10) and the analytic cost model used for Table 2: every sanitizer
//! records how many shadow bytes it loaded, which check path each protection
//! task took, and how much poisoning work it performed.

use std::fmt;
use std::ops::AddAssign;

/// Runtime statistics accumulated by a [`crate::Sanitizer`].
///
/// All fields are plain event counts; the harness combines them with a cost
/// model to estimate overhead, and reports the `fast_checks` /
/// `slow_checks` / `cache_hits` split that Figure 10 of the paper plots.
///
/// # Example
///
/// ```
/// use giantsan_runtime::Counters;
/// let mut a = Counters::default();
/// a.shadow_loads = 10;
/// let mut b = Counters::default();
/// b.shadow_loads = 5;
/// a += &b;
/// assert_eq!(a.shadow_loads, 15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Shadow bytes loaded by checks (not by poisoning).
    pub shadow_loads: u64,
    /// Region/instruction checks where the fast path sufficed.
    pub fast_checks: u64,
    /// Checks that had to run the slow path (prefix + suffix + partial).
    pub slow_checks: u64,
    /// Accesses admitted by a history cache (quasi-bound) without any
    /// metadata load.
    pub cache_hits: u64,
    /// Cache misses that refreshed the quasi-bound (each implies a check).
    pub cache_updates: u64,
    /// Dedicated underflow (negative offset) checks.
    pub underflow_checks: u64,
    /// Pointer-arithmetic bounds computations (LFP-style tools).
    pub arith_checks: u64,
    /// Shadow bytes written while poisoning/unpoisoning.
    pub shadow_stores: u64,
    /// Heap allocations served.
    pub allocs: u64,
    /// Heap frees served.
    pub frees: u64,
    /// Stack slots created.
    pub stack_allocs: u64,
    /// Extra instructions spent simulating a protected stack (LFP's
    /// incomplete stack protection penalty, paper §5.2).
    pub stack_sim_ops: u64,
    /// Error reports raised.
    pub reports: u64,
    /// Reports recorded in recover mode after which execution continued
    /// (the access was contained instead of performed).
    pub errors_recovered: u64,
    /// Reports dropped by recover-mode dedup/rate limits (still counted in
    /// `reports` by the raising tool, but not recorded by the interpreter).
    pub errors_suppressed: u64,
    /// Bulk shadow writes performed at block granularity (whole-block
    /// pattern poisoning on block map, whole-block fills on block free) —
    /// each run replaces what would otherwise be many per-object writes.
    pub bulk_poison_runs: u64,
}

impl Counters {
    /// Every counter field, in declaration order.
    ///
    /// This is the single authoritative field list for exporters (CSV
    /// headers, Prometheus series): [`Counters::field_values`] yields values
    /// in the same order, and a unit test pins the list against the struct
    /// so a new field cannot be added without updating both.
    pub const FIELD_NAMES: [&'static str; 16] = [
        "shadow_loads",
        "fast_checks",
        "slow_checks",
        "cache_hits",
        "cache_updates",
        "underflow_checks",
        "arith_checks",
        "shadow_stores",
        "allocs",
        "frees",
        "stack_allocs",
        "stack_sim_ops",
        "reports",
        "errors_recovered",
        "errors_suppressed",
        "bulk_poison_runs",
    ];

    /// Counter values in [`Counters::FIELD_NAMES`] order.
    pub fn field_values(&self) -> [u64; 16] {
        [
            self.shadow_loads,
            self.fast_checks,
            self.slow_checks,
            self.cache_hits,
            self.cache_updates,
            self.underflow_checks,
            self.arith_checks,
            self.shadow_stores,
            self.allocs,
            self.frees,
            self.stack_allocs,
            self.stack_sim_ops,
            self.reports,
            self.errors_recovered,
            self.errors_suppressed,
            self.bulk_poison_runs,
        ]
    }

    /// `(name, value)` pairs in declaration order, ready for an exporter.
    pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> {
        Self::FIELD_NAMES.into_iter().zip(self.field_values())
    }

    /// Rebuilds a `Counters` from values in [`Counters::FIELD_NAMES`] order —
    /// the inverse of [`Counters::field_values`], used when campaign
    /// checkpoints are read back from disk.
    pub fn from_field_values(values: [u64; 16]) -> Self {
        let [shadow_loads, fast_checks, slow_checks, cache_hits, cache_updates, underflow_checks, arith_checks, shadow_stores, allocs, frees, stack_allocs, stack_sim_ops, reports, errors_recovered, errors_suppressed, bulk_poison_runs] =
            values;
        Counters {
            shadow_loads,
            fast_checks,
            slow_checks,
            cache_hits,
            cache_updates,
            underflow_checks,
            arith_checks,
            shadow_stores,
            allocs,
            frees,
            stack_allocs,
            stack_sim_ops,
            reports,
            errors_recovered,
            errors_suppressed,
            bulk_poison_runs,
        }
    }

    /// Total number of checks executed on any path.
    pub fn total_checks(&self) -> u64 {
        self.fast_checks
            + self.slow_checks
            + self.cache_hits
            + self.underflow_checks
            + self.arith_checks
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = Counters::default();
    }

    /// Folds another counter set into this one.
    ///
    /// This is the reduction step of the batch-execution engine: each worker
    /// accumulates counters for the cells it executed, and the merged report
    /// is independent of how cells were distributed across workers because
    /// counter addition is commutative and associative.
    ///
    /// # Example
    ///
    /// ```
    /// use giantsan_runtime::Counters;
    /// let mut total = Counters::default();
    /// let mut worker = Counters::default();
    /// worker.fast_checks = 7;
    /// total.merge(&worker);
    /// total.merge(&worker);
    /// assert_eq!(total.fast_checks, 14);
    /// ```
    pub fn merge(&mut self, other: &Counters) {
        *self += other;
    }
}

impl AddAssign<&Counters> for Counters {
    fn add_assign(&mut self, rhs: &Counters) {
        self.shadow_loads += rhs.shadow_loads;
        self.fast_checks += rhs.fast_checks;
        self.slow_checks += rhs.slow_checks;
        self.cache_hits += rhs.cache_hits;
        self.cache_updates += rhs.cache_updates;
        self.underflow_checks += rhs.underflow_checks;
        self.arith_checks += rhs.arith_checks;
        self.shadow_stores += rhs.shadow_stores;
        self.allocs += rhs.allocs;
        self.frees += rhs.frees;
        self.stack_allocs += rhs.stack_allocs;
        self.stack_sim_ops += rhs.stack_sim_ops;
        self.reports += rhs.reports;
        self.errors_recovered += rhs.errors_recovered;
        self.errors_suppressed += rhs.errors_suppressed;
        self.bulk_poison_runs += rhs.bulk_poison_runs;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loads={} fast={} slow={} cached={} updates={} under={} arith={} \
             stores={} allocs={} frees={} stacks={} stacksim={} reports={} \
             recovered={} suppressed={} bulkruns={}",
            self.shadow_loads,
            self.fast_checks,
            self.slow_checks,
            self.cache_hits,
            self.cache_updates,
            self.underflow_checks,
            self.arith_checks,
            self.shadow_stores,
            self.allocs,
            self.frees,
            self.stack_allocs,
            self.stack_sim_ops,
            self.reports,
            self.errors_recovered,
            self.errors_suppressed,
            self.bulk_poison_runs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let mut a = Counters {
            fast_checks: 3,
            slow_checks: 1,
            cache_hits: 5,
            underflow_checks: 2,
            arith_checks: 4,
            ..Counters::default()
        };
        assert_eq!(a.total_checks(), 15);
        let b = a;
        a += &b;
        assert_eq!(a.total_checks(), 30);
        a.reset();
        assert_eq!(a, Counters::default());
    }

    #[test]
    fn merge_covers_recovery_counters() {
        let mut total = Counters::default();
        let worker = Counters {
            reports: 4,
            errors_recovered: 3,
            errors_suppressed: 9,
            ..Counters::default()
        };
        total.merge(&worker);
        total.merge(&worker);
        assert_eq!(total.errors_recovered, 6);
        assert_eq!(total.errors_suppressed, 18);
        assert_eq!(total.reports, 8);
        let s = format!("{total}");
        assert!(s.contains("recovered=6") && s.contains("suppressed=18"));
        // Display names every exporter field (one `k=v` pair per field).
        assert_eq!(s.matches('=').count(), Counters::FIELD_NAMES.len(), "{s}");
    }

    #[test]
    fn display_is_nonempty() {
        let c = Counters::default();
        assert!(format!("{c}").contains("loads=0"));
    }

    /// Pins the exporter field list against the struct definition. Adding a
    /// field to `Counters` breaks the exhaustive destructuring below until
    /// `FIELD_NAMES` / `field_values` / `AddAssign` / `Display` are updated
    /// to match.
    #[test]
    fn field_list_is_exhaustive_and_ordered() {
        let mut c = Counters::default();
        for (i, slot) in [
            &mut c.shadow_loads,
            &mut c.fast_checks,
            &mut c.slow_checks,
            &mut c.cache_hits,
            &mut c.cache_updates,
            &mut c.underflow_checks,
            &mut c.arith_checks,
            &mut c.shadow_stores,
            &mut c.allocs,
            &mut c.frees,
            &mut c.stack_allocs,
            &mut c.stack_sim_ops,
            &mut c.reports,
            &mut c.errors_recovered,
            &mut c.errors_suppressed,
            &mut c.bulk_poison_runs,
        ]
        .into_iter()
        .enumerate()
        {
            *slot = i as u64 + 1;
        }
        // Exhaustive destructure: a new field fails this match to compile.
        let Counters {
            shadow_loads,
            fast_checks,
            slow_checks,
            cache_hits,
            cache_updates,
            underflow_checks,
            arith_checks,
            shadow_stores,
            allocs,
            frees,
            stack_allocs,
            stack_sim_ops,
            reports,
            errors_recovered,
            errors_suppressed,
            bulk_poison_runs,
        } = c;
        let by_decl = [
            shadow_loads,
            fast_checks,
            slow_checks,
            cache_hits,
            cache_updates,
            underflow_checks,
            arith_checks,
            shadow_stores,
            allocs,
            frees,
            stack_allocs,
            stack_sim_ops,
            reports,
            errors_recovered,
            errors_suppressed,
            bulk_poison_runs,
        ];
        assert_eq!(c.field_values(), by_decl, "field_values order drifted");
        assert_eq!(Counters::FIELD_NAMES.len(), by_decl.len());
        let expected: Vec<(&str, u64)> = Counters::FIELD_NAMES
            .into_iter()
            .zip((1..=16).map(|v| v as u64))
            .collect();
        assert_eq!(c.fields().collect::<Vec<_>>(), expected);
        // The PR4 recovery counters and the PR8 bulk counter keep their slots.
        assert_eq!(Counters::FIELD_NAMES[13], "errors_recovered");
        assert_eq!(Counters::FIELD_NAMES[14], "errors_suppressed");
        assert_eq!(Counters::FIELD_NAMES[15], "bulk_poison_runs");
        // Merging doubles every field — AddAssign covers the full list.
        let snapshot = c;
        c += &snapshot;
        assert_eq!(
            c.field_values(),
            by_decl.map(|v| v * 2),
            "AddAssign missed a field"
        );
    }
}
