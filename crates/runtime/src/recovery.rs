//! Recover-mode policy: what happens after an [`ErrorReport`] is raised.
//!
//! Production ASan ships `halt_on_error=0` ("recover mode") so a fuzzing
//! campaign survives thousands of reports per run. This module reproduces
//! that control knob for every tool in the workspace: a [`RecoveryPolicy`]
//! chosen on [`crate::RuntimeConfig`] decides whether the interpreter halts
//! at the first report, keeps recording every report (the paper's SPEC
//! configuration), or *recovers* — deduplicating reports per site, rate
//! limiting them per error kind, and containing the faulting access so
//! execution continues on a sound state.

use std::collections::HashMap;

use crate::report::{ErrorKind, ErrorReport};

/// What the runtime does after a check raises an [`ErrorReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Stop execution at the first report (ASan's default deployment mode).
    Halt,
    /// Record every report and keep executing, with no deduplication. This
    /// is the paper's SPEC/detection-study configuration and the historical
    /// behaviour of `halt_on_error: false`, so it is the default.
    #[default]
    Continue,
    /// Recover mode: deduplicate per (site, kind), rate-limit per kind, and
    /// contain the faulting access (skip it / re-poison) so the run keeps
    /// producing trustworthy results after an error.
    Recover(RecoverLimits),
}

impl RecoveryPolicy {
    /// A recover policy with the default [`RecoverLimits`].
    pub fn recover() -> Self {
        RecoveryPolicy::Recover(RecoverLimits::default())
    }

    /// Whether execution stops at the first report.
    pub fn halts(&self) -> bool {
        matches!(self, RecoveryPolicy::Halt)
    }

    /// Whether faulting accesses are contained rather than performed.
    pub fn contains_faults(&self) -> bool {
        matches!(self, RecoveryPolicy::Recover(_))
    }
}

/// Rate limits applied by [`RecoveryPolicy::Recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverLimits {
    /// Maximum reports recorded for one (site, kind) pair; further reports
    /// from the same site are suppressed (counted, not recorded). Mirrors
    /// ASan's one-report-per-PC dedup in recover mode.
    pub max_reports_per_site: u32,
    /// Maximum reports recorded per [`ErrorKind`] across all sites.
    pub max_reports_per_kind: u32,
}

impl Default for RecoverLimits {
    fn default() -> Self {
        RecoverLimits {
            max_reports_per_site: 1,
            max_reports_per_kind: 20,
        }
    }
}

/// Verdict of [`RecoveryState::admit`] for one raised report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Stop execution (policy is [`RecoveryPolicy::Halt`]).
    Halt,
    /// Record the report and continue.
    Record,
    /// Drop the report (deduplicated or rate-limited) and continue.
    Suppress,
}

/// Per-run dedup/rate-limit bookkeeping for recover mode.
///
/// Keys are `(site, kind)`; reports without a site id share one synthetic
/// site per kind so anonymous reports are still rate-limited. All state is
/// per-execution, so batch cells never share it and runs stay deterministic
/// under any thread count.
#[derive(Debug, Default)]
pub struct RecoveryState {
    per_site: HashMap<(Option<u32>, ErrorKind), u32>,
    per_kind: HashMap<ErrorKind, u32>,
}

impl RecoveryState {
    /// A fresh state with no reports admitted yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides what to do with `report` under `policy`, updating the dedup
    /// counts when the policy is [`RecoveryPolicy::Recover`].
    pub fn admit(&mut self, policy: &RecoveryPolicy, report: &ErrorReport) -> Admission {
        match policy {
            RecoveryPolicy::Halt => Admission::Halt,
            RecoveryPolicy::Continue => Admission::Record,
            RecoveryPolicy::Recover(limits) => {
                let site_count = self.per_site.entry((report.site, report.kind)).or_insert(0);
                let kind_count = self.per_kind.entry(report.kind).or_insert(0);
                if *site_count >= limits.max_reports_per_site
                    || *kind_count >= limits.max_reports_per_kind
                {
                    Admission::Suppress
                } else {
                    *site_count += 1;
                    *kind_count += 1;
                    Admission::Record
                }
            }
        }
    }

    /// Clears all dedup state (for reusing a session across executions).
    pub fn reset(&mut self) {
        self.per_site.clear();
        self.per_kind.clear();
    }
}

/// A deterministic corruption applied to a tool's shadow metadata.
///
/// Fault-injection campaigns use these to model bit rot / metadata races:
/// the harness asks the tool (via [`crate::Sanitizer::inject_metadata_fault`])
/// to corrupt its own encoding, then observes whether checks still behave
/// sanely under [`RecoveryPolicy::Recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataFault {
    /// Flip one bit of the shadow byte covering the given address.
    BitFlip {
        /// Bit index to flip, `0..8`.
        bit: u8,
    },
    /// Downgrade a folded segment code to its unfolded form (GiantSan's
    /// `64 − x → 64`), losing folding performance but staying sound.
    FoldDowngrade,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(kind: ErrorKind, site: Option<u32>) -> ErrorReport {
        let r = ErrorReport::new(kind, giantsan_shadow::Addr::new(0x1000), 8);
        match site {
            Some(s) => r.with_site(s),
            None => r,
        }
    }

    #[test]
    fn halt_policy_always_halts() {
        let mut st = RecoveryState::new();
        let r = report(ErrorKind::HeapBufferOverflow, Some(1));
        assert_eq!(st.admit(&RecoveryPolicy::Halt, &r), Admission::Halt);
        assert_eq!(st.admit(&RecoveryPolicy::Halt, &r), Admission::Halt);
    }

    #[test]
    fn continue_policy_records_everything() {
        let mut st = RecoveryState::new();
        let r = report(ErrorKind::UseAfterFree, Some(3));
        for _ in 0..100 {
            assert_eq!(st.admit(&RecoveryPolicy::Continue, &r), Admission::Record);
        }
    }

    #[test]
    fn recover_dedups_per_site() {
        let mut st = RecoveryState::new();
        let p = RecoveryPolicy::recover();
        let r = report(ErrorKind::HeapBufferOverflow, Some(7));
        assert_eq!(st.admit(&p, &r), Admission::Record);
        assert_eq!(st.admit(&p, &r), Admission::Suppress);
        // A different site of the same kind is still admitted.
        let r2 = report(ErrorKind::HeapBufferOverflow, Some(8));
        assert_eq!(st.admit(&p, &r2), Admission::Record);
    }

    #[test]
    fn recover_rate_limits_per_kind() {
        let mut st = RecoveryState::new();
        let p = RecoveryPolicy::Recover(RecoverLimits {
            max_reports_per_site: 10,
            max_reports_per_kind: 3,
        });
        for site in 0..3 {
            let r = report(ErrorKind::UseAfterFree, Some(site));
            assert_eq!(st.admit(&p, &r), Admission::Record);
        }
        let r = report(ErrorKind::UseAfterFree, Some(99));
        assert_eq!(st.admit(&p, &r), Admission::Suppress, "kind budget spent");
        // Other kinds have their own budget.
        let r = report(ErrorKind::HeapBufferUnderflow, Some(99));
        assert_eq!(st.admit(&p, &r), Admission::Record);
    }

    #[test]
    fn anonymous_reports_share_one_site_budget() {
        let mut st = RecoveryState::new();
        let p = RecoveryPolicy::recover();
        let r = report(ErrorKind::InvalidFree, None);
        assert_eq!(st.admit(&p, &r), Admission::Record);
        assert_eq!(st.admit(&p, &r), Admission::Suppress);
    }

    #[test]
    fn reset_restores_budgets() {
        let mut st = RecoveryState::new();
        let p = RecoveryPolicy::recover();
        let r = report(ErrorKind::InvalidFree, Some(1));
        assert_eq!(st.admit(&p, &r), Admission::Record);
        st.reset();
        assert_eq!(st.admit(&p, &r), Admission::Record);
    }

    #[test]
    fn default_policy_is_continue() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Continue);
        assert!(!RecoveryPolicy::default().halts());
        assert!(RecoveryPolicy::recover().contains_faults());
    }
}
