//! Thread-local allocation caches (paper §4.5).
//!
//! "The multi-thread guarantee of GiantSan is the same as ASan, i.e.,
//! thread-local caches are utilized to avoid locking on every call of the
//! malloc and free functions." This module reproduces that design point for
//! the simulated runtime: a [`ThreadCachedAllocator`] fronts a shared,
//! mutex-protected sanitizer with per-thread size-class bins. `free` pushes
//! into the local bin without locking; `alloc` first pops the local bin;
//! the shared sanitizer is only locked on bin miss or overflow flush.
//!
//! Like real ASan's per-thread quarantine caches, deferring the shared
//! `free` means a block parked in a local bin is recycled to the *same
//! thread* without entering the global quarantine — a bounded detection
//! window traded for scalability (bounded by [`ThreadCachedAllocator::BIN_CAP`]).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use giantsan_shadow::align_up;

use crate::{Allocation, HeapError, Region, Sanitizer};

/// Statistics of one thread's cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcacheStats {
    /// Allocations served from the local bin (no lock taken).
    pub local_hits: u64,
    /// Frees parked locally (no lock taken).
    pub local_frees: u64,
    /// Times the shared sanitizer was locked (allocation misses + flushes).
    pub shared_locks: u64,
}

/// A per-thread allocation front for a shared sanitizer.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use parking_lot::Mutex;
/// use giantsan_runtime::{NullSanitizer, Region, RuntimeConfig, ThreadCachedAllocator};
///
/// let shared = Arc::new(Mutex::new(NullSanitizer::new(RuntimeConfig::small())));
/// let mut tc = ThreadCachedAllocator::new(shared);
/// let a = tc.alloc(100, Region::Heap).unwrap();
/// tc.free(a);
/// // Same-size reallocation is served locally, without locking.
/// let b = tc.alloc(100, Region::Heap).unwrap();
/// assert_eq!(a.base, b.base);
/// assert_eq!(tc.stats().local_hits, 1);
/// tc.flush();
/// ```
#[derive(Debug)]
pub struct ThreadCachedAllocator<S: Sanitizer> {
    shared: Arc<Mutex<S>>,
    bins: HashMap<u64, Vec<Allocation>>,
    stats: TcacheStats,
    /// Heap arena this thread's shared allocations are directed to
    /// (block/line backend only).
    arena: Option<u32>,
}

impl<S: Sanitizer> ThreadCachedAllocator<S> {
    /// Blocks parked per size class before half the bin is flushed to the
    /// shared quarantine.
    pub const BIN_CAP: usize = 8;

    /// Creates a cache fronting `shared`.
    pub fn new(shared: Arc<Mutex<S>>) -> Self {
        ThreadCachedAllocator {
            shared,
            bins: HashMap::new(),
            stats: TcacheStats::default(),
            arena: None,
        }
    }

    /// Creates a cache fronting `shared` whose allocations draw from heap
    /// `arena` of the block/line backend. Bin misses still lock the shared
    /// sanitizer, but each thread bump-allocates in its own block range, so
    /// no two threads interleave within a block. The free-list backend
    /// ignores the arena.
    pub fn with_arena(shared: Arc<Mutex<S>>, arena: u32) -> Self {
        let mut tc = Self::new(shared);
        tc.arena = Some(arena);
        tc
    }

    /// Local statistics.
    pub fn stats(&self) -> TcacheStats {
        self.stats
    }

    fn bin_key(size: u64) -> u64 {
        align_up(size.max(1), 8)
    }

    /// Allocates, preferring the local bin of the exact size class.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError`] when the shared arena is exhausted.
    pub fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        if region == Region::Heap {
            if let Some(bin) = self.bins.get_mut(&Self::bin_key(size)) {
                if let Some(a) = bin.pop() {
                    self.stats.local_hits += 1;
                    return Ok(a);
                }
            }
        }
        self.stats.shared_locks += 1;
        let mut shared = self.shared.lock();
        if let Some(arena) = self.arena {
            shared.world_mut().set_active_arena(arena);
        }
        shared.alloc(size, region)
    }

    /// Frees by parking the block in the local bin; flushes half the bin to
    /// the shared sanitizer when it overflows.
    pub fn free(&mut self, a: Allocation) {
        if a.region != Region::Heap {
            self.stats.shared_locks += 1;
            let _ = self.shared.lock().free(a.base);
            return;
        }
        let bin = self.bins.entry(Self::bin_key(a.size)).or_default();
        bin.push(a);
        self.stats.local_frees += 1;
        if bin.len() > Self::BIN_CAP {
            let drain: Vec<Allocation> = bin.drain(..Self::BIN_CAP / 2).collect();
            self.stats.shared_locks += 1;
            let mut shared = self.shared.lock();
            for b in drain {
                let _ = shared.free(b.base);
            }
        }
    }

    /// Returns every parked block to the shared sanitizer (thread exit).
    pub fn flush(&mut self) {
        let bins = std::mem::take(&mut self.bins);
        let blocks: Vec<Allocation> = bins.into_values().flatten().collect();
        if blocks.is_empty() {
            return;
        }
        self.stats.shared_locks += 1;
        let mut shared = self.shared.lock();
        for b in blocks {
            let _ = shared.free(b.base);
        }
    }
}

impl<S: Sanitizer> Drop for ThreadCachedAllocator<S> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullSanitizer, RuntimeConfig};

    fn shared() -> Arc<Mutex<NullSanitizer>> {
        Arc::new(Mutex::new(NullSanitizer::new(RuntimeConfig::small())))
    }

    #[test]
    fn local_reuse_avoids_locking() {
        let s = shared();
        let mut tc = ThreadCachedAllocator::new(Arc::clone(&s));
        let a = tc.alloc(64, Region::Heap).unwrap();
        let locks_after_first = tc.stats().shared_locks;
        tc.free(a);
        for _ in 0..10 {
            let b = tc.alloc(64, Region::Heap).unwrap();
            assert_eq!(b.base, a.base, "same-class block served locally");
            tc.free(b);
        }
        assert_eq!(tc.stats().local_hits, 10);
        assert_eq!(
            tc.stats().shared_locks,
            locks_after_first,
            "the malloc/free loop must not touch the lock"
        );
    }

    #[test]
    fn bin_overflow_flushes_half() {
        let s = shared();
        let mut tc = ThreadCachedAllocator::new(Arc::clone(&s));
        let blocks: Vec<_> = (0..=ThreadCachedAllocator::<NullSanitizer>::BIN_CAP)
            .map(|_| tc.alloc(32, Region::Heap).unwrap())
            .collect();
        let before = s.lock().counters().frees;
        for b in blocks {
            tc.free(b);
        }
        let after = s.lock().counters().frees;
        assert_eq!(
            (after - before) as usize,
            ThreadCachedAllocator::<NullSanitizer>::BIN_CAP / 2,
            "overflow flushes half the bin to the shared quarantine"
        );
    }

    #[test]
    fn flush_returns_everything() {
        let s = shared();
        let mut tc = ThreadCachedAllocator::new(Arc::clone(&s));
        let a = tc.alloc(16, Region::Heap).unwrap();
        let b = tc.alloc(24, Region::Heap).unwrap();
        tc.free(a);
        tc.free(b);
        tc.flush();
        assert_eq!(s.lock().counters().frees, 2);
        // After a flush the next allocation goes to the shared heap again.
        let _ = tc.alloc(16, Region::Heap).unwrap();
        assert!(tc.stats().shared_locks >= 3);
    }

    #[test]
    fn drop_flushes() {
        let s = shared();
        {
            let mut tc = ThreadCachedAllocator::new(Arc::clone(&s));
            let a = tc.alloc(16, Region::Heap).unwrap();
            tc.free(a);
        }
        assert_eq!(s.lock().counters().frees, 1);
    }

    #[test]
    fn stack_allocations_bypass_the_cache() {
        let s = shared();
        let mut tc = ThreadCachedAllocator::new(Arc::clone(&s));
        s.lock().push_frame();
        let a = tc.alloc(32, Region::Stack).unwrap();
        assert_eq!(a.region, Region::Stack);
        // Freeing a stack object goes (incorrectly, like real code would)
        // to the shared free path and is ignored by the null sanitizer.
        tc.free(a);
        assert_eq!(tc.stats().local_frees, 0);
    }

    #[test]
    fn arena_affinity_partitions_threads() {
        use crate::block_heap::BLOCK_SIZE;
        use crate::HeapBackend;
        let cfg = RuntimeConfig::small()
            .to_builder()
            .heap_backend(HeapBackend::BlockLine)
            .heap_arenas(2)
            .build();
        let s = Arc::new(Mutex::new(NullSanitizer::new(cfg)));
        let mut t0 = ThreadCachedAllocator::with_arena(Arc::clone(&s), 0);
        let mut t1 = ThreadCachedAllocator::with_arena(Arc::clone(&s), 1);
        let a = t0.alloc(64, Region::Heap).unwrap();
        let b = t1.alloc(64, Region::Heap).unwrap();
        assert_eq!(a.placement.unwrap().arena, 0);
        assert_eq!(b.placement.unwrap().arena, 1);
        assert!(b.base - a.base >= BLOCK_SIZE, "no shared block");
    }

    #[test]
    fn concurrent_threads_share_one_world() {
        let s = shared();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let mut tc = ThreadCachedAllocator::new(s);
                    let mut held = Vec::new();
                    for i in 0..200u64 {
                        let a = tc.alloc(16 + (i % 4) * 16, Region::Heap).unwrap();
                        held.push(a);
                        if held.len() > 4 {
                            tc.free(held.remove(0));
                        }
                    }
                    for a in held {
                        tc.free(a);
                    }
                    // The hot loop was overwhelmingly lock-free.
                    assert!(tc.stats().local_hits > 100, "{:?}", tc.stats());
                });
            }
        });
        // Every allocation was eventually returned.
        let guard = s.lock();
        assert_eq!(guard.counters().allocs - guard.counters().frees, 0);
    }
}
