//! Ground-truth object table.
//!
//! Real sanitizers have no oracle: they infer validity from shadow metadata.
//! In simulation we additionally keep the *exact* requested bounds of every
//! object, which lets the harness count false negatives and false positives
//! precisely (the paper's Tables 3–5) and lets property tests compare each
//! tool's verdict with the truth.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use giantsan_shadow::Addr;

use crate::world::Region;

/// Unique identifier of an allocated object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Lifecycle state of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectState {
    /// Allocated and accessible.
    Live,
    /// Freed, memory still reserved (in quarantine or a dead stack frame).
    Quarantined,
    /// Freed and its memory returned for reuse.
    Recycled,
}

/// Everything the runtime knows about one allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Unique id.
    pub id: ObjectId,
    /// First byte of the user region (8-byte aligned).
    pub base: Addr,
    /// Exact requested size in bytes (not rounded).
    pub size: u64,
    /// Memory region kind.
    pub region: Region,
    /// Start of the underlying block including redzones.
    pub block_start: Addr,
    /// Length of the underlying block including redzones.
    pub block_len: u64,
    /// Lifecycle state.
    pub state: ObjectState,
}

impl ObjectInfo {
    /// One past the last valid byte of the user region.
    pub fn end(&self) -> Addr {
        self.base + self.size
    }

    /// Returns `true` if `[addr, addr+len)` lies inside the user region.
    pub fn contains_range(&self, addr: Addr, len: u64) -> bool {
        addr >= self.base && addr.raw().saturating_add(len) <= self.end().raw()
    }
}

/// The ground-truth table of all objects ever allocated in a [`crate::World`].
///
/// # Example
///
/// ```
/// use giantsan_runtime::{NullSanitizer, Region, RuntimeConfig, Sanitizer};
///
/// let mut s = NullSanitizer::new(RuntimeConfig::small());
/// let a = s.alloc(40, Region::Heap).unwrap();
/// let table = s.world().objects();
/// assert!(table.valid_access(a.base, 40));
/// assert!(!table.valid_access(a.base, 41)); // one byte past the end
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    objects: HashMap<ObjectId, ObjectInfo>,
    /// Live objects indexed by base address for range queries.
    live_by_base: BTreeMap<u64, ObjectId>,
    next_id: u64,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new live object and returns its id.
    pub fn insert(
        &mut self,
        base: Addr,
        size: u64,
        region: Region,
        block_start: Addr,
        block_len: u64,
    ) -> ObjectId {
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        self.objects.insert(
            id,
            ObjectInfo {
                id,
                base,
                size,
                region,
                block_start,
                block_len,
                state: ObjectState::Live,
            },
        );
        self.live_by_base.insert(base.raw(), id);
        id
    }

    /// Looks up an object by id (live or dead).
    pub fn get(&self, id: ObjectId) -> Option<&ObjectInfo> {
        self.objects.get(&id)
    }

    /// Finds the live object whose base is exactly `base`.
    pub fn live_at_base(&self, base: Addr) -> Option<&ObjectInfo> {
        self.live_by_base
            .get(&base.raw())
            .and_then(|id| self.objects.get(id))
    }

    /// Finds the live object containing `addr`, if any.
    pub fn live_containing(&self, addr: Addr) -> Option<&ObjectInfo> {
        let (_, id) = self.live_by_base.range(..=addr.raw()).next_back()?;
        let info = &self.objects[id];
        info.contains_range(addr, 1).then_some(info)
    }

    /// Finds the live object whose *block* range (including redzones or
    /// class-slot padding) contains `addr`, if any. LFP-style tools use this
    /// to recover the slot a pointer belongs to.
    pub fn live_block_containing(&self, addr: Addr) -> Option<&ObjectInfo> {
        let in_block = |o: &ObjectInfo| {
            addr >= o.block_start && addr.raw() < o.block_start.raw() + o.block_len
        };
        if let Some((_, id)) = self.live_by_base.range(..=addr.raw()).next_back() {
            let o = &self.objects[id];
            if in_block(o) {
                return Some(o);
            }
        }
        // The successor's block may begin before its base (left redzone).
        if let Some((_, id)) = self.live_by_base.range(addr.raw()..).next() {
            let o = &self.objects[id];
            if in_block(o) {
                return Some(o);
            }
        }
        None
    }

    /// Finds the most recently allocated non-live object whose *block* range
    /// contains `addr` (for use-after-free classification).
    pub fn dead_block_containing(&self, addr: Addr) -> Option<&ObjectInfo> {
        self.objects
            .values()
            .filter(|o| o.state != ObjectState::Live)
            .filter(|o| addr >= o.block_start && addr.raw() < o.block_start.raw() + o.block_len)
            .max_by_key(|o| o.id)
    }

    /// Marks a live object freed-but-reserved. Returns the updated info.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown (a runtime-internal invariant violation).
    pub fn mark_quarantined(&mut self, id: ObjectId) -> ObjectInfo {
        let info = self.objects.get_mut(&id).expect("unknown object id");
        debug_assert_eq!(info.state, ObjectState::Live);
        info.state = ObjectState::Quarantined;
        self.live_by_base.remove(&info.base.raw());
        info.clone()
    }

    /// Marks a quarantined object's memory as recycled. Returns the updated
    /// info.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn mark_recycled(&mut self, id: ObjectId) -> ObjectInfo {
        let info = self.objects.get_mut(&id).expect("unknown object id");
        info.state = ObjectState::Recycled;
        info.clone()
    }

    /// Ground truth: is `[addr, addr+len)` entirely inside one live object?
    pub fn valid_access(&self, addr: Addr, len: u64) -> bool {
        match self.live_containing(addr) {
            Some(o) => o.contains_range(addr, len),
            None => false,
        }
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.live_by_base.len()
    }

    /// Total number of objects ever allocated.
    pub fn total_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterates over live objects in base-address order.
    pub fn iter_live(&self) -> impl Iterator<Item = &ObjectInfo> + '_ {
        self.live_by_base.values().map(move |id| &self.objects[id])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(base: u64, size: u64) -> (ObjectTable, ObjectId) {
        let mut t = ObjectTable::new();
        let id = t.insert(
            Addr::new(base),
            size,
            Region::Heap,
            Addr::new(base - 16),
            size + 32,
        );
        (t, id)
    }

    #[test]
    fn insert_and_lookup() {
        let (t, id) = table_with(0x1000, 40);
        assert_eq!(t.live_count(), 1);
        assert_eq!(t.total_count(), 1);
        let info = t.get(id).unwrap();
        assert_eq!(info.size, 40);
        assert_eq!(info.end(), Addr::new(0x1028));
        assert_eq!(t.live_at_base(Addr::new(0x1000)).unwrap().id, id);
        assert!(t.live_at_base(Addr::new(0x1008)).is_none());
    }

    #[test]
    fn containment_queries() {
        let (t, _) = table_with(0x1000, 40);
        assert!(t.valid_access(Addr::new(0x1000), 40));
        assert!(t.valid_access(Addr::new(0x1020), 8));
        assert!(!t.valid_access(Addr::new(0x1000), 41));
        assert!(!t.valid_access(Addr::new(0x0fff), 1));
        assert!(!t.valid_access(Addr::new(0x1028), 1));
        assert!(t.live_containing(Addr::new(0x1027)).is_some());
        assert!(t.live_containing(Addr::new(0x1028)).is_none());
    }

    #[test]
    fn lifecycle_transitions() {
        let (mut t, id) = table_with(0x1000, 40);
        let q = t.mark_quarantined(id);
        assert_eq!(q.state, ObjectState::Quarantined);
        assert_eq!(t.live_count(), 0);
        assert!(!t.valid_access(Addr::new(0x1000), 1));
        // Dead-block classification finds the quarantined object, including
        // via its redzone.
        assert_eq!(t.dead_block_containing(Addr::new(0x0ff8)).unwrap().id, id);
        let r = t.mark_recycled(id);
        assert_eq!(r.state, ObjectState::Recycled);
        assert_eq!(t.dead_block_containing(Addr::new(0x1000)).unwrap().id, id);
    }

    #[test]
    fn dead_block_prefers_most_recent() {
        let mut t = ObjectTable::new();
        let a = t.insert(Addr::new(0x1000), 8, Region::Heap, Addr::new(0x0ff0), 48);
        t.mark_quarantined(a);
        t.mark_recycled(a);
        // Same block reused by a newer object, then freed again.
        let b = t.insert(Addr::new(0x1000), 8, Region::Heap, Addr::new(0x0ff0), 48);
        t.mark_quarantined(b);
        assert_eq!(t.dead_block_containing(Addr::new(0x1000)).unwrap().id, b);
    }

    #[test]
    fn iter_live_is_sorted() {
        let mut t = ObjectTable::new();
        t.insert(Addr::new(0x3000), 8, Region::Heap, Addr::new(0x3000), 8);
        t.insert(Addr::new(0x1000), 8, Region::Heap, Addr::new(0x1000), 8);
        t.insert(Addr::new(0x2000), 8, Region::Stack, Addr::new(0x2000), 8);
        let bases: Vec<_> = t.iter_live().map(|o| o.base.raw()).collect();
        assert_eq!(bases, vec![0x1000, 0x2000, 0x3000]);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(format!("{}", ObjectId(3)), "obj#3");
    }
}
