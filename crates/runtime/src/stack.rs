//! Simulated call-stack frames with redzoned slots.
//!
//! ASan-style tools protect stack variables by padding each `alloca` slot
//! with redzones inside an enlarged frame. The simulator reproduces the
//! address-level effect: frames grow downward, each slot is separated from
//! its neighbours by a redzone-sized gap, and popping a frame releases every
//! slot at once.

use giantsan_shadow::{align_up, Addr, SEGMENT_SIZE};

use crate::HeapError;

/// A downward-growing stack of frames, each holding redzoned slots.
///
/// The stack only does address bookkeeping; object registration and shadow
/// poisoning are coordinated by [`crate::World`] and the sanitizers.
///
/// # Example
///
/// ```
/// use giantsan_runtime::StackSim;
/// use giantsan_shadow::Addr;
///
/// let mut stack = StackSim::new(Addr::new(0x10_0000), Addr::new(0x11_0000));
/// stack.push_frame();
/// let slot = stack.alloca(64)?;
/// assert_eq!(slot.raw() % 8, 0);
/// let released = stack.pop_frame();
/// assert_eq!(released, vec![(slot, 64)]);
/// # Ok::<(), giantsan_runtime::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StackSim {
    lo: Addr,
    hi: Addr,
    sp: Addr,
    /// Per-frame saved stack pointers and the blocks allocated in the frame.
    frames: Vec<Frame>,
}

#[derive(Debug, Clone)]
struct Frame {
    saved_sp: Addr,
    blocks: Vec<(Addr, u64)>,
}

impl StackSim {
    /// Creates a stack over `[lo, hi)` with the stack pointer at `hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or not segment aligned.
    pub fn new(lo: Addr, hi: Addr) -> Self {
        assert!(lo < hi, "empty stack range");
        assert!(lo.is_segment_aligned() && hi.is_segment_aligned());
        StackSim {
            lo,
            hi,
            sp: hi,
            frames: Vec::new(),
        }
    }

    /// Current simulated stack pointer.
    pub fn sp(&self) -> Addr {
        self.sp
    }

    /// Lowest address of the stack arena.
    pub fn lo(&self) -> Addr {
        self.lo
    }

    /// One past the highest address of the stack arena.
    pub fn hi(&self) -> Addr {
        self.hi
    }

    /// Current frame depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Enters a new frame.
    pub fn push_frame(&mut self) {
        self.frames.push(Frame {
            saved_sp: self.sp,
            blocks: Vec::new(),
        });
    }

    /// Allocates a block of `len` bytes (rounded up to 8) in the current
    /// frame and returns its first address.
    ///
    /// Blocks are carved downward from the stack pointer; the *caller*
    /// accounts for redzone gaps by requesting `redzone + len` and offsetting,
    /// exactly as [`crate::World::alloc`] does for the heap.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] on stack overflow (exhausting the
    /// simulated stack arena).
    ///
    /// # Panics
    ///
    /// Panics if called with no frame pushed.
    pub fn alloca(&mut self, len: u64) -> Result<Addr, HeapError> {
        let len = align_up(len.max(1), SEGMENT_SIZE);
        let frame = self
            .frames
            .last_mut()
            .expect("alloca outside any stack frame");
        if self.sp - self.lo < len {
            return Err(HeapError::OutOfMemory { requested: len });
        }
        self.sp = self.sp - len;
        frame.blocks.push((self.sp, len));
        Ok(self.sp)
    }

    /// Leaves the current frame, returning every block it held (most recently
    /// allocated first) so the caller can unregister and unpoison them.
    ///
    /// Returns an empty vector when no frame is active.
    pub fn pop_frame(&mut self) -> Vec<(Addr, u64)> {
        match self.frames.pop() {
            Some(frame) => {
                self.sp = frame.saved_sp;
                frame.blocks.into_iter().rev().collect()
            }
            None => Vec::new(),
        }
    }

    /// Bytes of stack currently in use.
    pub fn bytes_in_use(&self) -> u64 {
        self.hi - self.sp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> StackSim {
        StackSim::new(Addr::new(0x10_0000), Addr::new(0x10_1000))
    }

    #[test]
    fn frames_nest_and_release() {
        let mut s = stack();
        s.push_frame();
        let a = s.alloca(32).unwrap();
        s.push_frame();
        let b = s.alloca(64).unwrap();
        assert!(b < a, "stack grows downward");
        assert_eq!(s.depth(), 2);
        assert_eq!(s.pop_frame(), vec![(b, 64)]);
        assert_eq!(s.sp(), a);
        assert_eq!(s.pop_frame(), vec![(a, 32)]);
        assert_eq!(s.bytes_in_use(), 0);
    }

    #[test]
    fn multiple_slots_in_one_frame_pop_in_reverse() {
        let mut s = stack();
        s.push_frame();
        let a = s.alloca(8).unwrap();
        let b = s.alloca(8).unwrap();
        let c = s.alloca(8).unwrap();
        assert_eq!(s.pop_frame(), vec![(c, 8), (b, 8), (a, 8)]);
    }

    #[test]
    fn alloca_rounds_to_segment() {
        let mut s = stack();
        s.push_frame();
        let a = s.alloca(1).unwrap();
        let b = s.alloca(1).unwrap();
        assert_eq!(a - b, 8);
        assert!(a.is_segment_aligned() && b.is_segment_aligned());
    }

    #[test]
    fn stack_overflow_errors() {
        let mut s = stack();
        s.push_frame();
        assert!(s.alloca(0x2000).is_err());
        // A fitting request still succeeds afterwards.
        assert!(s.alloca(0x800).is_ok());
        assert!(s.alloca(0x900).is_err());
    }

    #[test]
    #[should_panic(expected = "outside any stack frame")]
    fn alloca_without_frame_panics() {
        let mut s = stack();
        let _ = s.alloca(8);
    }

    #[test]
    fn pop_without_frame_is_empty() {
        let mut s = stack();
        assert!(s.pop_frame().is_empty());
    }
}
