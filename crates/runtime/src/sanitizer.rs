//! The sanitizer API every tool implements, plus the native baseline.

use giantsan_shadow::Addr;

use crate::{
    AccessKind, Allocation, CheckResult, Counters, ErrorReport, HeapError, MetadataFault, Region,
    RuntimeConfig, World,
};

/// Per-pointer history-cache state (the paper's quasi-bound, §4.3).
///
/// The slot is dumb data owned by the instrumented program (one local
/// variable per cached pointer, like `ub` in Figure 9); the sanitizer
/// interprets it in [`Sanitizer::cached_check`]. Tools without history
/// caching simply ignore it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSlot {
    /// Exclusive upper bound, in bytes relative to the cached pointer, below
    /// which accesses are known safe. Starts at 0 ("size unknown").
    pub ub: u64,
    /// Inclusive lower bound (≤ 0), in bytes relative to the cached pointer,
    /// above which accesses are known safe. The paper keeps no quasi-lower
    /// bound by default; GiantSan's optional reverse-traversal mitigation
    /// (§5.4, second alternative) fills this by locating the lower bound of
    /// the addressable run through the folded segments.
    pub lb: i64,
    /// Number of times either bound was refreshed; the paper proves the
    /// upper bound converges in at most `⌈log2(n/8)⌉` refreshes for an
    /// `n`-byte object.
    pub updates: u32,
}

impl CacheSlot {
    /// A fresh, empty cache slot.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A memory-safety tool attached to a simulated [`World`].
///
/// The trait surfaces exactly the hook points the paper's runtime uses:
/// allocation/deallocation events (shadow poisoning), instruction-level
/// checks, operation-level region checks of arbitrary size, anchor-based
/// checks, and history-cached checks. Default implementations degrade
/// gracefully: a tool that cannot check regions in O(1) may override
/// [`Sanitizer::check_region`] with a linear loop (ASan does), and a tool
/// without history caching inherits a `cached_check` that performs a plain
/// anchored check on every access.
///
/// `Send` is a supertrait: every tool owns its world outright (no shared
/// interior mutability), and the batch-execution engine moves freshly built
/// sessions onto worker threads.
pub trait Sanitizer: Send {
    /// Short tool name, e.g. `"GiantSan"`.
    fn name(&self) -> &'static str;

    /// The world this tool runs in.
    fn world(&self) -> &World;

    /// Mutable world access (used by the interpreter for data loads/stores).
    fn world_mut(&mut self) -> &mut World;

    /// Check statistics accumulated so far.
    fn counters(&self) -> &Counters;

    /// Mutable access to the statistics.
    fn counters_mut(&mut self) -> &mut Counters;

    /// Allocates an object and poisons its metadata.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError`] when the arena is exhausted.
    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError>;

    /// Frees a heap object, updating metadata.
    ///
    /// # Errors
    ///
    /// Returns an error report for invalid/double/wild frees.
    fn free(&mut self, base: Addr) -> CheckResult;

    /// Reallocates a heap object, maintaining metadata for the new block,
    /// the copied contents, and the quarantined old block.
    ///
    /// The default performs the move through the world and maintains no
    /// shadow (correct only for tools without shadow state).
    ///
    /// # Errors
    ///
    /// Returns the same reports as [`Sanitizer::free`] for invalid bases.
    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, ErrorReport> {
        let (a, _outcome) = self.world_mut().realloc(base, new_size)?;
        self.counters_mut().allocs += 1;
        self.counters_mut().frees += 1;
        Ok(a)
    }

    /// Enters a stack frame.
    fn push_frame(&mut self);

    /// Leaves the current stack frame, poisoning dead slots.
    fn pop_frame(&mut self);

    /// Instruction-level check of `width` bytes at `addr` (ASan's classic
    /// `w ≤ 8` fast path).
    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult;

    /// Operation-level check that `[lo, hi)` is entirely addressable.
    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult;

    /// Anchor-based check (§4.4.1): validate the whole range between the
    /// object's base pointer (`anchor`) and the far edge of the access, so
    /// that a one-byte redzone suffices to catch redzone-bypassing offsets.
    ///
    /// The default derives the covering range and defers to
    /// [`Sanitizer::check_region`].
    fn check_anchored(
        &mut self,
        anchor: Addr,
        access_lo: Addr,
        access_hi: Addr,
        kind: AccessKind,
    ) -> CheckResult {
        let lo = anchor.min(access_lo);
        let hi = anchor.max(access_hi);
        self.check_region(lo, hi, kind)
    }

    /// History-cached check of `width` bytes at `base + offset` (§4.3).
    ///
    /// The default ignores the slot and performs an anchored check, which is
    /// what a tool without history caching must do for every access.
    fn cached_check(
        &mut self,
        _slot: &mut CacheSlot,
        base: Addr,
        offset: i64,
        width: u32,
        kind: AccessKind,
    ) -> CheckResult {
        let lo = base.offset(offset);
        self.check_access(lo, width, kind)
    }

    /// Final check after a cached loop finishes (Figure 9 line 14), catching
    /// deallocation races the cache may have skipped over.
    fn loop_final_check(
        &mut self,
        _slot: &CacheSlot,
        _base: Addr,
        _kind: AccessKind,
    ) -> CheckResult {
        Ok(())
    }

    /// Whether this tool benefits from history caching (drives the planner's
    /// `Cached` category accounting).
    fn supports_caching(&self) -> bool {
        false
    }

    /// Extra bookkeeping cost hook for stack allocations; LFP overrides this
    /// to model its stack-simulation penalty (§5.2).
    fn note_stack_alloc(&mut self) {
        self.counters_mut().stack_allocs += 1;
    }

    /// Containment hook, called by the interpreter under
    /// [`crate::RecoveryPolicy::Recover`] after `report` was recorded and
    /// the faulting access skipped. Tools with shadow metadata override this
    /// to *heal*: re-derive the shadow encoding around the faulting address
    /// from the ground-truth object table, so one corrupted or stale byte
    /// cannot cascade into a storm of follow-on reports.
    ///
    /// The default (for tools without shadow state) does nothing — skipping
    /// the access is the whole containment.
    fn contain(&mut self, _report: &ErrorReport) {}

    /// Applies a deterministic [`MetadataFault`] to this tool's shadow
    /// metadata at `addr`, returning `true` when the tool has metadata there
    /// to corrupt. The default (no shadow) injects nothing.
    ///
    /// Fault-injection campaigns use this hook; production code never calls
    /// it.
    fn inject_metadata_fault(&mut self, _addr: Addr, _fault: MetadataFault) -> bool {
        false
    }

    /// Read-only peek at the shadow byte covering `addr`, for telemetry.
    ///
    /// Tools with encoded shadow metadata (GiantSan's folded segments,
    /// ASan's partial-byte encoding) return the raw byte so a trace can
    /// record folding degrees and poison codes alongside each check. The
    /// default — tools without shadow state — returns `None`.
    ///
    /// Implementations must not touch counters or any mutable state: the
    /// interpreter only calls this when tracing is enabled, and a probe
    /// that perturbed counters would make traced and untraced runs diverge.
    fn shadow_probe(&self, _addr: Addr) -> Option<u8> {
        None
    }
}

/// Native execution: no redzones, no quarantine, no checks.
///
/// This is the "Native" column of Table 2 — the baseline every overhead
/// ratio is computed against.
///
/// # Example
///
/// ```
/// use giantsan_runtime::{AccessKind, NullSanitizer, Region, RuntimeConfig, Sanitizer};
/// use giantsan_shadow::Addr;
///
/// let mut native = NullSanitizer::new(RuntimeConfig::small());
/// let a = native.alloc(16, Region::Heap).unwrap();
/// // Even a wildly out-of-bounds access is admitted: natively there is no
/// // detection, only (possible) corruption.
/// assert!(native
///     .check_access(a.base + 4096, 8, AccessKind::Write)
///     .is_ok());
/// ```
#[derive(Debug)]
pub struct NullSanitizer {
    world: World,
    counters: Counters,
}

impl NullSanitizer {
    /// Creates a native world from `config`, forcing redzones and quarantine
    /// off (a stock allocator has neither).
    pub fn new(config: RuntimeConfig) -> Self {
        let native_cfg = config.to_builder().redzone(0).quarantine_cap(0).build();
        NullSanitizer {
            world: World::new(native_cfg),
            counters: Counters::default(),
        }
    }
}

impl Sanitizer for NullSanitizer {
    fn name(&self) -> &'static str {
        "Native"
    }

    fn world(&self) -> &World {
        &self.world
    }

    fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        self.counters.allocs += 1;
        if region == Region::Stack {
            self.counters.stack_allocs += 1;
        }
        self.world.alloc(size, region)
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.counters.frees += 1;
        // Native `free` on a bad pointer is undefined behaviour, not a
        // report; the simulator simply ignores it.
        let _ = self.world.free(base);
        Ok(())
    }

    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, crate::ErrorReport> {
        self.counters.allocs += 1;
        self.counters.frees += 1;
        match self.world.realloc(base, new_size) {
            Ok((a, _)) => Ok(a),
            // Undefined behaviour natively: serve a fresh block, no report.
            Err(_) => self
                .world
                .alloc(new_size, Region::Heap)
                .map_err(|_| crate::ErrorReport::new(crate::ErrorKind::Unknown, base, new_size)),
        }
    }

    fn push_frame(&mut self) {
        self.world.push_frame();
    }

    fn pop_frame(&mut self) {
        let _ = self.world.pop_frame();
    }

    fn check_access(&mut self, _addr: Addr, _width: u32, _kind: AccessKind) -> CheckResult {
        Ok(())
    }

    fn check_region(&mut self, _lo: Addr, _hi: Addr, _kind: AccessKind) -> CheckResult {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_never_reports() {
        let mut n = NullSanitizer::new(RuntimeConfig::small());
        let a = n.alloc(8, Region::Heap).unwrap();
        assert!(n.check_access(a.base + 100, 8, AccessKind::Read).is_ok());
        assert!(n
            .check_region(a.base, a.base + 4096, AccessKind::Write)
            .is_ok());
        assert!(n.free(a.base).is_ok());
        assert!(n.free(a.base).is_ok(), "double free is silently ignored");
    }

    #[test]
    fn native_has_no_redzones() {
        let mut n = NullSanitizer::new(RuntimeConfig::default());
        let a = n.alloc(24, Region::Heap).unwrap();
        let info = n.world().objects().get(a.id).unwrap();
        assert_eq!(info.base, info.block_start);
        assert_eq!(info.block_len, 24);
    }

    #[test]
    fn native_reuses_memory_immediately() {
        let mut n = NullSanitizer::new(RuntimeConfig::small());
        let a = n.alloc(8, Region::Heap).unwrap();
        n.free(a.base).unwrap();
        let b = n.alloc(8, Region::Heap).unwrap();
        assert_eq!(a.base, b.base);
    }

    #[test]
    fn default_cached_check_falls_back_to_plain_check() {
        let mut n = NullSanitizer::new(RuntimeConfig::small());
        let a = n.alloc(64, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        assert!(n
            .cached_check(&mut slot, a.base, 8, 4, AccessKind::Read)
            .is_ok());
        assert_eq!(slot, CacheSlot::new(), "native leaves the slot untouched");
        assert!(n.loop_final_check(&slot, a.base, AccessKind::Read).is_ok());
        assert!(!n.supports_caching());
    }

    #[test]
    fn frame_hooks_do_not_leak() {
        let mut n = NullSanitizer::new(RuntimeConfig::small());
        n.push_frame();
        let s = n.alloc(32, Region::Stack).unwrap();
        assert_eq!(s.region, Region::Stack);
        n.pop_frame();
        assert_eq!(n.world().stack().bytes_in_use(), 0);
        assert_eq!(n.counters().stack_allocs, 1);
    }
}
