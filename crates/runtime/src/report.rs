//! Error reports produced by sanitizers.

use std::fmt;

use giantsan_shadow::Addr;

/// Whether a faulting operation was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load from memory.
    Read,
    /// A store to memory.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "READ",
            AccessKind::Write => "WRITE",
        })
    }
}

/// Classification of a detected memory error.
///
/// The variants mirror ASan's report kinds, which is what GiantSan inherits:
/// spatial errors (over/underflow per region kind), temporal errors
/// (use-after-free), allocator-API misuse, and wild/null accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Access beyond the end of a heap object (into a right redzone).
    HeapBufferOverflow,
    /// Access before the start of a heap object (into a left redzone).
    HeapBufferUnderflow,
    /// Access outside a stack slot.
    StackBufferOverflow,
    /// Access before a stack slot.
    StackBufferUnderflow,
    /// Access outside a global object.
    GlobalBufferOverflow,
    /// Access to a freed (quarantined) region.
    UseAfterFree,
    /// `free` called with a pointer that is not an allocation base
    /// (CWE-761).
    InvalidFree,
    /// `free` called twice on the same allocation.
    DoubleFree,
    /// Access to unmapped memory (includes null dereference), reported as a
    /// crash by every tool including native execution.
    Wild,
    /// The tool knows the access is bad but cannot classify it further.
    Unknown,
}

impl ErrorKind {
    /// Returns `true` for spatial violations (out-of-bounds).
    pub fn is_spatial(self) -> bool {
        matches!(
            self,
            ErrorKind::HeapBufferOverflow
                | ErrorKind::HeapBufferUnderflow
                | ErrorKind::StackBufferOverflow
                | ErrorKind::StackBufferUnderflow
                | ErrorKind::GlobalBufferOverflow
        )
    }

    /// Returns `true` for temporal violations.
    pub fn is_temporal(self) -> bool {
        matches!(self, ErrorKind::UseAfterFree | ErrorKind::DoubleFree)
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::HeapBufferOverflow => "heap-buffer-overflow",
            ErrorKind::HeapBufferUnderflow => "heap-buffer-underflow",
            ErrorKind::StackBufferOverflow => "stack-buffer-overflow",
            ErrorKind::StackBufferUnderflow => "stack-buffer-underflow",
            ErrorKind::GlobalBufferOverflow => "global-buffer-overflow",
            ErrorKind::UseAfterFree => "heap-use-after-free",
            ErrorKind::InvalidFree => "invalid-free",
            ErrorKind::DoubleFree => "double-free",
            ErrorKind::Wild => "SEGV on unknown address",
            ErrorKind::Unknown => "invalid-memory-access",
        })
    }
}

/// A single error report, the sanitizer-visible unit of detection.
///
/// # Example
///
/// ```
/// use giantsan_runtime::{AccessKind, ErrorKind, ErrorReport};
/// use giantsan_shadow::Addr;
///
/// let r = ErrorReport::new(ErrorKind::HeapBufferOverflow, Addr::new(0x1000), 4)
///     .with_access(AccessKind::Write);
/// assert!(r.kind.is_spatial());
/// assert!(format!("{r}").contains("heap-buffer-overflow"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct ErrorReport {
    /// Error classification.
    pub kind: ErrorKind,
    /// First faulting address.
    pub addr: Addr,
    /// Size of the faulting access or region in bytes.
    pub len: u64,
    /// Read or write, when known.
    pub access: Option<AccessKind>,
    /// Static site that raised the report (mini-IR site id), when known.
    pub site: Option<u32>,
}

impl ErrorReport {
    /// Creates a report for `len` bytes at `addr`.
    pub fn new(kind: ErrorKind, addr: Addr, len: u64) -> Self {
        ErrorReport {
            kind,
            addr,
            len,
            access: None,
            site: None,
        }
    }

    /// Tags the report with the access direction.
    pub fn with_access(mut self, access: AccessKind) -> Self {
        self.access = Some(access);
        self
    }

    /// Tags the report with the static check site that raised it.
    pub fn with_site(mut self, site: u32) -> Self {
        self.site = Some(site);
        self
    }
}

impl fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ERROR: {}", self.kind)?;
        if let Some(a) = self.access {
            write!(f, " on {a}")?;
        }
        write!(f, " of {} byte(s) at {}", self.len, self.addr)?;
        if let Some(s) = self.site {
            write!(f, " (site {s})")?;
        }
        Ok(())
    }
}

impl std::error::Error for ErrorReport {}

/// Result of a runtime check: `Ok` when the access is admitted.
pub type CheckResult = Result<(), ErrorReport>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(ErrorKind::HeapBufferOverflow.is_spatial());
        assert!(ErrorKind::StackBufferUnderflow.is_spatial());
        assert!(!ErrorKind::UseAfterFree.is_spatial());
        assert!(ErrorKind::UseAfterFree.is_temporal());
        assert!(ErrorKind::DoubleFree.is_temporal());
        assert!(!ErrorKind::Wild.is_temporal());
        assert!(!ErrorKind::Wild.is_spatial());
    }

    #[test]
    fn report_builders_and_display() {
        let r = ErrorReport::new(ErrorKind::UseAfterFree, Addr::new(64), 8)
            .with_access(AccessKind::Read)
            .with_site(7);
        let s = format!("{r}");
        assert!(s.contains("heap-use-after-free"));
        assert!(s.contains("READ"));
        assert!(s.contains("site 7"));
        assert!(s.contains("8 byte(s)"));
    }

    #[test]
    fn all_kinds_display_distinctly() {
        use ErrorKind::*;
        let kinds = [
            HeapBufferOverflow,
            HeapBufferUnderflow,
            StackBufferOverflow,
            StackBufferUnderflow,
            GlobalBufferOverflow,
            UseAfterFree,
            InvalidFree,
            DoubleFree,
            Wild,
            Unknown,
        ];
        let mut seen = std::collections::HashSet::new();
        for k in kinds {
            assert!(seen.insert(format!("{k}")), "duplicate display for {k:?}");
        }
    }
}
