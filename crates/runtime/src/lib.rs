#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Simulated allocator runtime and the sanitizer API.
//!
//! The GiantSan paper builds on ASan's runtime support library: a hooked
//! allocator that pads objects with *redzones*, delays reuse through a
//! *quarantine*, keeps everything 8-byte aligned, and exposes the events a
//! sanitizer needs to maintain its shadow metadata. This crate implements
//! that substrate for the simulated address space of `giantsan-shadow`:
//!
//! * [`SimHeap`] — a first-fit free-list heap with configurable redzones;
//! * [`block_heap::BlockHeap`] — the Immix-style block/line allocator
//!   (32 KiB blocks, 128-byte lines, size classes, per-thread arenas)
//!   selected by [`config::HeapBackend::BlockLine`];
//! * [`Quarantine`] — a FIFO byte-capped quarantine (temporal-error defence);
//! * [`ClusterQuarantine`] — the block-clustered quarantine paired with the
//!   block/line heap (whole clusters evict together);
//! * [`StackSim`] — simulated stack frames with per-slot redzones;
//! * [`ObjectTable`] — ground-truth object bounds used as an oracle when
//!   counting false negatives/positives (a luxury real sanitizers lack);
//! * [`World`] — the bundle of space + heap + stack + table a sanitizer runs in;
//! * [`Sanitizer`] — the trait every tool (GiantSan, ASan, ASan--, LFP, and
//!   the native no-op baseline) implements;
//! * [`Counters`] — the metadata-loading / check statistics behind the
//!   paper's ablation study (Figure 10).
//!
//! # Example
//!
//! ```
//! use giantsan_runtime::{AccessKind, NullSanitizer, RuntimeConfig, Region, Sanitizer};
//!
//! let mut native = NullSanitizer::new(RuntimeConfig::default());
//! let a = native.alloc(100, Region::Heap).unwrap();
//! // Native never reports.
//! assert!(native.check_access(a.base, 8, AccessKind::Read).is_ok());
//! native.free(a.base).unwrap();
//! ```

pub mod block_heap;
mod config;
mod counters;
mod heap;
mod object;
mod quarantine;
mod recovery;
mod report;
mod sanitizer;
mod stack;
mod tcache;
mod world;

pub use block_heap::{BlockEvent, BlockHeap, BlockHeapStats, Placement};
pub use config::{HeapBackend, RuntimeConfig, RuntimeConfigBuilder};
pub use counters::Counters;
pub use heap::{HeapError, SimHeap};
pub use object::{ObjectId, ObjectInfo, ObjectState, ObjectTable};
pub use quarantine::{ClusterQuarantine, Evictions, Quarantine};
pub use recovery::{Admission, MetadataFault, RecoverLimits, RecoveryPolicy, RecoveryState};
pub use report::{AccessKind, CheckResult, ErrorKind, ErrorReport};
pub use sanitizer::{CacheSlot, NullSanitizer, Sanitizer};
pub use stack::StackSim;
pub use tcache::{TcacheStats, ThreadCachedAllocator};
pub use world::{Allocation, FreeOutcome, HeapArena, Region, World};
