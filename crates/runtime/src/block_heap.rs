//! Immix-style block/line heap: the allocation layer behind ROADMAP item 2.
//!
//! The free-list [`crate::SimHeap`] serves million-object workloads one
//! `BTreeMap` probe at a time and hands the sanitizer one object per call to
//! poison. This allocator restructures the arena the way Immix structures a
//! GC heap — and the way "Beyond Tag Collision"-style cluster allocators
//! structure a hardened malloc:
//!
//! * the arena is carved into **32 KiB blocks** of **128-byte lines**;
//! * small and medium requests are rounded to a **size class** (a whole
//!   number of lines) and bump-allocated into a block dedicated to that
//!   class — allocation is a pop-or-increment, not a tree search;
//! * freed slots become **holes**; hole-finding recycles the lowest hole of
//!   the lowest partial block first, so address reuse stays deterministic;
//! * requests larger than [`MEDIUM_MAX`] take **whole-block spans**;
//! * blocks are partitioned into **per-thread arenas** so parallel batch
//!   cells allocate without contending on one shared cursor.
//!
//! The block structure is what makes *poisoning* block-granular: when a
//! block is dedicated to a class, every slot has the same shadow image, so
//! the sanitizer can write the whole block's folded codes with one bulk
//! kernel call; when a block's last object leaves, one `fill` resets 32 KiB
//! of shadow. The heap reports those two moments as [`BlockEvent`]s.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use giantsan_shadow::{align_up, Addr, SEGMENT_SIZE};

use crate::HeapError;

/// Bytes per block: the Immix default, 256 lines.
pub const BLOCK_SIZE: u64 = 32 * 1024;

/// Bytes per line: the granule of hole-finding and slot rounding.
pub const LINE_SIZE: u64 = 128;

/// Lines per block.
pub const LINES_PER_BLOCK: u64 = BLOCK_SIZE / LINE_SIZE;

/// Size classes, in lines per slot. Small classes (1–8 lines, ≤ 1 KiB)
/// advance line by line; medium classes (16/32/64 lines, ≤ 8 KiB) advance by
/// powers of two. Anything larger is a whole-block span.
pub const CLASS_LINES: [u64; 11] = [1, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64];

/// Largest request (bytes, redzones included) served from class blocks.
pub const MEDIUM_MAX: u64 = 64 * LINE_SIZE;

/// Class index reported for whole-block spans in [`Placement::class`].
pub const LARGE_CLASS: u8 = u8::MAX;

/// Smallest class whose slot holds `len` bytes, or `None` for large spans.
pub fn class_of(len: u64) -> Option<u8> {
    if len > MEDIUM_MAX {
        return None;
    }
    let lines = len.div_ceil(LINE_SIZE).max(1);
    CLASS_LINES
        .iter()
        .position(|&c| c >= lines)
        .map(|i| i as u8)
}

/// Where an allocation landed in the block/line structure. Sanitizers use
/// `pristine` for the bulk-poison fast path; telemetry exports the block /
/// line / class triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Arena the allocation came from.
    pub arena: u32,
    /// Block index within the heap (start-relative, not an address).
    pub block: u64,
    /// First line of the slot within its block.
    pub line: u32,
    /// Size-class index into [`CLASS_LINES`], or [`LARGE_CLASS`] for spans.
    pub class: u8,
    /// Bytes actually reserved (the slot or span length; ≥ the request).
    pub slot_len: u64,
    /// `true` when the slot has never been used since its block was mapped:
    /// its shadow still holds the block's bulk-written class pattern.
    pub pristine: bool,
}

/// A moment where shadow poisoning can act on a whole block at once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEvent {
    /// A free block was dedicated to a size class: all `slots` slots of
    /// `slot_len` bytes can be pattern-poisoned in one bulk write.
    Mapped {
        /// First byte of the block.
        start: Addr,
        /// Bytes per slot.
        slot_len: u64,
        /// Number of slots carved from the block.
        slots: u32,
    },
    /// `len` bytes of whole blocks returned to the free pool (a drained
    /// class block or a released span): one fill resets their shadow.
    Freed {
        /// First byte of the run.
        start: Addr,
        /// Length of the run in bytes (a multiple of [`BLOCK_SIZE`]).
        len: u64,
    },
}

/// Aggregate statistics of a [`BlockHeap`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockHeapStats {
    /// Free blocks dedicated to a size class.
    pub blocks_mapped: u64,
    /// Whole blocks returned to the free pool (drained classes + spans).
    pub blocks_freed: u64,
    /// Slot holes reused by hole-finding (line recycling).
    pub holes_recycled: u64,
    /// Whole-block spans served.
    pub large_spans: u64,
}

/// One block currently dedicated to a size class.
#[derive(Debug, Clone)]
struct ClassBlock {
    /// Recycled slot indices available for reuse (lowest first).
    holes: BTreeSet<u32>,
    /// Next never-used slot index (the bump cursor).
    bump: u32,
    /// Outstanding slots.
    live: u32,
}

/// One arena: a contiguous run of blocks with its own free pool and
/// per-class block lists.
#[derive(Debug, Clone)]
struct Arena {
    /// Free blocks of this arena, by start address.
    free_blocks: BTreeSet<u64>,
    /// Per class: blocks with at least one free slot, by start address.
    partial: Vec<BTreeMap<u64, ClassBlock>>,
    /// Per class: blocks with no free slot, by start address.
    full: Vec<HashMap<u64, ClassBlock>>,
}

impl Arena {
    fn new(blocks: impl Iterator<Item = u64>) -> Self {
        Arena {
            free_blocks: blocks.collect(),
            partial: (0..CLASS_LINES.len()).map(|_| BTreeMap::new()).collect(),
            full: (0..CLASS_LINES.len()).map(|_| HashMap::new()).collect(),
        }
    }
}

/// The Immix-style block/line allocator over `[lo, hi)`.
///
/// Mirrors [`crate::SimHeap`]'s `acquire`/`release` surface (so [`crate::World`]
/// treats both as interchangeable backends) and adds `acquire_in` for
/// arena-directed allocation plus [`BlockHeap::take_events`] for
/// block-granular poisoning.
///
/// # Example
///
/// ```
/// use giantsan_runtime::block_heap::{BlockHeap, BLOCK_SIZE};
/// use giantsan_shadow::Addr;
///
/// let lo = Addr::new(0x1_0000);
/// let mut heap = BlockHeap::new(lo, lo + 4 * BLOCK_SIZE, 1);
/// let (a, p) = heap.acquire_in(0, 100)?;
/// assert_eq!(a, lo, "first slot of the first mapped block");
/// assert!(p.pristine);
/// heap.release(a, 100)?;
/// # Ok::<(), giantsan_runtime::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockHeap {
    lo: Addr,
    hi: Addr,
    arenas: Vec<Arena>,
    /// Block start → (arena, class) for blocks dedicated to a class.
    class_blocks: HashMap<u64, (u32, u8)>,
    /// Span start → block count for outstanding large spans.
    spans: HashMap<u64, u64>,
    /// Outstanding allocations: start → reserved bytes (slot or span).
    live: HashMap<u64, u64>,
    bytes_in_use: u64,
    high_water: u64,
    stats: BlockHeapStats,
    events: Vec<BlockEvent>,
}

impl BlockHeap {
    /// Creates a heap over `[lo, hi)` split into `arenas` contiguous arenas.
    ///
    /// Only whole blocks are managed: a non-multiple tail of the range is
    /// left unused.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or misaligned, if `arenas` is zero, or
    /// if there are fewer blocks than arenas.
    pub fn new(lo: Addr, hi: Addr, arenas: u32) -> Self {
        assert!(lo < hi, "empty heap range");
        assert!(lo.is_segment_aligned() && hi.is_segment_aligned());
        assert!(arenas > 0, "need at least one arena");
        let n_blocks = (hi - lo) / BLOCK_SIZE;
        assert!(
            n_blocks >= arenas as u64,
            "{n_blocks} blocks cannot back {arenas} arenas"
        );
        let per = n_blocks / arenas as u64;
        let arena_list = (0..arenas as u64)
            .map(|i| {
                let first = i * per;
                // The last arena absorbs the remainder blocks.
                let last = if i + 1 == arenas as u64 {
                    n_blocks
                } else {
                    first + per
                };
                Arena::new((first..last).map(|b| lo.raw() + b * BLOCK_SIZE))
            })
            .collect();
        BlockHeap {
            lo,
            hi,
            arenas: arena_list,
            class_blocks: HashMap::new(),
            spans: HashMap::new(),
            live: HashMap::new(),
            bytes_in_use: 0,
            high_water: 0,
            stats: BlockHeapStats::default(),
            events: Vec::new(),
        }
    }

    /// Lowest address managed by the heap.
    pub fn lo(&self) -> Addr {
        self.lo
    }

    /// One past the highest address managed by the heap.
    pub fn hi(&self) -> Addr {
        self.hi
    }

    /// Number of arenas.
    pub fn arena_count(&self) -> u32 {
        self.arenas.len() as u32
    }

    /// Bytes currently reserved (slot and span lengths, which include the
    /// callers' redzones and any class rounding).
    pub fn bytes_in_use(&self) -> u64 {
        self.bytes_in_use
    }

    /// Peak of [`BlockHeap::bytes_in_use`] over the heap's lifetime.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> BlockHeapStats {
        self.stats
    }

    /// Free blocks across all arenas (fragmentation tests).
    pub fn free_blocks(&self) -> usize {
        self.arenas.iter().map(|a| a.free_blocks.len()).sum()
    }

    /// Drains the block events accumulated since the last call. The caller
    /// (a sanitizer) turns each into one bulk shadow write.
    pub fn take_events(&mut self) -> Vec<BlockEvent> {
        std::mem::take(&mut self.events)
    }

    /// Discards pending events (callers that poison per object).
    pub fn clear_events(&mut self) {
        self.events.clear();
    }

    /// Start of the block (or span) containing `addr` — the cluster key the
    /// cluster quarantine groups by.
    pub fn cluster_of(&self, addr: Addr) -> u64 {
        let rel = addr - self.lo;
        self.lo.raw() + (rel / BLOCK_SIZE) * BLOCK_SIZE
    }

    fn arena_of(&self, addr: u64) -> u32 {
        let block = (addr - self.lo.raw()) / BLOCK_SIZE;
        let n_blocks = (self.hi - self.lo) / BLOCK_SIZE;
        let per = n_blocks / self.arenas.len() as u64;
        ((block / per.max(1)) as u32).min(self.arenas.len() as u32 - 1)
    }

    /// Acquires from arena 0 — the [`crate::SimHeap`]-shaped entry point.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the arena is exhausted.
    pub fn acquire(&mut self, len: u64) -> Result<Addr, HeapError> {
        self.acquire_in(0, len).map(|(a, _)| a)
    }

    /// Acquires at least `len` bytes from `arena`, returning the address and
    /// its [`Placement`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the arena cannot serve the
    /// request (arenas do not steal from each other).
    ///
    /// # Panics
    ///
    /// Panics if `arena` is out of range.
    pub fn acquire_in(&mut self, arena: u32, len: u64) -> Result<(Addr, Placement), HeapError> {
        let rounded = align_up(len.max(1), SEGMENT_SIZE);
        let (addr, placement) = match class_of(rounded) {
            Some(class) => self.acquire_class(arena, class)?,
            None => self.acquire_span(arena, rounded)?,
        };
        self.live.insert(addr.raw(), placement.slot_len);
        self.bytes_in_use += placement.slot_len;
        self.high_water = self.high_water.max(self.bytes_in_use);
        Ok((addr, placement))
    }

    fn acquire_class(&mut self, arena: u32, class: u8) -> Result<(Addr, Placement), HeapError> {
        let slot_len = CLASS_LINES[class as usize] * LINE_SIZE;
        let slots = (BLOCK_SIZE / slot_len) as u32;
        let a = &mut self.arenas[arena as usize];
        let c = class as usize;
        if a.partial[c].is_empty() {
            // Map the lowest free block for this class.
            let start = *a.free_blocks.iter().next().ok_or(HeapError::OutOfMemory {
                requested: slot_len,
            })?;
            a.free_blocks.remove(&start);
            a.partial[c].insert(
                start,
                ClassBlock {
                    holes: BTreeSet::new(),
                    bump: 0,
                    live: 0,
                },
            );
            self.class_blocks.insert(start, (arena, class));
            self.stats.blocks_mapped += 1;
            self.events.push(BlockEvent::Mapped {
                start: Addr::new(start),
                slot_len,
                slots,
            });
        }
        let (&start, block) = a.partial[c].iter_mut().next().expect("nonempty partial");
        // Hole-finding first (line recycling), then the bump cursor.
        let (slot, pristine) = match block.holes.pop_first() {
            Some(h) => {
                self.stats.holes_recycled += 1;
                (h, false)
            }
            None => {
                let s = block.bump;
                block.bump += 1;
                (s, true)
            }
        };
        block.live += 1;
        if block.holes.is_empty() && block.bump == slots {
            let full = a.partial[c].remove(&start).expect("block just used");
            a.full[c].insert(start, full);
        }
        let addr = Addr::new(start + slot as u64 * slot_len);
        let placement = Placement {
            arena,
            block: (start - self.lo.raw()) / BLOCK_SIZE,
            line: (slot as u64 * slot_len / LINE_SIZE) as u32,
            class,
            slot_len,
            pristine,
        };
        Ok((addr, placement))
    }

    fn acquire_span(&mut self, arena: u32, rounded: u64) -> Result<(Addr, Placement), HeapError> {
        let blocks = rounded.div_ceil(BLOCK_SIZE);
        let a = &mut self.arenas[arena as usize];
        // Lowest run of `blocks` consecutive free blocks.
        let mut run_start = None;
        let mut run_len = 0u64;
        let mut found = None;
        for &b in &a.free_blocks {
            match run_start {
                Some(s) if b == s + run_len * BLOCK_SIZE => run_len += 1,
                _ => {
                    run_start = Some(b);
                    run_len = 1;
                }
            }
            if run_len == blocks {
                found = Some(run_start.expect("run tracked"));
                break;
            }
        }
        let start = found.ok_or(HeapError::OutOfMemory { requested: rounded })?;
        for i in 0..blocks {
            a.free_blocks.remove(&(start + i * BLOCK_SIZE));
        }
        self.spans.insert(start, blocks);
        self.stats.large_spans += 1;
        let placement = Placement {
            arena,
            block: (start - self.lo.raw()) / BLOCK_SIZE,
            line: 0,
            class: LARGE_CLASS,
            slot_len: blocks * BLOCK_SIZE,
            pristine: false,
        };
        Ok((Addr::new(start), placement))
    }

    /// Returns an allocation previously handed out by
    /// [`BlockHeap::acquire_in`]. Draining a class block's last slot (or
    /// releasing a span) returns whole blocks to the free pool and emits
    /// [`BlockEvent::Freed`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::UnknownBlock`] if `start` is not an outstanding
    /// allocation whose reservation matches `len`.
    pub fn release(&mut self, start: Addr, len: u64) -> Result<(), HeapError> {
        let rounded = align_up(len.max(1), SEGMENT_SIZE);
        let reserved = match self.live.get(&start.raw()) {
            Some(&r) => r,
            None => return Err(HeapError::UnknownBlock { addr: start }),
        };
        // The caller's length must round to the recorded reservation, the
        // same wrong-length defence SimHeap::release has.
        let expected = match class_of(rounded) {
            Some(c) => CLASS_LINES[c as usize] * LINE_SIZE,
            None => rounded.div_ceil(BLOCK_SIZE) * BLOCK_SIZE,
        };
        if expected != reserved {
            return Err(HeapError::UnknownBlock { addr: start });
        }
        self.live.remove(&start.raw());
        self.bytes_in_use -= reserved;
        if let Some(blocks) = self.spans.remove(&start.raw()) {
            let arena = self.arena_of(start.raw());
            let a = &mut self.arenas[arena as usize];
            for i in 0..blocks {
                a.free_blocks.insert(start.raw() + i * BLOCK_SIZE);
            }
            self.stats.blocks_freed += blocks;
            self.events.push(BlockEvent::Freed {
                start,
                len: blocks * BLOCK_SIZE,
            });
            return Ok(());
        }
        let block_start = self.cluster_of(start);
        let (arena, class) = self.class_blocks[&block_start];
        let slot_len = CLASS_LINES[class as usize] * LINE_SIZE;
        let slots = (BLOCK_SIZE / slot_len) as u32;
        let slot = ((start.raw() - block_start) / slot_len) as u32;
        let a = &mut self.arenas[arena as usize];
        let c = class as usize;
        let in_partial = a.partial[c].contains_key(&block_start);
        let block = if in_partial {
            a.partial[c].get_mut(&block_start).expect("partial block")
        } else {
            a.full[c].get_mut(&block_start).expect("tracked block")
        };
        block.holes.insert(slot);
        block.live -= 1;
        if block.live == 0 {
            // Drained: the whole block returns to the free pool.
            if in_partial {
                a.partial[c].remove(&block_start);
            } else {
                a.full[c].remove(&block_start);
            }
            self.class_blocks.remove(&block_start);
            a.free_blocks.insert(block_start);
            self.stats.blocks_freed += 1;
            self.events.push(BlockEvent::Freed {
                start: Addr::new(block_start),
                len: BLOCK_SIZE,
            });
        } else if !in_partial {
            let b = a.full[c].remove(&block_start).expect("tracked block");
            a.partial[c].insert(block_start, b);
        }
        let _ = slots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(blocks: u64, arenas: u32) -> BlockHeap {
        let lo = Addr::new(0x1_0000);
        BlockHeap::new(lo, lo + blocks * BLOCK_SIZE, arenas)
    }

    #[test]
    fn classes_cover_the_line_spectrum() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(128), Some(0));
        assert_eq!(class_of(129), Some(1));
        assert_eq!(class_of(1024), Some(7));
        assert_eq!(class_of(1025), Some(8));
        assert_eq!(class_of(8192), Some(10));
        assert_eq!(class_of(8193), None);
    }

    #[test]
    fn bump_allocation_is_sequential_within_a_block() {
        let mut h = heap(4, 1);
        let (a, pa) = h.acquire_in(0, 100).unwrap();
        let (b, pb) = h.acquire_in(0, 100).unwrap();
        assert_eq!(b - a, LINE_SIZE, "1-line slots bump line by line");
        assert!(pa.pristine && pb.pristine);
        assert_eq!((pa.line, pb.line), (0, 1));
        assert_eq!(pa.block, pb.block);
    }

    #[test]
    fn classes_segregate_into_distinct_blocks() {
        let mut h = heap(4, 1);
        let (a, pa) = h.acquire_in(0, 100).unwrap();
        let (b, pb) = h.acquire_in(0, 300).unwrap();
        assert_ne!(pa.block, pb.block);
        assert_ne!(h.cluster_of(a), h.cluster_of(b));
        assert_eq!(pb.slot_len, 3 * LINE_SIZE);
    }

    #[test]
    fn hole_finding_reuses_the_lowest_freed_slot() {
        let mut h = heap(4, 1);
        let slots: Vec<_> = (0..4).map(|_| h.acquire_in(0, 128).unwrap().0).collect();
        h.release(slots[1], 128).unwrap();
        h.release(slots[2], 128).unwrap();
        let (r, p) = h.acquire_in(0, 128).unwrap();
        assert_eq!(r, slots[1], "lowest hole first");
        assert!(!p.pristine, "a recycled hole is not pristine");
        assert_eq!(h.stats().holes_recycled, 1);
    }

    #[test]
    fn draining_a_block_frees_it_and_emits_events() {
        let mut h = heap(2, 1);
        let (a, _) = h.acquire_in(0, 128).unwrap();
        let (b, _) = h.acquire_in(0, 128).unwrap();
        let ev = h.take_events();
        assert_eq!(ev.len(), 1, "one Mapped event: {ev:?}");
        assert!(matches!(ev[0], BlockEvent::Mapped { slot_len: 128, .. }));
        h.release(a, 128).unwrap();
        assert!(h.take_events().is_empty(), "block still has a live slot");
        h.release(b, 128).unwrap();
        let ev = h.take_events();
        assert!(
            matches!(
                ev[..],
                [BlockEvent::Freed {
                    len: BLOCK_SIZE,
                    ..
                }]
            ),
            "{ev:?}"
        );
        assert_eq!(h.free_blocks(), 2);
        assert_eq!(h.bytes_in_use(), 0);
    }

    #[test]
    fn large_spans_take_consecutive_blocks() {
        let mut h = heap(8, 1);
        let (a, p) = h.acquire_in(0, 3 * BLOCK_SIZE - 10).unwrap();
        assert_eq!(p.class, LARGE_CLASS);
        assert_eq!(p.slot_len, 3 * BLOCK_SIZE);
        assert_eq!(h.free_blocks(), 5);
        h.release(a, 3 * BLOCK_SIZE - 10).unwrap();
        assert_eq!(h.free_blocks(), 8);
        assert_eq!(h.bytes_in_use(), 0);
        // The span run starts at the lowest free block again.
        let (b, _) = h.acquire_in(0, 2 * BLOCK_SIZE).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn span_skips_a_fragmented_run() {
        let mut h = heap(6, 1);
        // Pin blocks 0–2 with single-block spans, then free the middle one.
        let pins: Vec<_> = (0..3)
            .map(|_| h.acquire_in(0, BLOCK_SIZE).unwrap().0)
            .collect();
        h.release(pins[1], BLOCK_SIZE).unwrap();
        // Free blocks are 1 (isolated) and 3–5: a 2-block span cannot use
        // the fragmented hole and must start at block 3.
        let (span, _) = h.acquire_in(0, 2 * BLOCK_SIZE).unwrap();
        assert_eq!((span - h.lo()) / BLOCK_SIZE, 3);
    }

    #[test]
    fn arenas_are_disjoint_and_independent() {
        let mut h = heap(8, 2);
        let (a, pa) = h.acquire_in(0, 64).unwrap();
        let (b, pb) = h.acquire_in(1, 64).unwrap();
        assert_eq!(pa.arena, 0);
        assert_eq!(pb.arena, 1);
        assert!(pb.block >= 4, "arena 1 starts in the second half");
        assert_ne!(h.cluster_of(a), h.cluster_of(b));
        // Exhausting arena 0 does not touch arena 1.
        while h.acquire_in(0, BLOCK_SIZE).is_ok() {}
        assert!(h.acquire_in(1, 64).is_ok());
    }

    #[test]
    fn out_of_memory_and_unknown_release() {
        let mut h = heap(2, 1);
        assert!(matches!(
            h.acquire_in(0, 4 * BLOCK_SIZE),
            Err(HeapError::OutOfMemory { .. })
        ));
        let (a, _) = h.acquire_in(0, 64).unwrap();
        assert!(h.release(a + 64, 64).is_err(), "not an allocation start");
        assert!(h.release(a, 4096).is_err(), "wrong length rejected");
        h.release(a, 64).unwrap();
        assert!(h.release(a, 64).is_err(), "double release rejected");
    }

    #[test]
    fn accounting_recovers_after_churn() {
        let mut h = heap(16, 1);
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for round in 0..2000u64 {
            let len = 8 + (round * 56) % 9000;
            if let Ok((a, _)) = h.acquire_in(0, len) {
                live.push((a, len));
            }
            if live.len() > 40 {
                let (a, l) = live.remove(live.len() / 2);
                h.release(a, l).unwrap();
            }
        }
        assert!(h.high_water() > 0);
        for (a, l) in live {
            h.release(a, l).unwrap();
        }
        assert_eq!(h.bytes_in_use(), 0);
        assert_eq!(h.free_blocks(), 16, "every block must return to the pool");
        assert!(h.acquire_in(0, 16 * BLOCK_SIZE).is_ok());
    }

    #[test]
    fn high_water_tracks_reserved_bytes() {
        let mut h = heap(4, 1);
        let (a, _) = h.acquire_in(0, 100).unwrap(); // 1 line reserved
        let (b, _) = h.acquire_in(0, 200).unwrap(); // 2 lines reserved
        assert_eq!(h.bytes_in_use(), 3 * LINE_SIZE);
        h.release(a, 100).unwrap();
        h.release(b, 200).unwrap();
        assert_eq!(h.high_water(), 3 * LINE_SIZE);
        assert_eq!(h.bytes_in_use(), 0);
    }
}
