//! The simulated world a sanitizer runs in: address space, heap, stack,
//! globals, quarantine, and the ground-truth object table.

use giantsan_shadow::{align_up, Addr, AddressSpace, SEGMENT_SIZE};

use crate::block_heap::{BlockEvent, BlockHeap, Placement};
use crate::config::HeapBackend;
use crate::{
    ClusterQuarantine, ErrorKind, ErrorReport, HeapError, ObjectId, ObjectInfo, ObjectTable,
    Quarantine, RuntimeConfig, SimHeap, StackSim,
};
use std::collections::HashMap;

/// Kind of memory an object lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `malloc`-style heap storage.
    Heap,
    /// `alloca`-style stack storage, released when its frame pops.
    Stack,
    /// Program-lifetime global storage, never released.
    Global,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Region::Heap => "heap",
            Region::Stack => "stack",
            Region::Global => "global",
        })
    }
}

/// A successful allocation: the user-visible base pointer plus identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Object identity in the ground-truth table.
    pub id: ObjectId,
    /// First byte of the user region; always 8-byte aligned.
    pub base: Addr,
    /// Exact requested size in bytes.
    pub size: u64,
    /// Region the object lives in.
    pub region: Region,
    /// Block/line placement when the block/line heap served the request;
    /// `None` for the free-list backend and for stack/global objects.
    pub placement: Option<Placement>,
}

/// What happened when an object was freed.
#[derive(Debug, Clone)]
pub struct FreeOutcome {
    /// The object that was just freed (now quarantined).
    pub freed: ObjectInfo,
    /// Objects evicted from quarantine whose memory returned to the free
    /// list; the sanitizer must reset their shadow to "unallocated".
    pub recycled: Vec<ObjectInfo>,
}

/// The heap allocator behind a [`World`], selected by
/// [`RuntimeConfig::heap_backend`].
#[derive(Debug, Clone)]
pub enum HeapArena {
    /// First-fit coalescing free list.
    FreeList(SimHeap),
    /// Immix-style block/line allocator.
    Block(BlockHeap),
}

impl HeapArena {
    /// Lowest address managed by the heap.
    pub fn lo(&self) -> Addr {
        match self {
            HeapArena::FreeList(h) => h.lo(),
            HeapArena::Block(h) => h.lo(),
        }
    }

    /// One past the highest address managed by the heap.
    pub fn hi(&self) -> Addr {
        match self {
            HeapArena::FreeList(h) => h.hi(),
            HeapArena::Block(h) => h.hi(),
        }
    }

    /// Bytes currently reserved by live blocks.
    pub fn bytes_in_use(&self) -> u64 {
        match self {
            HeapArena::FreeList(h) => h.bytes_in_use(),
            HeapArena::Block(h) => h.bytes_in_use(),
        }
    }

    /// Peak of [`HeapArena::bytes_in_use`] over the heap's lifetime.
    pub fn high_water(&self) -> u64 {
        match self {
            HeapArena::FreeList(h) => h.high_water(),
            HeapArena::Block(h) => h.high_water(),
        }
    }

    /// The block/line heap, when that backend is active.
    pub fn as_block(&self) -> Option<&BlockHeap> {
        match self {
            HeapArena::FreeList(_) => None,
            HeapArena::Block(h) => Some(h),
        }
    }

    /// The free-list heap, when that backend is active.
    pub fn as_free_list(&self) -> Option<&SimHeap> {
        match self {
            HeapArena::FreeList(h) => Some(h),
            HeapArena::Block(_) => None,
        }
    }

    fn acquire(&mut self, arena: u32, len: u64) -> Result<(Addr, Option<Placement>), HeapError> {
        match self {
            HeapArena::FreeList(h) => h.acquire(len).map(|a| (a, None)),
            HeapArena::Block(h) => {
                let arena = arena.min(h.arena_count() - 1);
                h.acquire_in(arena, len).map(|(a, p)| (a, Some(p)))
            }
        }
    }

    fn release(&mut self, start: Addr, len: u64) -> Result<(), HeapError> {
        match self {
            HeapArena::FreeList(h) => h.release(start, len),
            HeapArena::Block(h) => h.release(start, len),
        }
    }

    fn take_events(&mut self) -> Vec<BlockEvent> {
        match self {
            HeapArena::FreeList(_) => Vec::new(),
            HeapArena::Block(h) => h.take_events(),
        }
    }
}

/// The quarantine layout behind a [`World`]: flat FIFO for the free-list
/// backend, block-clustered for the block/line backend.
#[derive(Debug, Clone)]
enum QuarantineKind {
    Fifo(Quarantine),
    Cluster(ClusterQuarantine),
}

/// The full simulated runtime environment.
///
/// Layout (low to high addresses): global arena, heap arena, stack arena.
/// All sanitizers share this structure; they differ only in how they poison
/// shadow memory and perform checks. The world enforces the paper's 8-byte
/// alignment strategy: every user base address is segment aligned, so no two
/// objects share a segment (§2, footnote 2).
///
/// # Example
///
/// ```
/// use giantsan_runtime::{Region, RuntimeConfig, World};
///
/// let mut w = World::new(RuntimeConfig::small());
/// let a = w.alloc(100, Region::Heap)?;
/// assert_eq!(a.base.raw() % 8, 0);
/// let outcome = w.free(a.base).unwrap();
/// assert_eq!(outcome.freed.id, a.id);
/// # Ok::<(), giantsan_runtime::HeapError>(())
/// ```
#[derive(Debug, Clone)]
pub struct World {
    config: RuntimeConfig,
    space: AddressSpace,
    heap: HeapArena,
    stack: StackSim,
    globals_next: Addr,
    globals_end: Addr,
    objects: ObjectTable,
    quarantine: QuarantineKind,
    /// Stack blocks outstanding, keyed by block start, for frame pops.
    stack_blocks: HashMap<u64, ObjectId>,
    /// Arena the next heap allocation draws from (block/line backend only).
    active_arena: u32,
    /// Block events of the most recent heap operation, for bulk poisoning.
    block_events: Vec<BlockEvent>,
}

/// Base simulated address of the world (the null page below is unmapped).
pub(crate) const WORLD_BASE: u64 = 0x1_0000;

impl World {
    /// Builds a world from `config`.
    pub fn new(config: RuntimeConfig) -> Self {
        let global_size = align_up(config.global_size.max(SEGMENT_SIZE), SEGMENT_SIZE);
        let heap_size = align_up(config.heap_size.max(SEGMENT_SIZE), SEGMENT_SIZE);
        let stack_size = align_up(config.stack_size.max(SEGMENT_SIZE), SEGMENT_SIZE);
        let total = global_size + heap_size + stack_size;
        let space = AddressSpace::new(WORLD_BASE, total);
        let globals_lo = space.lo();
        let heap_lo = globals_lo + global_size;
        let stack_lo = heap_lo + heap_size;
        let stack_hi = stack_lo + stack_size;
        // A guard gap above the stack keeps small stack overflows *mapped*,
        // like a real process where caller frames sit above the current one;
        // only wildly large overflows fault.
        let guard = align_up((stack_size / 4).min(64 << 10), SEGMENT_SIZE);
        let (heap, quarantine) = match config.heap_backend {
            HeapBackend::FreeList => (
                HeapArena::FreeList(SimHeap::new(heap_lo, stack_lo)),
                QuarantineKind::Fifo(Quarantine::new(config.quarantine_cap)),
            ),
            HeapBackend::BlockLine => {
                let n_blocks = heap_size / crate::block_heap::BLOCK_SIZE;
                let arenas = config.heap_arenas.max(1).min(n_blocks.max(1) as u32);
                (
                    HeapArena::Block(BlockHeap::new(heap_lo, stack_lo, arenas)),
                    QuarantineKind::Cluster(ClusterQuarantine::new(config.quarantine_cap)),
                )
            }
        };
        World {
            heap,
            stack: StackSim::new(stack_lo, stack_hi - guard),
            globals_next: globals_lo,
            globals_end: heap_lo,
            objects: ObjectTable::new(),
            quarantine,
            stack_blocks: HashMap::new(),
            active_arena: 0,
            block_events: Vec::new(),
            space,
            config,
        }
    }

    /// The runtime configuration this world was built from.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The backing address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// Mutable access to the backing address space (data loads/stores).
    pub fn space_mut(&mut self) -> &mut AddressSpace {
        &mut self.space
    }

    /// The ground-truth object table.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// The heap arena (statistics).
    pub fn heap(&self) -> &HeapArena {
        &self.heap
    }

    /// The stack simulator (statistics).
    pub fn stack(&self) -> &StackSim {
        &self.stack
    }

    /// Arena the next heap allocation draws from. Only the block/line
    /// backend distinguishes arenas; the free list ignores this.
    pub fn active_arena(&self) -> u32 {
        self.active_arena
    }

    /// Directs subsequent heap allocations to `arena` (clamped to the
    /// configured arena count). Thread-cached allocators pin each thread to
    /// its own arena so parallel allocation stops contending on one cursor.
    pub fn set_active_arena(&mut self, arena: u32) {
        self.active_arena = arena;
    }

    /// Block events (block mapped / block freed) produced by the most
    /// recent `alloc`/`free`/`realloc`. A block-granular sanitizer turns
    /// each into one bulk shadow write; other callers may ignore them —
    /// the buffer is cleared at the start of every heap operation.
    pub fn take_block_events(&mut self) -> Vec<BlockEvent> {
        std::mem::take(&mut self.block_events)
    }

    /// Redzone size in bytes actually laid out (config value rounded up to
    /// segment alignment; zero stays zero).
    pub fn effective_redzone(&self) -> u64 {
        if self.config.redzone == 0 {
            0
        } else {
            align_up(self.config.redzone, SEGMENT_SIZE)
        }
    }

    /// Allocates `size` bytes in `region` with redzones on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the arena is exhausted.
    pub fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        self.block_events.clear();
        self.alloc_inner(size, region)
    }

    fn alloc_inner(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        let rz = self.effective_redzone();
        let user_len = align_up(size.max(1), SEGMENT_SIZE);
        let total = user_len + 2 * rz;
        let (block, placement) = match region {
            Region::Heap => {
                let got = self.heap.acquire(self.active_arena, total)?;
                self.block_events.extend(self.heap.take_events());
                got
            }
            Region::Stack => (self.stack.alloca(total)?, None),
            Region::Global => {
                if self.globals_end - self.globals_next < total {
                    return Err(HeapError::OutOfMemory { requested: total });
                }
                let b = self.globals_next;
                self.globals_next += total;
                (b, None)
            }
        };
        let base = block + rz;
        let id = self.objects.insert(base, size, region, block, total);
        if region == Region::Stack {
            self.stack_blocks.insert(block.raw(), id);
        }
        Ok(Allocation {
            id,
            base,
            size,
            region,
            placement,
        })
    }

    /// Allocates `size` bytes but reserves `reserve` bytes of arena with no
    /// redzones: the rounded-up-allocation policy of BBC/LFP-style tools
    /// (paper §2.1). The object's block is the whole reserved slot, so the
    /// ground-truth table still records the exact requested `size`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the arena is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `reserve` is smaller than the segment-aligned `size`.
    pub fn alloc_reserved(
        &mut self,
        size: u64,
        reserve: u64,
        region: Region,
    ) -> Result<Allocation, HeapError> {
        self.block_events.clear();
        let user_len = align_up(size.max(1), SEGMENT_SIZE);
        assert!(reserve >= user_len, "reservation smaller than object");
        let (block, placement) = match region {
            Region::Heap => {
                let got = self.heap.acquire(self.active_arena, reserve)?;
                self.block_events.extend(self.heap.take_events());
                got
            }
            Region::Stack => (self.stack.alloca(reserve)?, None),
            Region::Global => {
                if self.globals_end - self.globals_next < reserve {
                    return Err(HeapError::OutOfMemory { requested: reserve });
                }
                let b = self.globals_next;
                self.globals_next += reserve;
                (b, None)
            }
        };
        let id = self.objects.insert(block, size, region, block, reserve);
        if region == Region::Stack {
            self.stack_blocks.insert(block.raw(), id);
        }
        Ok(Allocation {
            id,
            base: block,
            size,
            region,
            placement,
        })
    }

    /// Frees the heap object whose base is exactly `base`.
    ///
    /// The freed block enters the quarantine; evicted blocks return to the
    /// free list and are reported in the outcome so callers can unpoison
    /// them.
    ///
    /// # Errors
    ///
    /// Produces the allocator-API error reports of Table 3's CWE families:
    /// [`ErrorKind::InvalidFree`] when `base` points inside (but not at the
    /// start of) a live object or at a stack/global object,
    /// [`ErrorKind::DoubleFree`] when it points into an already-freed block,
    /// and [`ErrorKind::Wild`] otherwise.
    pub fn free(&mut self, base: Addr) -> Result<FreeOutcome, ErrorReport> {
        self.block_events.clear();
        self.free_inner(base)
    }

    fn free_inner(&mut self, base: Addr) -> Result<FreeOutcome, ErrorReport> {
        if let Some(info) = self.objects.live_at_base(base) {
            if info.region != Region::Heap {
                return Err(ErrorReport::new(ErrorKind::InvalidFree, base, info.size));
            }
            let id = info.id;
            let freed = self.objects.mark_quarantined(id);
            let mut recycled = Vec::new();
            match &mut self.quarantine {
                QuarantineKind::Fifo(q) => {
                    for evicted in q.push(id, freed.block_len) {
                        let info = self.objects.mark_recycled(evicted);
                        self.heap
                            .release(info.block_start, info.block_len)
                            .expect("quarantined block must be releasable");
                        recycled.push(info);
                    }
                }
                QuarantineKind::Cluster(q) => {
                    let cluster = match &self.heap {
                        HeapArena::Block(h) => h.cluster_of(freed.block_start),
                        HeapArena::FreeList(_) => freed.block_start.raw(),
                    };
                    for &evicted in q.push(cluster, id, freed.block_len) {
                        let info = self.objects.mark_recycled(evicted);
                        self.heap
                            .release(info.block_start, info.block_len)
                            .expect("quarantined block must be releasable");
                        recycled.push(info);
                    }
                }
            }
            self.block_events.extend(self.heap.take_events());
            return Ok(FreeOutcome { freed, recycled });
        }
        if let Some(live) = self.objects.live_containing(base) {
            return Err(ErrorReport::new(ErrorKind::InvalidFree, base, live.size));
        }
        if self.objects.dead_block_containing(base).is_some() {
            return Err(ErrorReport::new(ErrorKind::DoubleFree, base, 0));
        }
        Err(ErrorReport::new(ErrorKind::Wild, base, 0))
    }

    /// Reallocates the heap object at `base` to `new_size` bytes: allocates
    /// a new block, copies the overlapping prefix of the *data*, and frees
    /// the old block through the quarantine (so stale pointers keep landing
    /// on poisoned shadow).
    ///
    /// Returns the new allocation plus the free outcome of the old block.
    ///
    /// # Errors
    ///
    /// Returns the same reports as [`World::free`] for invalid bases, and
    /// an out-of-memory report-free [`HeapError`] is surfaced as an
    /// [`ErrorKind::Wild`]-free `Err` via panic-free fallback: allocation
    /// failure leaves the old object live and returns the free error path.
    pub fn realloc(
        &mut self,
        base: Addr,
        new_size: u64,
    ) -> Result<(Allocation, FreeOutcome), ErrorReport> {
        self.block_events.clear();
        let old = match self.objects.live_at_base(base) {
            Some(o) if o.region == Region::Heap => o.clone(),
            Some(o) => return Err(ErrorReport::new(ErrorKind::InvalidFree, base, o.size)),
            None => {
                // Reuse free()'s classification for the error cases.
                return Err(self
                    .free_inner(base)
                    .err()
                    .unwrap_or_else(|| ErrorReport::new(ErrorKind::Wild, base, 0)));
            }
        };
        let new = self
            .alloc_inner(new_size, Region::Heap)
            .map_err(|_| ErrorReport::new(ErrorKind::Unknown, base, new_size))?;
        let copy_len = old.size.min(new_size);
        if copy_len > 0 {
            self.space
                .copy(new.base, old.base, copy_len)
                .expect("both objects are mapped");
        }
        let outcome = self
            .free_inner(base)
            .expect("old object verified live at its base");
        Ok((new, outcome))
    }

    /// Enters a stack frame.
    pub fn push_frame(&mut self) {
        self.stack.push_frame();
    }

    /// Leaves the current stack frame, returning the objects whose slots
    /// died so the sanitizer can poison them as unaddressable.
    pub fn pop_frame(&mut self) -> Vec<ObjectInfo> {
        let mut dead = Vec::new();
        for (block, _) in self.stack.pop_frame() {
            let id = self
                .stack_blocks
                .remove(&block.raw())
                .expect("stack block without object");
            self.objects.mark_quarantined(id);
            dead.push(self.objects.mark_recycled(id));
        }
        dead
    }

    /// Bytes currently held in quarantine.
    pub fn quarantined_bytes(&self) -> u64 {
        match &self.quarantine {
            QuarantineKind::Fifo(q) => q.used_bytes(),
            QuarantineKind::Cluster(q) => q.used_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_heap::{BLOCK_SIZE, LINE_SIZE};

    fn world() -> World {
        World::new(RuntimeConfig::small())
    }

    fn block_world(arenas: u32, quarantine_cap: u64) -> World {
        World::new(
            RuntimeConfig::small()
                .to_builder()
                .heap_backend(HeapBackend::BlockLine)
                .heap_arenas(arenas)
                .quarantine_cap(quarantine_cap)
                .build(),
        )
    }

    #[test]
    fn layout_is_disjoint_and_aligned() {
        let w = world();
        assert!(w.heap.lo() >= w.space.lo());
        assert!(w.stack.sp() <= w.space.hi());
        assert!(w.heap.lo().is_segment_aligned());
    }

    #[test]
    fn heap_alloc_has_redzones_registered() {
        let mut w = world();
        let a = w.alloc(100, Region::Heap).unwrap();
        let info = w.objects.get(a.id).unwrap().clone();
        assert_eq!(info.base - info.block_start, 16);
        assert_eq!(info.block_len, 16 + 104 + 16); // 100 rounds to 104
        assert!(a.base.is_segment_aligned());
        assert_eq!(a.placement, None, "free-list backend has no placement");
    }

    #[test]
    fn zero_redzone_layout() {
        let mut w = World::new(RuntimeConfig::small().to_builder().redzone(0).build());
        let a = w.alloc(32, Region::Heap).unwrap();
        let info = w.objects.get(a.id).unwrap();
        assert_eq!(info.base, info.block_start);
        assert_eq!(info.block_len, 32);
    }

    #[test]
    fn two_allocations_never_share_a_segment() {
        let mut w = World::new(RuntimeConfig::small().to_builder().redzone(0).build());
        let a = w.alloc(1, Region::Heap).unwrap();
        let b = w.alloc(1, Region::Heap).unwrap();
        assert_ne!(a.base.segment(), b.base.segment());
    }

    #[test]
    fn free_quarantines_then_recycles() {
        let mut w = World::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(64)
                .build(),
        );
        let a = w.alloc(8, Region::Heap).unwrap();
        let out = w.free(a.base).unwrap();
        assert_eq!(out.freed.id, a.id);
        assert!(out.recycled.is_empty());
        assert!(w.quarantined_bytes() > 0);
        // Next frees push the first out of the 64-byte quarantine.
        let b = w.alloc(8, Region::Heap).unwrap();
        let out = w.free(b.base).unwrap();
        assert_eq!(out.recycled.len(), 1);
        assert_eq!(out.recycled[0].id, a.id);
    }

    #[test]
    fn invalid_free_classifications() {
        let mut w = world();
        let a = w.alloc(64, Region::Heap).unwrap();
        // Interior pointer: CWE-761.
        let err = w.free(a.base + 8).unwrap_err();
        assert_eq!(err.kind, ErrorKind::InvalidFree);
        // Stack object.
        w.push_frame();
        let s = w.alloc(16, Region::Stack).unwrap();
        assert_eq!(w.free(s.base).unwrap_err().kind, ErrorKind::InvalidFree);
        // Double free.
        w.free(a.base).unwrap();
        assert_eq!(w.free(a.base).unwrap_err().kind, ErrorKind::DoubleFree);
        // Wild free.
        assert_eq!(w.free(Addr::new(0x100)).unwrap_err().kind, ErrorKind::Wild);
    }

    #[test]
    fn frame_pop_kills_stack_objects() {
        let mut w = world();
        w.push_frame();
        let a = w.alloc(32, Region::Stack).unwrap();
        let b = w.alloc(32, Region::Stack).unwrap();
        let dead = w.pop_frame();
        assert_eq!(dead.len(), 2);
        assert!(dead.iter().any(|o| o.id == a.id));
        assert!(dead.iter().any(|o| o.id == b.id));
        assert!(!w.objects.valid_access(a.base, 1));
        assert!(!w.objects.valid_access(b.base, 1));
    }

    #[test]
    fn globals_bump_and_exhaust() {
        let mut w = World::new(RuntimeConfig::small().to_builder().global_size(256).build());
        let g1 = w.alloc(32, Region::Global).unwrap();
        let g2 = w.alloc(32, Region::Global).unwrap();
        assert!(g2.base > g1.base);
        assert!(w.alloc(1 << 12, Region::Global).is_err());
    }

    #[test]
    fn quarantine_delays_reuse() {
        let mut w = World::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(1 << 16)
                .build(),
        );
        let a = w.alloc(8, Region::Heap).unwrap();
        w.free(a.base).unwrap();
        let b = w.alloc(8, Region::Heap).unwrap();
        assert_ne!(a.base, b.base, "quarantine must delay address reuse");
    }

    #[test]
    fn alloc_reserved_records_requested_size_and_reserved_block() {
        let mut w = world();
        let a = w.alloc_reserved(100, 128, Region::Heap).unwrap();
        let info = w.objects().get(a.id).unwrap();
        assert_eq!(info.size, 100);
        assert_eq!(info.block_len, 128);
        assert_eq!(info.base, info.block_start, "no redzones in this path");
        // Ground truth still uses the requested size.
        assert!(w.objects().valid_access(a.base, 100));
        assert!(!w.objects().valid_access(a.base, 101));
    }

    #[test]
    #[should_panic(expected = "reservation smaller")]
    fn alloc_reserved_rejects_short_reservation() {
        let mut w = world();
        let _ = w.alloc_reserved(100, 64, Region::Heap);
    }

    #[test]
    fn realloc_moves_data_and_classifies_errors() {
        let mut w = world();
        let a = w.alloc(32, Region::Heap).unwrap();
        w.space_mut().write_u64(a.base, 0xabcd).unwrap();
        let (b, outcome) = w.realloc(a.base, 64).unwrap();
        assert_eq!(outcome.freed.id, a.id);
        assert_eq!(w.space().read_u64(b.base).unwrap(), 0xabcd);
        assert!(w.objects().valid_access(b.base, 64));
        assert!(!w.objects().valid_access(a.base, 1));
        // Error paths.
        assert_eq!(
            w.realloc(b.base + 8, 16).unwrap_err().kind,
            ErrorKind::InvalidFree
        );
        w.push_frame();
        let s = w.alloc(16, Region::Stack).unwrap();
        assert_eq!(
            w.realloc(s.base, 32).unwrap_err().kind,
            ErrorKind::InvalidFree
        );
        w.free(b.base).unwrap();
        assert_eq!(
            w.realloc(b.base, 16).unwrap_err().kind,
            ErrorKind::DoubleFree
        );
        assert_eq!(
            w.realloc(Addr::new(0x10), 16).unwrap_err().kind,
            ErrorKind::Wild
        );
    }

    #[test]
    fn realloc_shrink_copies_prefix_only() {
        let mut w = world();
        let a = w.alloc(64, Region::Heap).unwrap();
        for i in 0..8u64 {
            w.space_mut().write_u64(a.base + i * 8, i + 1).unwrap();
        }
        let (b, _) = w.realloc(a.base, 24).unwrap();
        for i in 0..3u64 {
            assert_eq!(w.space().read_u64(b.base + i * 8).unwrap(), i + 1);
        }
        assert_eq!(w.objects().get(b.id).unwrap().size, 24);
    }

    #[test]
    fn zero_quarantine_reuses_immediately() {
        let mut w = World::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(0)
                .build(),
        );
        let a = w.alloc(8, Region::Heap).unwrap();
        let out = w.free(a.base).unwrap();
        assert_eq!(out.recycled.len(), 1);
        let b = w.alloc(8, Region::Heap).unwrap();
        assert_eq!(a.base, b.base, "first fit reuses the hole immediately");
    }

    #[test]
    fn block_backend_reports_placement_and_events() {
        let mut w = block_world(1, 0);
        let a = w.alloc(8, Region::Heap).unwrap();
        let p = a.placement.expect("block backend placements");
        // 8 bytes + 2×16-byte redzones = 40 bytes → one 128-byte line.
        assert_eq!(p.slot_len, LINE_SIZE);
        assert!(p.pristine);
        let ev = w.take_block_events();
        assert!(
            matches!(ev[..], [BlockEvent::Mapped { slot_len, .. }] if slot_len == LINE_SIZE),
            "{ev:?}"
        );
        // Stack allocations carry no placement.
        w.push_frame();
        let s = w.alloc(8, Region::Stack).unwrap();
        assert_eq!(s.placement, None);
    }

    #[test]
    fn block_backend_zero_quarantine_reuses_slot() {
        let mut w = block_world(1, 0);
        let a = w.alloc(8, Region::Heap).unwrap();
        let out = w.free(a.base).unwrap();
        assert_eq!(out.recycled.len(), 1);
        // Draining the only slot freed the whole block.
        let ev = w.take_block_events();
        assert!(
            matches!(ev[..], [BlockEvent::Freed { len, .. }] if len == BLOCK_SIZE),
            "{ev:?}"
        );
        let b = w.alloc(8, Region::Heap).unwrap();
        assert_eq!(a.base, b.base, "hole-finding reuses the drained block");
    }

    #[test]
    fn cluster_quarantine_evicts_blockmates_together() {
        // a and b (8 bytes + 32 redzone = 40-byte blocks) share a 1-line
        // class block; c (200 bytes → 232-byte block) lives in a 2-line
        // class block, i.e. a different cluster. Cap 250 holds c but not
        // a+b+c, so the oldest cluster {a, b} leaves whole.
        let mut w = block_world(1, 250);
        let a = w.alloc(8, Region::Heap).unwrap();
        let b = w.alloc(8, Region::Heap).unwrap();
        let c = w.alloc(200, Region::Heap).unwrap();
        let block = |addr| w.heap.as_block().unwrap().cluster_of(addr);
        assert_eq!(block(a.base), block(b.base), "same class, same block");
        assert_ne!(block(a.base), block(c.base), "classes segregate blocks");
        w.free(a.base).unwrap();
        w.free(b.base).unwrap();
        let out = w.free(c.base).unwrap();
        let ids: Vec<_> = out.recycled.iter().map(|o| o.id).collect();
        assert_eq!(ids, vec![a.id, b.id]);
    }

    #[test]
    fn arena_direction_is_sticky() {
        let mut w = block_world(2, 0);
        let a = w.alloc(8, Region::Heap).unwrap();
        w.set_active_arena(1);
        let b = w.alloc(8, Region::Heap).unwrap();
        assert_eq!(a.placement.unwrap().arena, 0);
        assert_eq!(b.placement.unwrap().arena, 1);
        assert!(b.base - a.base >= BLOCK_SIZE, "arenas are disjoint ranges");
        // Out-of-range arenas clamp instead of panicking.
        w.set_active_arena(99);
        let c = w.alloc(8, Region::Heap).unwrap();
        assert_eq!(c.placement.unwrap().arena, 1);
    }

    #[test]
    fn block_backend_free_error_classification_matches() {
        let mut w = block_world(1, 1 << 16);
        let a = w.alloc(64, Region::Heap).unwrap();
        assert_eq!(w.free(a.base + 8).unwrap_err().kind, ErrorKind::InvalidFree);
        w.free(a.base).unwrap();
        assert_eq!(w.free(a.base).unwrap_err().kind, ErrorKind::DoubleFree);
        assert_eq!(w.free(Addr::new(0x100)).unwrap_err().kind, ErrorKind::Wild);
    }
}
