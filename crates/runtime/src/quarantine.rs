//! FIFO quarantine for freed heap blocks.
//!
//! Location-based sanitizers delay the reuse of freed memory so that dangling
//! pointers keep landing on poisoned shadow (paper §2.2). The quarantine is a
//! byte-capped FIFO: pushing a block may evict the oldest blocks, which then
//! become available for reallocation — the "quarantine bypassing" limitation
//! the paper acknowledges in §5.4.

use std::collections::VecDeque;

use crate::ObjectId;

/// A byte-capped FIFO of quarantined (freed, not yet reusable) blocks.
///
/// # Example
///
/// ```
/// use giantsan_runtime::Quarantine;
/// use giantsan_runtime::ObjectId;
///
/// let mut q = Quarantine::new(100);
/// assert!(q.push(ObjectId(1), 60).is_empty());
/// // Pushing 60 more exceeds the 100-byte cap: the first block is evicted.
/// let evicted = q.push(ObjectId(2), 60);
/// assert_eq!(evicted, vec![ObjectId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    cap: u64,
    used: u64,
    queue: VecDeque<(ObjectId, u64)>,
}

impl Quarantine {
    /// Creates a quarantine holding at most `cap` bytes. A zero cap disables
    /// quarantining: every push evicts immediately.
    pub fn new(cap: u64) -> Self {
        Quarantine {
            cap,
            used: 0,
            queue: VecDeque::new(),
        }
    }

    /// Bytes currently quarantined.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of blocks currently quarantined.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no blocks are quarantined.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Quarantines a block of `len` bytes, returning the ids of blocks
    /// evicted to stay within the cap (oldest first). The pushed block itself
    /// is evicted immediately when `len` alone exceeds the cap.
    pub fn push(&mut self, id: ObjectId, len: u64) -> Vec<ObjectId> {
        self.queue.push_back((id, len));
        self.used += len;
        let mut evicted = Vec::new();
        while self.used > self.cap {
            let (old, olen) = self
                .queue
                .pop_front()
                .expect("used > cap implies nonempty queue");
            self.used -= olen;
            evicted.push(old);
        }
        evicted
    }

    /// Drains every block from the quarantine (oldest first), e.g. at world
    /// teardown.
    pub fn drain(&mut self) -> Vec<ObjectId> {
        self.used = 0;
        self.queue.drain(..).map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_order() {
        let mut q = Quarantine::new(100);
        assert!(q.push(ObjectId(1), 40).is_empty());
        assert!(q.push(ObjectId(2), 40).is_empty());
        let ev = q.push(ObjectId(3), 40);
        assert_eq!(ev, vec![ObjectId(1)]);
        assert_eq!(q.used_bytes(), 80);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_block_evicts_through_itself() {
        let mut q = Quarantine::new(50);
        assert!(q.push(ObjectId(1), 10).is_empty());
        let ev = q.push(ObjectId(2), 100);
        assert_eq!(ev, vec![ObjectId(1), ObjectId(2)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }

    #[test]
    fn zero_cap_disables_quarantine() {
        let mut q = Quarantine::new(0);
        let ev = q.push(ObjectId(7), 8);
        assert_eq!(ev, vec![ObjectId(7)]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_returns_all_in_order() {
        let mut q = Quarantine::new(1000);
        q.push(ObjectId(1), 10);
        q.push(ObjectId(2), 10);
        q.push(ObjectId(3), 10);
        assert_eq!(q.drain(), vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }
}
