//! Quarantines for freed heap blocks: flat FIFO and block-clustered.
//!
//! Location-based sanitizers delay the reuse of freed memory so that dangling
//! pointers keep landing on poisoned shadow (paper §2.2). Both layouts here
//! are byte-capped; they differ in *what* an eviction returns to the
//! allocator:
//!
//! * [`Quarantine`] — the classic flat FIFO: blocks leave one at a time in
//!   arrival order ("quarantine bypassing" is the limitation the paper
//!   acknowledges in §5.4);
//! * [`ClusterQuarantine`] — objects are grouped by the 32 KiB heap block
//!   that contains them (Beyond Tag Collision's cluster layout) and the
//!   *oldest whole cluster* is evicted at once, so the block/line heap gets
//!   its blocks back drained and can reset their shadow with a single fill.

use std::collections::{HashMap, VecDeque};

use crate::ObjectId;

/// A byte-capped FIFO of quarantined (freed, not yet reusable) blocks.
///
/// # Example
///
/// ```
/// use giantsan_runtime::Quarantine;
/// use giantsan_runtime::ObjectId;
///
/// let mut q = Quarantine::new(100);
/// assert_eq!(q.push(ObjectId(1), 60).count(), 0);
/// // Pushing 60 more exceeds the 100-byte cap: the first block is evicted.
/// let evicted: Vec<_> = q.push(ObjectId(2), 60).collect();
/// assert_eq!(evicted, vec![ObjectId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    cap: u64,
    used: u64,
    queue: VecDeque<(ObjectId, u64)>,
}

impl Quarantine {
    /// Creates a quarantine holding at most `cap` bytes. A zero cap disables
    /// quarantining: every push evicts immediately.
    pub fn new(cap: u64) -> Self {
        Quarantine {
            cap,
            used: 0,
            queue: VecDeque::new(),
        }
    }

    /// Bytes currently quarantined.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of blocks currently quarantined.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no blocks are quarantined.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Quarantines a block of `len` bytes, returning an iterator over the
    /// ids evicted to stay within the cap (oldest first). The pushed block
    /// itself is evicted immediately when `len` alone exceeds the cap.
    ///
    /// The iterator borrows the quarantine and evicts lazily; dropping it
    /// early still completes the evictions, so the cap invariant holds
    /// whether or not the caller consumes every item. No allocation happens
    /// when nothing is evicted — the reason this replaced the old
    /// `Vec<ObjectId>` return.
    pub fn push(&mut self, id: ObjectId, len: u64) -> Evictions<'_> {
        self.queue.push_back((id, len));
        self.used += len;
        Evictions { q: self }
    }

    /// Drains every block from the quarantine (oldest first), e.g. at world
    /// teardown. The iterator borrows the quarantine; dropping it early
    /// still leaves the quarantine empty.
    pub fn drain(&mut self) -> impl Iterator<Item = ObjectId> + '_ {
        self.used = 0;
        self.queue.drain(..).map(|(id, _)| id)
    }
}

/// Lazy eviction iterator returned by [`Quarantine::push`].
///
/// Yields the oldest blocks while the quarantine is over its cap. Dropping
/// the iterator finishes any remaining evictions.
#[derive(Debug)]
pub struct Evictions<'a> {
    q: &'a mut Quarantine,
}

impl Iterator for Evictions<'_> {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        if self.q.used <= self.q.cap {
            return None;
        }
        let (old, olen) = self
            .q
            .queue
            .pop_front()
            .expect("used > cap implies nonempty queue");
        self.q.used -= olen;
        Some(old)
    }
}

impl Drop for Evictions<'_> {
    fn drop(&mut self) {
        // Restore the cap invariant even if the caller stopped iterating.
        while self.next().is_some() {}
    }
}

/// A byte-capped quarantine that groups objects by their containing heap
/// block and evicts whole clusters at once.
///
/// Pairing this with [`crate::block_heap::BlockHeap`] means every eviction
/// hands back all quarantined objects of one 32 KiB block together: once the
/// block's remaining live objects leave too, the heap frees the whole block
/// and its shadow resets with one bulk fill instead of per-object writes.
///
/// # Example
///
/// ```
/// use giantsan_runtime::{ClusterQuarantine, ObjectId};
///
/// let mut q = ClusterQuarantine::new(100);
/// assert!(q.push(0x8000, ObjectId(1), 40).is_empty());
/// assert!(q.push(0x8000, ObjectId(2), 40).is_empty());
/// // Over the cap: the oldest *cluster* (both objects of block 0x8000)
/// // leaves at once.
/// let evicted = q.push(0x10000, ObjectId(3), 40).to_vec();
/// assert_eq!(evicted, vec![ObjectId(1), ObjectId(2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClusterQuarantine {
    cap: u64,
    used: u64,
    /// Cluster keys in arrival order of their *first* object.
    order: VecDeque<u64>,
    /// Cluster key → (member ids in arrival order, quarantined bytes).
    clusters: HashMap<u64, (Vec<ObjectId>, u64)>,
    /// Reused eviction buffer: [`ClusterQuarantine::push`] returns a slice
    /// of this instead of allocating per call.
    scratch: Vec<ObjectId>,
}

impl ClusterQuarantine {
    /// Creates a cluster quarantine holding at most `cap` bytes. A zero cap
    /// disables quarantining: every push evicts its cluster immediately.
    pub fn new(cap: u64) -> Self {
        ClusterQuarantine {
            cap,
            used: 0,
            order: VecDeque::new(),
            clusters: HashMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Bytes currently quarantined.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of objects currently quarantined.
    pub fn len(&self) -> usize {
        self.clusters.values().map(|(ids, _)| ids.len()).sum()
    }

    /// Number of clusters (blocks with at least one quarantined object).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if no objects are quarantined.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Quarantines `id` (`len` bytes) under `cluster` — the start address of
    /// its containing heap block. While the cap is exceeded, the oldest
    /// clusters are evicted whole (a cluster's age is its first object's
    /// arrival). Returns the evicted ids, oldest cluster first, as a slice
    /// of an internal scratch buffer valid until the next push.
    pub fn push(&mut self, cluster: u64, id: ObjectId, len: u64) -> &[ObjectId] {
        self.scratch.clear();
        let entry = self.clusters.entry(cluster).or_insert_with(|| {
            self.order.push_back(cluster);
            (Vec::new(), 0)
        });
        entry.0.push(id);
        entry.1 += len;
        self.used += len;
        while self.used > self.cap {
            let key = self
                .order
                .pop_front()
                .expect("used > cap implies a nonempty cluster queue");
            let (ids, bytes) = self
                .clusters
                .remove(&key)
                .expect("ordered key has a cluster");
            self.used -= bytes;
            self.scratch.extend_from_slice(&ids);
        }
        &self.scratch
    }

    /// Drains every object (oldest cluster first), e.g. at world teardown.
    pub fn drain(&mut self) -> impl Iterator<Item = ObjectId> + '_ {
        self.used = 0;
        let clusters = &mut self.clusters;
        self.order.drain(..).flat_map(move |key| {
            clusters
                .remove(&key)
                .map(|(ids, _)| ids)
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_eviction_order() {
        let mut q = Quarantine::new(100);
        assert_eq!(q.push(ObjectId(1), 40).count(), 0);
        assert_eq!(q.push(ObjectId(2), 40).count(), 0);
        let ev: Vec<_> = q.push(ObjectId(3), 40).collect();
        assert_eq!(ev, vec![ObjectId(1)]);
        assert_eq!(q.used_bytes(), 80);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_block_evicts_through_itself() {
        let mut q = Quarantine::new(50);
        assert_eq!(q.push(ObjectId(1), 10).count(), 0);
        let ev: Vec<_> = q.push(ObjectId(2), 100).collect();
        assert_eq!(ev, vec![ObjectId(1), ObjectId(2)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }

    #[test]
    fn zero_cap_disables_quarantine() {
        let mut q = Quarantine::new(0);
        let ev: Vec<_> = q.push(ObjectId(7), 8).collect();
        assert_eq!(ev, vec![ObjectId(7)]);
        assert!(q.is_empty());
    }

    #[test]
    fn dropping_the_iterator_still_evicts() {
        let mut q = Quarantine::new(50);
        q.push(ObjectId(1), 40).count();
        drop(q.push(ObjectId(2), 40));
        assert_eq!(q.used_bytes(), 40, "cap invariant restored by Drop");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_returns_all_in_order() {
        let mut q = Quarantine::new(1000);
        q.push(ObjectId(1), 10).count();
        q.push(ObjectId(2), 10).count();
        q.push(ObjectId(3), 10).count();
        let all: Vec<_> = q.drain().collect();
        assert_eq!(all, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }

    #[test]
    fn clusters_group_by_block_and_evict_whole() {
        let mut q = ClusterQuarantine::new(100);
        assert!(q.push(0x8000, ObjectId(1), 30).is_empty());
        assert!(q.push(0x10000, ObjectId(2), 30).is_empty());
        assert!(q.push(0x8000, ObjectId(3), 30).is_empty());
        assert_eq!(q.cluster_count(), 2);
        // Over the cap: the oldest cluster (0x8000, objects 1 and 3) leaves
        // whole even though evicting one object would have sufficed.
        let ev = q.push(0x18000, ObjectId(4), 30).to_vec();
        assert_eq!(ev, vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(q.used_bytes(), 60);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn cluster_zero_cap_evicts_immediately() {
        let mut q = ClusterQuarantine::new(0);
        let ev = q.push(0x8000, ObjectId(1), 8).to_vec();
        assert_eq!(ev, vec![ObjectId(1)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }

    #[test]
    fn cluster_eviction_cascades_over_multiple_clusters() {
        let mut q = ClusterQuarantine::new(50);
        q.push(0x8000, ObjectId(1), 20);
        q.push(0x10000, ObjectId(2), 20);
        let ev = q.push(0x18000, ObjectId(3), 60).to_vec();
        assert_eq!(
            ev,
            vec![ObjectId(1), ObjectId(2), ObjectId(3)],
            "cascade drains oldest-first until under cap"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn cluster_drain_returns_oldest_cluster_first() {
        let mut q = ClusterQuarantine::new(1000);
        q.push(0x10000, ObjectId(1), 10);
        q.push(0x8000, ObjectId(2), 10);
        q.push(0x10000, ObjectId(3), 10);
        let all: Vec<_> = q.drain().collect();
        assert_eq!(all, vec![ObjectId(1), ObjectId(3), ObjectId(2)]);
        assert!(q.is_empty());
        assert_eq!(q.used_bytes(), 0);
    }
}
