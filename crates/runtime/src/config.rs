//! Runtime configuration shared by all sanitizers.

use crate::recovery::RecoveryPolicy;

/// Which allocator backs the simulated heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HeapBackend {
    /// First-fit free list ([`crate::SimHeap`]): coalescing `BTreeMap` of
    /// holes, flat FIFO quarantine. The default — its address-reuse order is
    /// what every pinned golden digest was recorded against.
    #[default]
    FreeList,
    /// Immix-style block/line allocator ([`crate::block_heap::BlockHeap`]):
    /// 32 KiB blocks, 128-byte lines, size-class bump allocation with
    /// hole-finding, per-thread arenas, cluster-based quarantine, and
    /// block-granular shadow poisoning.
    BlockLine,
}

/// Configuration of the simulated runtime environment.
///
/// Defaults follow the paper's evaluation setup (§5): 16-byte redzones (the
/// ASan default the performance study uses) and a generous quarantine.
///
/// # Example
///
/// ```
/// use giantsan_runtime::RuntimeConfig;
/// let cfg = RuntimeConfig {
///     redzone: 512,
///     ..RuntimeConfig::default()
/// };
/// assert_eq!(cfg.redzone, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Redzone size in bytes placed on each side of heap objects.
    ///
    /// Table 5 of the paper varies this between 16 and 512 to demonstrate
    /// redzone bypassing.
    pub redzone: u64,
    /// Maximum number of bytes held in the quarantine before the oldest
    /// freed block is recycled. `0` disables the quarantine entirely.
    pub quarantine_cap: u64,
    /// Size of the heap arena in bytes.
    pub heap_size: u64,
    /// Size of the simulated stack in bytes.
    pub stack_size: u64,
    /// Size of the global-object arena in bytes.
    pub global_size: u64,
    /// What happens after an error report is raised.
    ///
    /// The paper sets `halt_on_error=false` for SPEC (§5, Configuration), and
    /// the detection studies need every report counted, so the default is
    /// [`RecoveryPolicy::Continue`]. [`RecoveryPolicy::Recover`] adds
    /// per-site dedup, per-kind rate limits, and access containment.
    pub recovery: RecoveryPolicy,
    /// Which allocator backs the heap arena.
    pub heap_backend: HeapBackend,
    /// Number of per-thread arenas the block/line backend partitions the
    /// heap into. Ignored by [`HeapBackend::FreeList`]. Must be ≥ 1.
    pub heap_arenas: u32,
}

impl RuntimeConfig {
    /// Default redzone size used throughout the paper's performance study.
    pub const DEFAULT_REDZONE: u64 = 16;

    /// Configuration with a given redzone size, other fields default.
    pub fn with_redzone(redzone: u64) -> Self {
        RuntimeConfig {
            redzone,
            ..Self::default()
        }
    }

    /// A small-arena configuration for fast unit tests.
    pub fn small() -> Self {
        RuntimeConfig {
            heap_size: 1 << 20,
            stack_size: 1 << 16,
            global_size: 1 << 16,
            ..Self::default()
        }
    }

    /// A fluent builder seeded with [`RuntimeConfig::default`].
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// A builder seeded with this configuration, so any preset
    /// ([`RuntimeConfig::small`], [`RuntimeConfig::default`], a saved config)
    /// can serve as the baseline for targeted overrides.
    pub fn to_builder(&self) -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { cfg: self.clone() }
    }
}

/// Non-consuming fluent builder for [`RuntimeConfig`].
///
/// Every setter takes `&mut self` and returns `&mut Self`, so a builder can
/// be kept around and forked: call [`RuntimeConfigBuilder::build`] as many
/// times as needed (each call clones the current state).
///
/// # Example
///
/// ```
/// use giantsan_runtime::RuntimeConfig;
/// let cfg = RuntimeConfig::small()
///     .to_builder()
///     .redzone(512)
///     .quarantine_cap(1 << 12)
///     .build();
/// assert_eq!(cfg.redzone, 512);
/// assert_eq!(cfg.heap_size, RuntimeConfig::small().heap_size);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the per-side redzone size in bytes.
    pub fn redzone(&mut self, bytes: u64) -> &mut Self {
        self.cfg.redzone = bytes;
        self
    }

    /// Sets the quarantine byte capacity (`0` disables the quarantine).
    pub fn quarantine_cap(&mut self, bytes: u64) -> &mut Self {
        self.cfg.quarantine_cap = bytes;
        self
    }

    /// Sets the heap arena size in bytes.
    pub fn heap_size(&mut self, bytes: u64) -> &mut Self {
        self.cfg.heap_size = bytes;
        self
    }

    /// Sets the simulated stack size in bytes.
    pub fn stack_size(&mut self, bytes: u64) -> &mut Self {
        self.cfg.stack_size = bytes;
        self
    }

    /// Sets the global-object arena size in bytes.
    pub fn global_size(&mut self, bytes: u64) -> &mut Self {
        self.cfg.global_size = bytes;
        self
    }

    /// Sets whether execution stops at the first error report.
    ///
    /// Shorthand for [`RuntimeConfigBuilder::recovery`] with
    /// [`RecoveryPolicy::Halt`] / [`RecoveryPolicy::Continue`].
    pub fn halt_on_error(&mut self, halt: bool) -> &mut Self {
        self.cfg.recovery = if halt {
            RecoveryPolicy::Halt
        } else {
            RecoveryPolicy::Continue
        };
        self
    }

    /// Sets the full post-report policy (halt / continue / recover).
    pub fn recovery(&mut self, policy: RecoveryPolicy) -> &mut Self {
        self.cfg.recovery = policy;
        self
    }

    /// Selects the heap allocator backend.
    pub fn heap_backend(&mut self, backend: HeapBackend) -> &mut Self {
        self.cfg.heap_backend = backend;
        self
    }

    /// Sets the arena count for the block/line backend (≥ 1).
    pub fn heap_arenas(&mut self, arenas: u32) -> &mut Self {
        self.cfg.heap_arenas = arenas.max(1);
        self
    }

    /// Produces the configuration described so far.
    pub fn build(&self) -> RuntimeConfig {
        self.cfg.clone()
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            redzone: Self::DEFAULT_REDZONE,
            quarantine_cap: 1 << 20,
            heap_size: 64 << 20,
            stack_size: 4 << 20,
            global_size: 1 << 20,
            recovery: RecoveryPolicy::Continue,
            heap_backend: HeapBackend::FreeList,
            heap_arenas: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = RuntimeConfig::default();
        assert_eq!(cfg.redzone, 16);
        assert_eq!(cfg.recovery, RecoveryPolicy::Continue);
        assert!(cfg.quarantine_cap > 0);
    }

    #[test]
    fn with_redzone_overrides_only_redzone() {
        let cfg = RuntimeConfig::with_redzone(512);
        assert_eq!(cfg.redzone, 512);
        assert_eq!(cfg.heap_size, RuntimeConfig::default().heap_size);
    }

    #[test]
    fn small_is_smaller() {
        assert!(RuntimeConfig::small().heap_size < RuntimeConfig::default().heap_size);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        assert_eq!(RuntimeConfig::builder().build(), RuntimeConfig::default());
        let cfg = RuntimeConfig::builder()
            .redzone(1)
            .halt_on_error(true)
            .build();
        assert_eq!(cfg.redzone, 1);
        assert_eq!(cfg.recovery, RecoveryPolicy::Halt);
        assert_eq!(cfg.heap_size, RuntimeConfig::default().heap_size);
        let recov = RuntimeConfig::builder()
            .recovery(RecoveryPolicy::recover())
            .build();
        assert!(recov.recovery.contains_faults());
    }

    #[test]
    fn default_backend_is_free_list() {
        let cfg = RuntimeConfig::default();
        assert_eq!(cfg.heap_backend, HeapBackend::FreeList);
        assert_eq!(cfg.heap_arenas, 1);
        let block = RuntimeConfig::builder()
            .heap_backend(HeapBackend::BlockLine)
            .heap_arenas(0)
            .build();
        assert_eq!(block.heap_backend, HeapBackend::BlockLine);
        assert_eq!(block.heap_arenas, 1, "arena count clamps to >= 1");
    }

    #[test]
    fn builder_is_non_consuming() {
        let mut b = RuntimeConfig::small().to_builder();
        b.quarantine_cap(0);
        let no_quarantine = b.build();
        let bigger = b.quarantine_cap(1 << 10).build();
        assert_eq!(no_quarantine.quarantine_cap, 0);
        assert_eq!(bigger.quarantine_cap, 1 << 10);
        assert_eq!(no_quarantine.heap_size, RuntimeConfig::small().heap_size);
    }
}
