//! Runtime configuration shared by all sanitizers.

/// Configuration of the simulated runtime environment.
///
/// Defaults follow the paper's evaluation setup (§5): 16-byte redzones (the
/// ASan default the performance study uses) and a generous quarantine.
///
/// # Example
///
/// ```
/// use giantsan_runtime::RuntimeConfig;
/// let cfg = RuntimeConfig {
///     redzone: 512,
///     ..RuntimeConfig::default()
/// };
/// assert_eq!(cfg.redzone, 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Redzone size in bytes placed on each side of heap objects.
    ///
    /// Table 5 of the paper varies this between 16 and 512 to demonstrate
    /// redzone bypassing.
    pub redzone: u64,
    /// Maximum number of bytes held in the quarantine before the oldest
    /// freed block is recycled. `0` disables the quarantine entirely.
    pub quarantine_cap: u64,
    /// Size of the heap arena in bytes.
    pub heap_size: u64,
    /// Size of the simulated stack in bytes.
    pub stack_size: u64,
    /// Size of the global-object arena in bytes.
    pub global_size: u64,
    /// Whether execution stops at the first error report.
    ///
    /// The paper sets `halt_on_error=false` for SPEC (§5, Configuration), and
    /// the detection studies need every report counted, so the default is
    /// `false`.
    pub halt_on_error: bool,
}

impl RuntimeConfig {
    /// Default redzone size used throughout the paper's performance study.
    pub const DEFAULT_REDZONE: u64 = 16;

    /// Configuration with a given redzone size, other fields default.
    pub fn with_redzone(redzone: u64) -> Self {
        RuntimeConfig {
            redzone,
            ..Self::default()
        }
    }

    /// A small-arena configuration for fast unit tests.
    pub fn small() -> Self {
        RuntimeConfig {
            heap_size: 1 << 20,
            stack_size: 1 << 16,
            global_size: 1 << 16,
            ..Self::default()
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            redzone: Self::DEFAULT_REDZONE,
            quarantine_cap: 1 << 20,
            heap_size: 64 << 20,
            stack_size: 4 << 20,
            global_size: 1 << 20,
            halt_on_error: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let cfg = RuntimeConfig::default();
        assert_eq!(cfg.redzone, 16);
        assert!(!cfg.halt_on_error);
        assert!(cfg.quarantine_cap > 0);
    }

    #[test]
    fn with_redzone_overrides_only_redzone() {
        let cfg = RuntimeConfig::with_redzone(512);
        assert_eq!(cfg.redzone, 512);
        assert_eq!(cfg.heap_size, RuntimeConfig::default().heap_size);
    }

    #[test]
    fn small_is_smaller() {
        assert!(RuntimeConfig::small().heap_size < RuntimeConfig::default().heap_size);
    }
}
