//! GiantSan's shadow state codes (paper §4.1, Definition 1).
//!
//! One 8-bit unsigned code per 8-byte segment:
//!
//! | code        | meaning                                           |
//! |-------------|---------------------------------------------------|
//! | `64 − i`    | *(i)-folded* segment: the next `2^i` segments are all addressable |
//! | `72 − k`    | *k-partial* segment: only its first `k` bytes (1 ≤ k ≤ 7) are addressable |
//! | `> 72`      | error codes (redzones, freed, unallocated)        |
//!
//! The encoding is *monotone*: a smaller code means more consecutive
//! addressable bytes follow, so "is this segment at least (x)-folded?" is the
//! single comparison `m[p] ≤ 64 − x`.

/// Code of a plain "good" segment — an (0)-folded segment summarising itself.
pub const GOOD: u8 = 64;

/// Largest folding degree the codec will emit.
///
/// The paper bounds the degree by 64 (object sizes < 2^64); we cap at 60 so
/// that the decode shift `67 − code` stays below 64 and the decoded byte
/// count fits in a `u64` without overflow. A degree-60 fold already covers
/// 8 · 2^60 bytes, far beyond any simulated object.
pub const MAX_DEGREE: u32 = 60;

/// Smallest folded code (`64 − MAX_DEGREE`).
pub const MIN_FOLDED: u8 = GOOD - MAX_DEGREE as u8;

/// First partial code (`7`-partial).
pub const PARTIAL_7: u8 = 65;

/// Last partial code (`1`-partial).
pub const PARTIAL_1: u8 = 71;

/// Error code: heap right redzone (overflow).
pub const HEAP_RIGHT_REDZONE: u8 = 73;
/// Error code: heap left redzone (underflow).
pub const HEAP_LEFT_REDZONE: u8 = 74;
/// Error code: freed memory held in quarantine.
pub const FREED: u8 = 75;
/// Error code: stack redzone or dead stack slot.
pub const STACK_REDZONE: u8 = 76;
/// Error code: global redzone.
pub const GLOBAL_REDZONE: u8 = 77;
/// Error code: memory the allocator never handed out.
pub const UNALLOCATED: u8 = 78;

/// Returns the shadow code of an *(degree)*-folded segment.
///
/// # Panics
///
/// Panics if `degree > MAX_DEGREE`.
///
/// # Example
///
/// ```
/// use giantsan_core::encoding::{folded, GOOD};
/// assert_eq!(folded(0), GOOD);
/// assert_eq!(folded(3), 61);
/// ```
pub const fn folded(degree: u32) -> u8 {
    assert!(degree <= MAX_DEGREE, "folding degree out of range");
    GOOD - degree as u8
}

/// Returns the shadow code of a *k*-partial segment.
///
/// # Panics
///
/// Panics if `k` is not in `1..=7`.
///
/// # Example
///
/// ```
/// use giantsan_core::encoding::partial;
/// assert_eq!(partial(4), 68);
/// ```
pub const fn partial(k: u32) -> u8 {
    assert!(k >= 1 && k <= 7, "partial byte count out of range");
    72 - k as u8
}

/// Extracts the folding degree of a folded code, or `None` otherwise.
pub const fn folding_degree(code: u8) -> Option<u32> {
    if code <= GOOD && code >= MIN_FOLDED {
        Some((GOOD - code) as u32)
    } else {
        None
    }
}

/// Extracts `k` from a *k*-partial code, or `None` otherwise.
pub const fn partial_bytes(code: u8) -> Option<u32> {
    if code >= PARTIAL_7 && code <= PARTIAL_1 {
        Some((72 - code) as u32)
    } else {
        None
    }
}

/// Returns `true` for error codes (`> 72`).
pub const fn is_error(code: u8) -> bool {
    code > 72
}

/// The paper's branch-free decode (§4.2): the number of addressable bytes
/// guaranteed to follow the *segment base* of a segment with this code —
/// `(code ≤ 64) << (67 − code)`, i.e. `8 · 2^degree` for folded segments and
/// `0` for everything else.
///
/// # Example
///
/// ```
/// use giantsan_core::encoding::{addressable_bytes, folded, partial, FREED};
/// assert_eq!(addressable_bytes(folded(0)), 8);
/// assert_eq!(addressable_bytes(folded(5)), 8 << 5);
/// assert_eq!(addressable_bytes(partial(3)), 0);
/// assert_eq!(addressable_bytes(FREED), 0);
/// ```
#[inline]
pub const fn addressable_bytes(code: u8) -> u64 {
    if code <= GOOD {
        // Codes below MIN_FOLDED never occur; clamp defensively so the shift
        // cannot exceed 63 even on corrupted shadow.
        let shift = 67 - if code < MIN_FOLDED { MIN_FOLDED } else { code } as u32;
        1u64 << shift
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_layout_matches_definition_1() {
        assert_eq!(folded(0), 64);
        assert_eq!(folded(1), 63);
        assert_eq!(folded(MAX_DEGREE), MIN_FOLDED);
        assert_eq!(partial(1), 71);
        assert_eq!(partial(7), 65);
        assert!(is_error(HEAP_RIGHT_REDZONE));
        assert!(is_error(UNALLOCATED));
        assert!(!is_error(partial(1)));
        assert!(!is_error(folded(0)));
    }

    #[test]
    fn monotonicity_smaller_code_means_more_bytes() {
        // Folded codes decode to strictly more bytes as they shrink.
        let mut prev = 0;
        for degree in 0..=MAX_DEGREE {
            let bytes = addressable_bytes(folded(degree));
            assert!(bytes > prev);
            prev = bytes;
        }
        // Partial and error codes decode to zero.
        for code in PARTIAL_7..=u8::MAX {
            assert_eq!(addressable_bytes(code), 0, "code {code}");
        }
    }

    #[test]
    fn decode_matches_paper_shift_trick() {
        for degree in 0..=MAX_DEGREE {
            let code = folded(degree);
            assert_eq!(addressable_bytes(code), 8u64 << degree);
        }
    }

    #[test]
    fn round_trips() {
        for degree in 0..=MAX_DEGREE {
            assert_eq!(folding_degree(folded(degree)), Some(degree));
        }
        for k in 1..=7 {
            assert_eq!(partial_bytes(partial(k)), Some(k));
        }
        assert_eq!(folding_degree(partial(1)), None);
        assert_eq!(partial_bytes(folded(0)), None);
        assert_eq!(folding_degree(FREED), None);
        assert_eq!(partial_bytes(FREED), None);
    }

    #[test]
    fn is_folded_check_is_single_comparison() {
        // "at least (3)-folded" <=> code <= 61, the paper's monotonicity
        // argument.
        for degree in 0..=MAX_DEGREE {
            let code = folded(degree);
            assert_eq!(code <= folded(3), degree >= 3);
        }
        assert!(partial(7) > folded(3));
        assert!(FREED > folded(3));
    }

    #[test]
    fn corrupted_low_codes_decode_safely() {
        // Codes below MIN_FOLDED are invalid; decode clamps instead of
        // shifting out of range.
        assert_eq!(addressable_bytes(0), addressable_bytes(MIN_FOLDED));
    }
}
