//! GiantSan's shadow state codes (paper §4.1, Definition 1).
//!
//! One 8-bit unsigned code per 8-byte segment:
//!
//! | code        | meaning                                           |
//! |-------------|---------------------------------------------------|
//! | `64 − i`    | *(i)-folded* segment: the next `2^i` segments are all addressable |
//! | `72 − k`    | *k-partial* segment: only its first `k` bytes (1 ≤ k ≤ 7) are addressable |
//! | `> 72`      | error codes (redzones, freed, unallocated)        |
//!
//! The encoding is *monotone*: a smaller code means more consecutive
//! addressable bytes follow, so "is this segment at least (x)-folded?" is the
//! single comparison `m[p] ≤ 64 − x`.
//!
//! The code *algebra* — encode, the branch-free decode
//! `u = (v ≤ 64) << (67 − v)`, and the prefix-exposure comparison — lives in
//! [`giantsan_shadow::codes`] so the region checkers and scanners share one
//! implementation; this module re-exports it and adds the error-code policy
//! (which code means redzone, freed, unallocated).

pub use giantsan_shadow::codes::{
    addressable_bytes, exposed_bytes, exposes_prefix, folded, folding_degree, is_error, partial,
    partial_bytes, GOOD, MAX_DEGREE, MIN_FOLDED, PARTIAL_1, PARTIAL_7,
};

/// Error code: heap right redzone (overflow).
pub const HEAP_RIGHT_REDZONE: u8 = 73;
/// Error code: heap left redzone (underflow).
pub const HEAP_LEFT_REDZONE: u8 = 74;
/// Error code: freed memory held in quarantine.
pub const FREED: u8 = 75;
/// Error code: stack redzone or dead stack slot.
pub const STACK_REDZONE: u8 = 76;
/// Error code: global redzone.
pub const GLOBAL_REDZONE: u8 = 77;
/// Error code: memory the allocator never handed out.
pub const UNALLOCATED: u8 = 78;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_layout_matches_definition_1() {
        assert_eq!(folded(0), 64);
        assert_eq!(folded(1), 63);
        assert_eq!(folded(MAX_DEGREE), MIN_FOLDED);
        assert_eq!(partial(1), 71);
        assert_eq!(partial(7), 65);
        assert!(is_error(HEAP_RIGHT_REDZONE));
        assert!(is_error(UNALLOCATED));
        assert!(!is_error(partial(1)));
        assert!(!is_error(folded(0)));
    }

    #[test]
    fn monotonicity_smaller_code_means_more_bytes() {
        // Folded codes decode to strictly more bytes as they shrink.
        let mut prev = 0;
        for degree in 0..=MAX_DEGREE {
            let bytes = addressable_bytes(folded(degree));
            assert!(bytes > prev);
            prev = bytes;
        }
        // Partial and error codes decode to zero.
        for code in PARTIAL_7..=u8::MAX {
            assert_eq!(addressable_bytes(code), 0, "code {code}");
        }
    }

    #[test]
    fn decode_matches_paper_shift_trick() {
        for degree in 0..=MAX_DEGREE {
            let code = folded(degree);
            assert_eq!(addressable_bytes(code), 8u64 << degree);
        }
    }

    #[test]
    fn round_trips() {
        for degree in 0..=MAX_DEGREE {
            assert_eq!(folding_degree(folded(degree)), Some(degree));
        }
        for k in 1..=7 {
            assert_eq!(partial_bytes(partial(k)), Some(k));
        }
        assert_eq!(folding_degree(partial(1)), None);
        assert_eq!(partial_bytes(folded(0)), None);
        assert_eq!(folding_degree(FREED), None);
        assert_eq!(partial_bytes(FREED), None);
    }

    #[test]
    fn is_folded_check_is_single_comparison() {
        // "at least (3)-folded" <=> code <= 61, the paper's monotonicity
        // argument.
        for degree in 0..=MAX_DEGREE {
            let code = folded(degree);
            assert_eq!(code <= folded(3), degree >= 3);
        }
        assert!(partial(7) > folded(3));
        assert!(FREED > folded(3));
    }

    #[test]
    fn corrupted_low_codes_decode_safely() {
        // Codes below MIN_FOLDED are invalid; decode clamps instead of
        // shifting out of range.
        assert_eq!(addressable_bytes(0), addressable_bytes(MIN_FOLDED));
    }
}
