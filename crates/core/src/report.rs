//! ASan-style rendered error reports with a shadow dump.
//!
//! Real sanitizers don't just return an error code: they print the fault,
//! the object it relates to, and a window of shadow memory around the
//! address so the geometry of the bug is visible at a glance. This module
//! renders [`ErrorReport`]s against a [`GiantSan`] instance in that style,
//! with the folded-segment codes decoded.

use std::fmt::Write as _;

use giantsan_runtime::{ErrorReport, ObjectState, Sanitizer};
use giantsan_shadow::SEGMENT_SIZE;

use crate::encoding;
use crate::GiantSan;

/// Renders a full report: headline, object provenance, and a shadow window.
///
/// # Example
///
/// ```
/// use giantsan_core::{render_report, GiantSan};
/// use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
///
/// let mut san = GiantSan::new(RuntimeConfig::small());
/// let a = san.alloc(48, Region::Heap).unwrap();
/// let err = san
///     .check_region(a.base, a.base + 49, AccessKind::Write)
///     .unwrap_err();
/// let text = render_report(&san, &err);
/// assert!(text.contains("heap-buffer-overflow"));
/// assert!(text.contains("Shadow bytes around the buggy address"));
/// ```
pub fn render_report(san: &GiantSan, report: &ErrorReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "==GiantSan== {report}");

    // Object provenance from the ground-truth table (real sanitizers derive
    // this from allocator metadata and stored stacks).
    let objects = san.world().objects();
    if let Some(obj) = objects.live_containing(report.addr) {
        let _ = writeln!(
            out,
            "  address is inside a live {}-byte {} object [{}, {})",
            obj.size,
            obj.region,
            obj.base,
            obj.end()
        );
    } else if let Some(obj) = objects.live_block_containing(report.addr) {
        let side = if report.addr < obj.base {
            "left"
        } else {
            "right"
        };
        let _ = writeln!(
            out,
            "  address is in the {side} redzone of a {}-byte {} object [{}, {})",
            obj.size,
            obj.region,
            obj.base,
            obj.end()
        );
    } else if let Some(obj) = objects.dead_block_containing(report.addr) {
        let state = match obj.state {
            ObjectState::Quarantined => "freed (quarantined)",
            ObjectState::Recycled => "freed and recycled",
            ObjectState::Live => unreachable!("dead_block_containing returned live"),
        };
        let _ = writeln!(
            out,
            "  address is inside a {state} {}-byte {} object formerly at [{}, {})",
            obj.size,
            obj.region,
            obj.base,
            obj.end()
        );
    } else {
        let _ = writeln!(out, "  address is not in any tracked object (wild)");
    }

    // Shadow window: 8 segments either side, with the faulting one marked.
    // The mapped part of the window is borrowed once as a slice; segments
    // outside the shadow render as "unmapped".
    let _ = writeln!(out, "Shadow bytes around the buggy address:");
    let shadow = san.shadow();
    let fault_seg = report.addr.segment();
    let base_seg = shadow.segment_base(0).segment();
    let win_lo = fault_seg.saturating_sub(8);
    let win_hi = fault_seg + 8;
    let mapped_lo = win_lo.max(base_seg);
    let window = if mapped_lo <= win_hi {
        shadow
            .view(mapped_lo - base_seg, win_hi + 1 - base_seg)
            .mapped()
    } else {
        &[]
    };
    for seg in win_lo..=win_hi {
        let addr = giantsan_shadow::Addr::new(seg * SEGMENT_SIZE);
        let marker = if seg == fault_seg { "=>" } else { "  " };
        let code = seg
            .checked_sub(mapped_lo)
            .and_then(|i| window.get(i as usize));
        match code {
            Some(&c) => {
                let _ = writeln!(out, "{marker} {addr}: {:>3}  {}", c, describe_code(c));
            }
            None => {
                let _ = writeln!(out, "{marker} {addr}: unmapped");
            }
        }
    }
    out
}

/// Human description of one shadow code.
pub fn describe_code(code: u8) -> String {
    if let Some(degree) = encoding::folding_degree(code) {
        if degree == 0 {
            "good (8 addressable bytes)".to_string()
        } else {
            format!(
                "({degree})-folded: next {} bytes addressable",
                8u64 << degree
            )
        }
    } else if let Some(k) = encoding::partial_bytes(code) {
        format!("{k}-partial: first {k} bytes addressable")
    } else {
        match code {
            encoding::HEAP_LEFT_REDZONE => "heap left redzone".to_string(),
            encoding::HEAP_RIGHT_REDZONE => "heap right redzone".to_string(),
            encoding::FREED => "freed (quarantined)".to_string(),
            encoding::STACK_REDZONE => "stack redzone".to_string(),
            encoding::GLOBAL_REDZONE => "global redzone".to_string(),
            encoding::UNALLOCATED => "unallocated".to_string(),
            _ => format!("unknown code {code:#x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_runtime::{AccessKind, Region, RuntimeConfig};

    #[test]
    fn overflow_report_shows_redzone_and_fold_codes() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(64, Region::Heap).unwrap();
        let err = san
            .check_access(a.base + 64, 8, AccessKind::Write)
            .unwrap_err();
        let text = render_report(&san, &err);
        assert!(text.contains("heap-buffer-overflow"), "{text}");
        assert!(text.contains("right redzone"), "{text}");
        assert!(text.contains("folded"), "{text}");
        assert!(text.contains("=>"), "{text}");
    }

    #[test]
    fn uaf_report_names_the_freed_object() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(32, Region::Heap).unwrap();
        san.free(a.base).unwrap();
        let err = san.check_access(a.base, 8, AccessKind::Read).unwrap_err();
        let text = render_report(&san, &err);
        assert!(text.contains("heap-use-after-free"), "{text}");
        assert!(text.contains("freed (quarantined)"), "{text}");
        assert!(text.contains("32-byte heap object"), "{text}");
    }

    #[test]
    fn wild_report_says_untracked() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let err = san
            .check_access(giantsan_shadow::Addr::new(64), 8, AccessKind::Read)
            .unwrap_err();
        let text = render_report(&san, &err);
        assert!(text.contains("not in any tracked object"), "{text}");
    }

    #[test]
    fn describe_covers_every_code_class() {
        assert!(describe_code(encoding::folded(0)).contains("good"));
        assert!(describe_code(encoding::folded(5)).contains("256 bytes"));
        assert!(describe_code(encoding::partial(3)).contains("first 3"));
        assert!(describe_code(encoding::FREED).contains("freed"));
        assert!(describe_code(0xff).contains("unknown"));
    }
}
