#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! The paper's primary contribution: **segment folding**.
//!
//! GiantSan (Ling et al., ASPLOS 2024) raises the *protection density* of
//! location-based sanitizers — the number of bytes one shadow byte can
//! safeguard — by summarising runs of fully-addressable 8-byte segments into
//! *folded segments*: a shadow code `64 − x` promises that the next `2^x`
//! segments contain no non-addressable byte. On top of this encoding the
//! crate implements:
//!
//! * [`poison`] — the linear-time binary-folding poisoner (Figure 5 pattern);
//! * [`check`] — Algorithm 1: region checks of arbitrary size in O(1);
//! * [`GiantSan`] — the full sanitizer: anchor-based checks (§4.4.1) and the
//!   quasi-bound history cache (§4.3) layered on the encoding, implementing
//!   [`giantsan_runtime::Sanitizer`].
//!
//! # Example: the headline effect
//!
//! ```
//! use giantsan_core::GiantSan;
//! use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
//!
//! let mut san = GiantSan::new(RuntimeConfig::small());
//! let kb = san.alloc(1024, Region::Heap).unwrap();
//!
//! // Checking 1 KiB takes ONE shadow load (ASan needs 128).
//! san.check_region(kb.base, kb.base + 1024, AccessKind::Write).unwrap();
//! assert_eq!(san.counters().shadow_loads, 1);
//! ```

pub mod check;
pub mod encoding;
pub mod poison;
mod report;
mod sanitizer;
pub mod validate;

pub use check::{
    check_region, check_region_aligned, check_region_bytewise, check_region_bytewise_reference,
    check_small,
};
pub use check::{BadSpot, CheckOutcome, CheckPath};
pub use report::{describe_code, render_report};
pub use sanitizer::{classify, GiantSan, GiantSanBuilder, GiantSanOptions};
pub use validate::{validate_shadow, ShadowInconsistency};
