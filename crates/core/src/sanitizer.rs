//! The GiantSan tool: segment-folding shadow + O(1) operation-level checks.

use std::collections::HashMap;

use giantsan_runtime::{
    AccessKind, Allocation, BlockEvent, CacheSlot, CheckResult, Counters, ErrorKind, ErrorReport,
    HeapError, ObjectInfo, Region, RuntimeConfig, Sanitizer, World,
};
use giantsan_shadow::{align_up, Addr, ShadowMemory, SEGMENT_SIZE};

use crate::check::{self, BadSpot, CheckPath};
use crate::encoding;
use crate::poison;

/// The GiantSan sanitizer (paper §4).
///
/// Differences from ASan are exactly the paper's contributions:
///
/// * allocation poisons the shadow with the **binary folding pattern**
///   instead of flat zeros ([`crate::poison::poison_object`]);
/// * region checks run **Algorithm 1** in O(1) instead of a linear walk;
/// * [`Sanitizer::cached_check`] implements the **quasi-bound** history cache
///   (Figure 9), converging to the object bound in `⌈log2(n/8)⌉` updates;
/// * [`Sanitizer::check_anchored`] checks from the object's base pointer so a
///   small redzone cannot be bypassed (§4.4.1).
///
/// # Example
///
/// ```
/// use giantsan_core::GiantSan;
/// use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
///
/// let mut san = GiantSan::new(RuntimeConfig::small());
/// let a = san.alloc(100, Region::Heap).unwrap();
/// assert!(san.check_region(a.base, a.base + 100, AccessKind::Read).is_ok());
/// let err = san
///     .check_region(a.base, a.base + 101, AccessKind::Read)
///     .unwrap_err();
/// assert_eq!(err.kind, giantsan_runtime::ErrorKind::HeapBufferOverflow);
/// ```
#[derive(Debug)]
pub struct GiantSan {
    world: World,
    shadow: ShadowMemory,
    counters: Counters,
    options: GiantSanOptions,
    /// Blocks stamped with a whole-block slot pattern, and the object size
    /// the pattern was built for. A pristine slot in a stamped block whose
    /// size matches needs no per-object poisoning at all.
    stamped_blocks: HashMap<u64, u64>,
    /// Memo of the most recent stamp hit `(block start, object size)`: bump
    /// allocation lands in the same block run after run, so this keeps the
    /// hot path to two compares instead of a hash lookup.
    last_stamp: Option<(u64, u64)>,
    /// Cache of slot patterns keyed by `(slot_len, object size)`.
    slot_patterns: HashMap<(u64, u64), Vec<u8>>,
}

/// Optional behaviours of the GiantSan runtime, covering the mitigation
/// alternatives the paper sketches for its reverse-traversal limitation
/// (§5.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GiantSanOptions {
    /// Keep anchor-based enhancement for negative offsets (the default).
    /// Turning this off is the paper's *first* alternative: underflow
    /// detection degrades to ASan's instruction-level mode — cheaper on
    /// reverse traversals, but a large negative offset can again bypass the
    /// redzone.
    pub underflow_anchor: bool,
    /// The paper's *second* alternative: on the first negative-offset miss,
    /// locate the lower bound of the addressable run by enumerating folding
    /// degrees ([`GiantSan::locate_lower_bound`]) and cache it as a
    /// quasi-lower-bound, making subsequent reverse accesses register
    /// compares.
    pub reverse_mitigation: bool,
    /// Stamp whole blocks of the block/line heap with their size-class slot
    /// pattern the moment the block is dedicated (one
    /// [`ShadowMemory::tile_pattern`] write), and skip per-object poisoning
    /// for pristine slots whose size matches the stamp.
    ///
    /// Off by default: pre-poisoning marks *never-allocated* slots of the
    /// block as addressable, a bounded false-negative window (wild pointers
    /// into unallocated slots pass checks until the block is freed) traded
    /// for O(1) shadow work per allocation on class-homogeneous workloads.
    /// Requires [`giantsan_runtime::HeapBackend::BlockLine`]; with the
    /// free-list backend no block events arrive and the flag is inert.
    pub block_granular_poison: bool,
}

impl Default for GiantSanOptions {
    fn default() -> Self {
        GiantSanOptions {
            underflow_anchor: true,
            reverse_mitigation: false,
            block_granular_poison: false,
        }
    }
}

impl GiantSanOptions {
    /// Returns the options with anchor-based underflow detection toggled.
    pub fn with_underflow_anchor(mut self, on: bool) -> Self {
        self.underflow_anchor = on;
        self
    }

    /// Returns the options with the §5.4 reverse-traversal mitigation
    /// toggled.
    pub fn with_reverse_mitigation(mut self, on: bool) -> Self {
        self.reverse_mitigation = on;
        self
    }

    /// Returns the options with whole-block pattern poisoning toggled.
    pub fn with_block_granular_poison(mut self, on: bool) -> Self {
        self.block_granular_poison = on;
        self
    }
}

/// Non-consuming fluent builder for [`GiantSan`], covering both the runtime
/// configuration and every [`GiantSanOptions`] knob.
///
/// # Example
///
/// ```
/// use giantsan_core::GiantSan;
/// use giantsan_runtime::RuntimeConfig;
///
/// let san = GiantSan::builder()
///     .config(RuntimeConfig::small())
///     .reverse_mitigation(true)
///     .build();
/// assert_eq!(san.options().reverse_mitigation, true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GiantSanBuilder {
    config: RuntimeConfig,
    options: GiantSanOptions,
}

impl GiantSanBuilder {
    /// Sets the runtime configuration (defaults to [`RuntimeConfig::default`]).
    pub fn config(&mut self, config: RuntimeConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Replaces the whole option block at once.
    pub fn options(&mut self, options: GiantSanOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Toggles anchor-based underflow detection (§5.4 first alternative when
    /// off).
    pub fn underflow_anchor(&mut self, on: bool) -> &mut Self {
        self.options.underflow_anchor = on;
        self
    }

    /// Toggles the quasi-lower-bound reverse-traversal mitigation (§5.4
    /// second alternative).
    pub fn reverse_mitigation(&mut self, on: bool) -> &mut Self {
        self.options.reverse_mitigation = on;
        self
    }

    /// Toggles whole-block pattern poisoning for the block/line heap
    /// backend (see [`GiantSanOptions::block_granular_poison`]).
    pub fn block_granular_poison(&mut self, on: bool) -> &mut Self {
        self.options.block_granular_poison = on;
        self
    }

    /// Builds a GiantSan instance over a fresh world (the builder stays
    /// usable for further sessions).
    pub fn build(&self) -> GiantSan {
        GiantSan::with_options(self.config.clone(), self.options.clone())
    }
}

impl GiantSan {
    /// Creates a GiantSan instance over a fresh world.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_options(config, GiantSanOptions::default())
    }

    /// Starts a fluent [`GiantSanBuilder`] with default config and options.
    pub fn builder() -> GiantSanBuilder {
        GiantSanBuilder::default()
    }

    /// The option block this instance runs with.
    pub fn options(&self) -> &GiantSanOptions {
        &self.options
    }

    /// Creates a GiantSan instance with explicit [`GiantSanOptions`].
    pub fn with_options(config: RuntimeConfig, options: GiantSanOptions) -> Self {
        let world = World::new(config);
        let shadow = ShadowMemory::new(world.space(), encoding::UNALLOCATED);
        GiantSan {
            world,
            shadow,
            counters: Counters::default(),
            options,
            stamped_blocks: HashMap::new(),
            last_stamp: None,
            slot_patterns: HashMap::new(),
        }
    }

    /// Locates the lowest address `L` such that `[L, anchor)` is entirely
    /// addressable, by enumerating folding degrees: doubling probes
    /// `anchor − 8·2^k` for an (≥k)-folded segment, then a binary refinement
    /// — at most `2·⌈log2(n/8)⌉` shadow loads for an `n`-byte run (§5.4's
    /// second mitigation alternative).
    ///
    /// `anchor` itself need not be addressable (one-past-the-end pointers
    /// are the common reverse-traversal anchor).
    pub fn locate_lower_bound(&mut self, anchor: Addr) -> Addr {
        let end_seg = anchor.segment(); // absolute segment index
        let seg_addr = |seg: u64| Addr::new(seg * SEGMENT_SIZE);
        let covered_from = |this: &mut Self, seg: u64, k: u32| -> bool {
            // Is the segment at `seg` (≥k)-folded, i.e. does it certify 2^k
            // good segments — exactly the gap up to the current low mark?
            let Some(rel) = this.shadow.try_segment_of(seg_addr(seg)) else {
                return false;
            };
            this.counters.shadow_loads += 1;
            this.shadow.get(rel) <= encoding::folded(k.min(encoding::MAX_DEGREE))
        };
        // Doubling phase: grow the certified run [low, end).
        let mut low = end_seg;
        let mut k = 0u32;
        while k <= encoding::MAX_DEGREE {
            let span = 1u64 << k;
            let Some(cand) = end_seg.checked_sub(span) else {
                break;
            };
            if !covered_from(self, cand, k) {
                break;
            }
            low = cand;
            k += 1;
        }
        // Refinement phase: extend below `low` by decreasing powers.
        while k > 0 {
            k -= 1;
            let span = 1u64 << k;
            if let Some(cand) = low.checked_sub(span) {
                if covered_from(self, cand, k) {
                    low = cand;
                }
            }
        }
        seg_addr(low)
    }

    /// Read-only view of the shadow memory (tests and diagnostics).
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }

    /// Failure-injection hook: overwrite one shadow byte, simulating
    /// metadata corruption (a stray write into the shadow mapping or a
    /// runtime bug). Used by the consistency validator's tests to prove
    /// checks fail *closed* under corruption.
    pub fn corrupt_shadow_for_testing(&mut self, addr: Addr, code: u8) {
        let seg = self.shadow.segment_of(addr);
        self.shadow.set(seg, code);
    }

    fn redzone_code(region: Region, left: bool) -> u8 {
        match (region, left) {
            (Region::Heap, true) => encoding::HEAP_LEFT_REDZONE,
            (Region::Heap, false) => encoding::HEAP_RIGHT_REDZONE,
            (Region::Stack, _) => encoding::STACK_REDZONE,
            (Region::Global, _) => encoding::GLOBAL_REDZONE,
        }
    }

    fn poison_allocation(&mut self, info: &ObjectInfo) {
        let rz = info.base - info.block_start;
        let user_len = align_up(info.size.max(1), SEGMENT_SIZE);
        let mut stores = 0;
        stores += poison::poison_range(
            &mut self.shadow,
            info.block_start,
            rz,
            Self::redzone_code(info.region, true),
        );
        stores += poison::poison_object(&mut self.shadow, info.base, info.size);
        let right_start = info.base + user_len;
        let right_len = info.block_len - rz - user_len;
        stores += poison::poison_range(
            &mut self.shadow,
            right_start,
            right_len,
            Self::redzone_code(info.region, false),
        );
        self.counters.shadow_stores += stores;
    }

    fn poison_block(&mut self, info: &ObjectInfo, code: u8) {
        self.counters.shadow_stores +=
            poison::poison_range(&mut self.shadow, info.block_start, info.block_len, code);
    }

    /// Handles the block events of an allocation (block/line backend):
    /// stamps freshly mapped class blocks with their whole-block slot
    /// pattern when [`GiantSanOptions::block_granular_poison`] is on, and
    /// decides whether the new object's slot is already exactly poisoned by
    /// a stamp (pristine slot, matching size) so per-object work can be
    /// skipped.
    fn absorb_alloc_events(&mut self, a: &Allocation, events: &[BlockEvent]) -> bool {
        if self.options.block_granular_poison {
            let rz = self.world.effective_redzone();
            for ev in events {
                let BlockEvent::Mapped {
                    start,
                    slot_len,
                    slots,
                } = *ev
                else {
                    continue;
                };
                // A block mapped during this allocation serves this
                // allocation's size class; stamp it with this size's image.
                let pattern = self
                    .slot_patterns
                    .entry((slot_len, a.size))
                    .or_insert_with(|| {
                        poison::class_slot_pattern(
                            a.size,
                            rz,
                            slot_len,
                            encoding::HEAP_LEFT_REDZONE,
                            encoding::HEAP_RIGHT_REDZONE,
                            encoding::UNALLOCATED,
                        )
                    });
                self.counters.shadow_stores +=
                    poison::poison_class_block(&mut self.shadow, start, slots, pattern);
                self.counters.bulk_poison_runs += 1;
                self.stamped_blocks.insert(start.raw(), a.size);
                self.last_stamp = Some((start.raw(), a.size));
            }
        } else {
            return false;
        }
        let Some(p) = a.placement else { return false };
        if !p.pristine {
            return false;
        }
        let Some(heap) = self.world.heap().as_block() else {
            return false;
        };
        let block = heap.cluster_of(a.base);
        if self.last_stamp == Some((block, a.size)) {
            return true;
        }
        let hit = self.stamped_blocks.get(&block) == Some(&a.size);
        if hit {
            self.last_stamp = Some((block, a.size));
        }
        hit
    }

    /// Handles the block events of a free: whole blocks returned to the
    /// free pool get one bulk "unallocated" fill, and recycled objects
    /// inside those blocks skip their per-object reset. Recycled objects
    /// whose block stayed partially live are still reset individually.
    fn absorb_free_events(&mut self, events: &[BlockEvent], recycled: &[ObjectInfo]) {
        let freed: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|ev| match *ev {
                BlockEvent::Freed { start, len } => Some((start.raw(), len)),
                BlockEvent::Mapped { .. } => None,
            })
            .collect();
        for info in recycled {
            let covered = freed
                .iter()
                .any(|&(s, l)| info.block_start.raw() >= s && info.block_start.raw() < s + l);
            if !covered {
                self.poison_block(info, encoding::UNALLOCATED);
            }
        }
        for &(start, len) in &freed {
            self.counters.shadow_stores += poison::poison_range(
                &mut self.shadow,
                Addr::new(start),
                len,
                encoding::UNALLOCATED,
            );
            self.counters.bulk_poison_runs += 1;
            let mut b = start;
            while b < start + len {
                self.stamped_blocks.remove(&b);
                if self.last_stamp.is_some_and(|(s, _)| s == b) {
                    self.last_stamp = None;
                }
                b += giantsan_runtime::block_heap::BLOCK_SIZE;
            }
        }
    }

    /// Maps a failed check to an error report, classifying by the shadow code
    /// (and, for partial-segment violations, by peeking at the following
    /// redzone to learn the region kind).
    fn report(&self, spot: BadSpot, len: u64, kind: AccessKind) -> ErrorReport {
        let code = if spot.code <= 72 {
            // Partial segment violated: the object's region is identified by
            // the redzone that follows it.
            let next_seg = self
                .shadow
                .try_segment_of(spot.addr + SEGMENT_SIZE)
                .map(|s| self.shadow.get(s))
                .unwrap_or(encoding::UNALLOCATED);
            if encoding::is_error(next_seg) {
                next_seg
            } else {
                encoding::HEAP_RIGHT_REDZONE
            }
        } else {
            spot.code
        };
        ErrorReport::new(classify(code), spot.addr, len).with_access(kind)
    }

    /// Folds a check outcome into the counters without branching: the
    /// fast/slow split becomes two unconditional adds of a 0/1 flag, so the
    /// per-access bookkeeping never costs a mispredict.
    #[inline]
    fn note_outcome(&mut self, outcome: check::CheckOutcome) {
        self.counters.shadow_loads += outcome.loads as u64;
        let slow = (outcome.path == CheckPath::Slow) as u64;
        self.counters.fast_checks += 1 - slow;
        self.counters.slow_checks += slow;
    }

    #[inline]
    fn run_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        let result = check::check_region(&self.shadow, lo, hi);
        let outcome = match &result {
            Ok(o) => *o,
            Err((_, o)) => *o,
        };
        self.note_outcome(outcome);
        match result {
            Ok(_) => Ok(()),
            Err((spot, _)) => {
                // The O(1) verdict is exact, but a suffix-fold mismatch can
                // blame a folded segment rather than the first bad byte. The
                // report path is cold: pin the precise spot with the
                // byte-wise scan, like a real sanitizer's error reporter.
                let spot = check::check_region_bytewise(&self.shadow, lo, hi)
                    .err()
                    .unwrap_or(spot);
                self.counters.reports += 1;
                Err(self.report(spot, hi - lo, kind))
            }
        }
    }
}

/// Maps a GiantSan shadow error code to the report classification.
pub fn classify(code: u8) -> ErrorKind {
    match code {
        encoding::HEAP_RIGHT_REDZONE => ErrorKind::HeapBufferOverflow,
        encoding::HEAP_LEFT_REDZONE => ErrorKind::HeapBufferUnderflow,
        encoding::FREED => ErrorKind::UseAfterFree,
        encoding::STACK_REDZONE => ErrorKind::StackBufferOverflow,
        encoding::GLOBAL_REDZONE => ErrorKind::GlobalBufferOverflow,
        encoding::UNALLOCATED => ErrorKind::Wild,
        _ => ErrorKind::Unknown,
    }
}

impl Sanitizer for GiantSan {
    fn name(&self) -> &'static str {
        "GiantSan"
    }

    fn world(&self) -> &World {
        &self.world
    }

    fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        let a = self.world.alloc(size, region)?;
        let events = self.world.take_block_events();
        self.counters.allocs += 1;
        if region == Region::Stack {
            self.counters.stack_allocs += 1;
        }
        let slot_prepoisoned = self.absorb_alloc_events(&a, &events);
        if !slot_prepoisoned {
            let info = self
                .world
                .objects()
                .get(a.id)
                .expect("fresh allocation must be registered")
                .clone();
            self.poison_allocation(&info);
        }
        Ok(a)
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.counters.frees += 1;
        match self.world.free(base) {
            Ok(outcome) => {
                let events = self.world.take_block_events();
                self.poison_block(&outcome.freed, encoding::FREED);
                self.absorb_free_events(&events, &outcome.recycled);
                Ok(())
            }
            Err(report) => {
                self.counters.reports += 1;
                Err(report)
            }
        }
    }

    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, ErrorReport> {
        match self.world.realloc(base, new_size) {
            Ok((a, outcome)) => {
                let events = self.world.take_block_events();
                self.counters.allocs += 1;
                self.counters.frees += 1;
                let slot_prepoisoned = self.absorb_alloc_events(&a, &events);
                if !slot_prepoisoned {
                    let info = self
                        .world
                        .objects()
                        .get(a.id)
                        .expect("fresh allocation must be registered")
                        .clone();
                    self.poison_allocation(&info);
                }
                self.poison_block(&outcome.freed, encoding::FREED);
                self.absorb_free_events(&events, &outcome.recycled);
                Ok(a)
            }
            Err(report) => {
                self.counters.reports += 1;
                Err(report)
            }
        }
    }

    fn push_frame(&mut self) {
        self.world.push_frame();
    }

    fn pop_frame(&mut self) {
        for info in self.world.pop_frame() {
            self.poison_block(&info, encoding::UNALLOCATED);
        }
    }

    #[inline]
    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult {
        let result = check::check_small(&self.shadow, addr, width);
        let outcome = match &result {
            Ok(o) => *o,
            Err((_, o)) => *o,
        };
        self.note_outcome(outcome);
        match result {
            Ok(_) => Ok(()),
            Err((spot, _)) => {
                self.counters.reports += 1;
                Err(self.report(spot, width as u64, kind))
            }
        }
    }

    #[inline]
    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        self.run_region(lo, hi, kind)
    }

    #[inline]
    fn check_anchored(
        &mut self,
        anchor: Addr,
        access_lo: Addr,
        access_hi: Addr,
        kind: AccessKind,
    ) -> CheckResult {
        if access_lo < anchor {
            if !self.options.underflow_anchor {
                // §5.4 first alternative: ignore the anchor for negative
                // offsets — ASan-mode accuracy, ASan-mode cost.
                return self.run_region(access_lo, access_hi, kind);
            }
            // Underflow side: a dedicated CI from the access up to the anchor
            // (§4.3; the paper keeps no lower quasi-bound).
            self.counters.underflow_checks += 1;
            self.run_region(access_lo, anchor.max(access_hi), kind)
        } else {
            self.run_region(anchor, access_hi, kind)
        }
    }

    #[inline]
    fn cached_check(
        &mut self,
        slot: &mut CacheSlot,
        base: Addr,
        offset: i64,
        width: u32,
        kind: AccessKind,
    ) -> CheckResult {
        // Figure 9, made sound: compare the access *end* against the
        // quasi-bound, and derive the refreshed bound from the folded
        // segment's own base so it never overclaims past the fold.
        if offset >= 0 {
            let end = offset as u64 + width as u64;
            if end <= slot.ub {
                self.counters.cache_hits += 1;
                return Ok(());
            }
            // Miss: anchored region check, then refresh the quasi-bound from
            // the folded segment covering the accessed address.
            self.counters.cache_updates += 1;
            slot.updates += 1;
            self.check_anchored(base, base.offset(offset), base.offset(end as i64), kind)?;
            let acc = base.offset(offset);
            let seg_base = Addr::new(acc.raw() & !(SEGMENT_SIZE - 1));
            let v = self
                .shadow
                .try_segment_of(acc)
                .map(|s| self.shadow.get(s))
                .unwrap_or(encoding::UNALLOCATED);
            self.counters.shadow_loads += 1;
            let u = encoding::addressable_bytes(v);
            let covered_end = seg_base.raw() + u;
            slot.ub = slot.ub.max(covered_end.saturating_sub(base.raw()));
            Ok(())
        } else {
            let access_end = offset + width as i64;
            // Quasi-lower-bound hit (only populated by the §5.4 mitigation).
            if offset >= slot.lb && access_end <= 0 {
                self.counters.cache_hits += 1;
                return Ok(());
            }
            if !self.options.underflow_anchor {
                // First §5.4 alternative: degrade to ASan's instruction-level
                // mode — only the accessed bytes are inspected.
                return self.check_access(base.offset(offset), width, kind);
            }
            // Dedicated underflow CI up to the anchor.
            let verdict =
                self.check_anchored(base, base.offset(offset), base.offset(access_end), kind);
            if verdict.is_ok() && self.options.reverse_mitigation && base.is_segment_aligned() {
                // Second §5.4 alternative: locate the run's lower bound once
                // and serve subsequent descending accesses from the cache.
                let low = self.locate_lower_bound(base);
                slot.lb = slot.lb.min(-((base - low) as i64));
                slot.updates += 1;
                self.counters.cache_updates += 1;
            }
            verdict
        }
    }

    fn loop_final_check(&mut self, slot: &CacheSlot, base: Addr, kind: AccessKind) -> CheckResult {
        // Figure 9 line 14: CI(y, y + ub) — catches objects freed while the
        // cache was admitting accesses. The quasi-lower-bound (§5.4 second
        // alternative) admits descending accesses the same way, so the freed
        // window it covered needs the symmetric check CI(y + lb, y).
        if slot.lb < 0 {
            self.run_region(base.offset(slot.lb), base, kind)?;
        }
        if slot.ub == 0 {
            return Ok(());
        }
        self.run_region(base, base.offset(slot.ub as i64), kind)
    }

    fn supports_caching(&self) -> bool {
        true
    }

    fn contain(&mut self, report: &ErrorReport) {
        // Heal the shadow around the faulting address from the ground-truth
        // object table: corrupted or stale folded codes are re-derived, so
        // one bad byte cannot cascade into a storm of follow-on reports.
        let addr = report.addr;
        if let Some(info) = self.world.objects().live_block_containing(addr).cloned() {
            self.poison_allocation(&info);
        } else if let Some(info) = self.world.objects().dead_block_containing(addr).cloned() {
            self.poison_block(&info, encoding::FREED);
        } else if let Some(seg) = self.shadow.try_segment_of(addr) {
            self.shadow.set(seg, encoding::UNALLOCATED);
            self.counters.shadow_stores += 1;
        }
    }

    fn inject_metadata_fault(
        &mut self,
        addr: Addr,
        fault: giantsan_runtime::MetadataFault,
    ) -> bool {
        let Some(seg) = self.shadow.try_segment_of(addr) else {
            return false;
        };
        match fault {
            giantsan_runtime::MetadataFault::BitFlip { bit } => {
                let cur = self.shadow.get(seg);
                self.shadow.set(seg, cur ^ (1 << (bit & 7)));
                true
            }
            giantsan_runtime::MetadataFault::FoldDowngrade => {
                // Losing a fold is the sound direction: the code claims
                // *fewer* addressable segments, never more.
                let cur = self.shadow.get(seg);
                if cur < giantsan_shadow::codes::GOOD {
                    self.shadow.set(seg, giantsan_shadow::codes::GOOD);
                    true
                } else {
                    false
                }
            }
        }
    }

    fn shadow_probe(&self, addr: Addr) -> Option<u8> {
        // Read-only: telemetry observes the folded code without counting a
        // shadow load, so traced and untraced runs stay byte-identical.
        self.shadow.try_segment_of(addr).map(|s| self.shadow.get(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> GiantSan {
        GiantSan::new(RuntimeConfig::small())
    }

    #[test]
    fn alloc_poisons_folding_pattern() {
        let mut s = san();
        let a = s.alloc(68, Region::Heap).unwrap();
        let seg = s.shadow.segment_of(a.base);
        let expect = [61u8, 62, 62, 62, 62, 63, 63, 64, 68];
        assert_eq!(s.shadow.slice(seg, seg + 9), &expect);
        // Redzones on both sides.
        assert_eq!(s.shadow.get(seg - 1), encoding::HEAP_LEFT_REDZONE);
        assert_eq!(s.shadow.get(seg + 9), encoding::HEAP_RIGHT_REDZONE);
    }

    fn block_san(granular: bool) -> GiantSan {
        GiantSan::builder()
            .config(
                RuntimeConfig::small()
                    .to_builder()
                    .heap_backend(giantsan_runtime::HeapBackend::BlockLine)
                    .quarantine_cap(1 << 12)
                    .build(),
            )
            .block_granular_poison(granular)
            .build()
    }

    #[test]
    fn block_backend_shadow_matches_free_list_per_object() {
        // Same alloc/free sequence under the block/line backend (bulk drain
        // fills on) and the per-object writer: the live objects' shadow
        // windows must be identical, and detection verdicts must agree.
        let mut blk = block_san(false);
        let mut fl = san();
        let mut pairs = Vec::new();
        for size in [1u64, 8, 68, 96, 200, 1000] {
            let a = blk.alloc(size, Region::Heap).unwrap();
            let b = fl.alloc(size, Region::Heap).unwrap();
            pairs.push((a, b, size));
        }
        for (a, b, size) in &pairs {
            let sa = blk.shadow.segment_of(a.base - 16);
            let sb = fl.shadow.segment_of(b.base - 16);
            let segs = (size.div_ceil(8) * 8 + 32) / 8;
            assert_eq!(
                blk.shadow.slice(sa, sa + segs),
                fl.shadow.slice(sb, sb + segs),
                "shadow window mismatch for size {size}"
            );
            for (san, alloc) in [(&mut blk, a), (&mut fl, b)] {
                assert!(san
                    .check_region(alloc.base, alloc.base + *size, AccessKind::Read)
                    .is_ok());
                assert_eq!(
                    san.check_access(alloc.base + (size.div_ceil(8) * 8), 8, AccessKind::Read)
                        .unwrap_err()
                        .kind,
                    ErrorKind::HeapBufferOverflow
                );
            }
        }
        for (a, b, _) in pairs {
            assert!(blk.free(a.base).is_ok());
            assert!(fl.free(b.base).is_ok());
            assert_eq!(
                blk.check_access(a.base, 8, AccessKind::Read)
                    .unwrap_err()
                    .kind,
                ErrorKind::UseAfterFree
            );
            assert_eq!(
                fl.check_access(b.base, 8, AccessKind::Read)
                    .unwrap_err()
                    .kind,
                ErrorKind::UseAfterFree
            );
        }
    }

    #[test]
    fn block_granular_poison_is_byte_identical_for_matching_slots() {
        // With pre-stamping on, a run of same-size allocations must produce
        // exactly the bytes the per-object writer produces, while writing
        // far fewer shadow stores per allocation.
        let mut bulk = block_san(true);
        let mut per = block_san(false);
        let mut allocs = Vec::new();
        for _ in 0..64 {
            let a = bulk.alloc(68, Region::Heap).unwrap();
            let b = per.alloc(68, Region::Heap).unwrap();
            assert_eq!(a.base, b.base, "backends must place identically");
            allocs.push(a.base);
        }
        assert!(bulk.counters().bulk_poison_runs > 0);
        assert_eq!(per.counters().bulk_poison_runs, 0);
        for base in &allocs {
            let lo = bulk.shadow.segment_of(*base - 16);
            assert_eq!(
                bulk.shadow.slice(lo, lo + 13),
                per.shadow.slice(lo, lo + 13),
                "stamped slot diverges from per-object poisoning"
            );
        }
        // Detection agrees on overflow and use-after-free.
        let victim = allocs[10];
        for s in [&mut bulk, &mut per] {
            assert!(s
                .check_region(victim, victim + 68, AccessKind::Read)
                .is_ok());
            assert_eq!(
                s.check_access(victim + 72, 8, AccessKind::Read)
                    .unwrap_err()
                    .kind,
                ErrorKind::HeapBufferOverflow
            );
            assert!(s.free(victim).is_ok());
            assert_eq!(
                s.check_access(victim, 8, AccessKind::Read)
                    .unwrap_err()
                    .kind,
                ErrorKind::UseAfterFree
            );
        }
    }

    #[test]
    fn block_granular_stamp_does_not_leak_across_sizes() {
        // A hole-recycled or size-mismatched slot must be re-poisoned per
        // object even when its block carries a stamp.
        let mut s = block_san(true);
        let a = s.alloc(68, Region::Heap).unwrap();
        // Different size, same class (68 and 90 both fit one 128-byte line
        // with redzones? 90+32=122 ≤ 128 yes): must NOT reuse the 68 stamp.
        let b = s.alloc(90, Region::Heap).unwrap();
        assert!(s
            .check_region(b.base, b.base + 90, AccessKind::Read)
            .is_ok());
        assert_eq!(
            s.check_access(b.base + 96, 8, AccessKind::Read)
                .unwrap_err()
                .kind,
            ErrorKind::HeapBufferOverflow,
            "size-90 slot must carry size-90 bounds, not the size-68 stamp"
        );
        let _ = a;
    }

    #[test]
    fn overflow_and_underflow_classified() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        let over = s
            .check_access(a.base + 64, 8, AccessKind::Write)
            .unwrap_err();
        assert_eq!(over.kind, ErrorKind::HeapBufferOverflow);
        let under = s.check_access(a.base - 8, 8, AccessKind::Read).unwrap_err();
        assert_eq!(under.kind, ErrorKind::HeapBufferUnderflow);
    }

    #[test]
    fn partial_segment_violation_classified_as_overflow() {
        let mut s = san();
        let a = s.alloc(12, Region::Heap).unwrap();
        let err = s
            .check_access(a.base + 12, 1, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::HeapBufferOverflow);
    }

    #[test]
    fn use_after_free_detected_until_recycled() {
        let mut s = GiantSan::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(1 << 12)
                .build(),
        );
        let a = s.alloc(32, Region::Heap).unwrap();
        s.free(a.base).unwrap();
        let err = s.check_access(a.base, 8, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
    }

    #[test]
    fn quarantine_bypass_is_a_known_false_negative() {
        // §5.4: once the quarantine evicts and the block is reallocated, a
        // dangling access looks valid.
        let mut s = GiantSan::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(0)
                .build(),
        );
        let a = s.alloc(32, Region::Heap).unwrap();
        s.free(a.base).unwrap();
        let b = s.alloc(32, Region::Heap).unwrap();
        assert_eq!(a.base, b.base);
        assert!(s.check_access(a.base, 8, AccessKind::Read).is_ok());
    }

    #[test]
    fn stack_and_global_errors_classified() {
        let mut s = san();
        s.push_frame();
        let st = s.alloc(24, Region::Stack).unwrap();
        let err = s
            .check_access(st.base + 24, 8, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::StackBufferOverflow);
        s.pop_frame();
        let g = s.alloc(16, Region::Global).unwrap();
        let err = s
            .check_access(g.base + 16, 4, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::GlobalBufferOverflow);
    }

    #[test]
    fn dead_stack_slot_access_fails() {
        let mut s = san();
        s.push_frame();
        let st = s.alloc(24, Region::Stack).unwrap();
        assert!(s.check_access(st.base, 8, AccessKind::Read).is_ok());
        s.pop_frame();
        assert!(s.check_access(st.base, 8, AccessKind::Read).is_err());
    }

    #[test]
    fn anchored_check_defeats_redzone_bypass() {
        // §4.4.1: a huge offset jumps clean over the 16-byte redzone into
        // another object; the instruction-level check misses it, the
        // anchored check does not.
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        let _pad: Vec<_> = (0..8)
            .map(|_| s.alloc(256, Region::Heap).unwrap())
            .collect();
        let victim = s.alloc(256, Region::Heap).unwrap();
        let off = (victim.base + 16) - a.base;
        // The bypassing access itself lands on addressable bytes...
        assert!(s
            .check_access(a.base.offset(off as i64), 8, AccessKind::Write)
            .is_ok());
        // ...but the anchored region check catches it.
        let err = s
            .check_anchored(
                a.base,
                a.base.offset(off as i64),
                a.base.offset(off as i64 + 8),
                AccessKind::Write,
            )
            .unwrap_err();
        assert!(err.kind.is_spatial());
    }

    #[test]
    fn quasi_bound_converges_logarithmically() {
        let mut s = san();
        let n: u64 = 4096;
        let a = s.alloc(n, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        for off in (0..n).step_by(8) {
            s.cached_check(&mut slot, a.base, off as i64, 8, AccessKind::Read)
                .unwrap();
        }
        let bound = (n / 8).ilog2() + 1;
        assert!(
            slot.updates <= bound,
            "updates {} exceed ⌈log2(n/8)⌉ {}",
            slot.updates,
            bound
        );
        assert_eq!(slot.ub, n);
        // The vast majority of the 512 accesses were cache hits.
        assert!(s.counters().cache_hits >= 512 - bound as u64 - 1);
    }

    #[test]
    fn quasi_bound_never_admits_out_of_bounds() {
        // Soundness at every size: walk past the end; the first OOB access
        // must be reported despite the cache.
        for size in [8u64, 12, 24, 64, 100, 256] {
            let mut s = san();
            let a = s.alloc(size, Region::Heap).unwrap();
            let mut slot = CacheSlot::new();
            for off in (0..size + 32).step_by(4) {
                let r = s.cached_check(&mut slot, a.base, off as i64, 4, AccessKind::Read);
                let valid = off + 4 <= size;
                assert_eq!(r.is_ok(), valid, "size={size} off={off}");
                if !valid {
                    break;
                }
            }
        }
    }

    #[test]
    fn cached_negative_offsets_always_checked() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        s.cached_check(&mut slot, a.base, 0, 8, AccessKind::Read)
            .unwrap();
        let before = s.counters().underflow_checks;
        let err = s
            .cached_check(&mut slot, a.base, -8, 8, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::HeapBufferUnderflow);
        assert_eq!(s.counters().underflow_checks, before + 1);
    }

    #[test]
    fn loop_final_check_catches_mid_loop_free() {
        let mut s = san();
        let a = s.alloc(256, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        s.cached_check(&mut slot, a.base, 0, 8, AccessKind::Write)
            .unwrap();
        assert!(slot.ub > 0);
        s.free(a.base).unwrap();
        // Cache still admits (that is the point of the final check)...
        assert!(s
            .cached_check(&mut slot, a.base, 8, 8, AccessKind::Write)
            .is_ok());
        // ...and the loop-exit check reports the deallocation.
        let err = s
            .loop_final_check(&slot, a.base, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
    }

    #[test]
    fn loop_final_check_catches_mid_loop_realloc() {
        // A realloc (shrink, possibly moving the object) invalidates a
        // quasi-bound built on the old extent: the loop-exit check over the
        // remembered range must report, whether the old base is now freed or
        // truncated.
        let mut s = san();
        let a = s.alloc(256, Region::Heap).unwrap();
        let mut slot = CacheSlot::new();
        s.cached_check(&mut slot, a.base, 248, 8, AccessKind::Write)
            .unwrap();
        assert_eq!(slot.ub, 256);
        s.realloc(a.base, 64).unwrap();
        let err = s
            .loop_final_check(&slot, a.base, AccessKind::Write)
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                ErrorKind::UseAfterFree | ErrorKind::HeapBufferOverflow
            ),
            "stale quasi-bound after realloc not reported: {:?}",
            err.kind
        );
    }

    #[test]
    fn loop_final_check_catches_mid_loop_free_on_reverse_traversal() {
        // Regression: with the §5.4 reverse mitigation the cache admits
        // descending accesses below the quasi-lower-bound; a mid-loop free
        // must still surface at loop exit even when ub was never populated.
        let mut s = GiantSan::builder()
            .config(RuntimeConfig::small())
            .reverse_mitigation(true)
            .build();
        let n: u64 = 256;
        let a = s.alloc(n, Region::Heap).unwrap();
        let end = a.base + n;
        let mut slot = CacheSlot::new();
        s.cached_check(&mut slot, end, -8, 8, AccessKind::Read)
            .unwrap();
        assert!(slot.lb < 0, "mitigation must populate the lower bound");
        assert_eq!(slot.ub, 0, "reverse loop never grows the upper bound");
        s.free(a.base).unwrap();
        // The cache still admits in-bounds descending accesses...
        assert!(s
            .cached_check(&mut slot, end, -16, 8, AccessKind::Read)
            .is_ok());
        // ...so the loop-exit check must validate [base+lb, base) too.
        let err = s
            .loop_final_check(&slot, end, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
    }

    #[test]
    fn builder_matches_with_options() {
        let built = GiantSan::builder()
            .underflow_anchor(false)
            .reverse_mitigation(true)
            .build();
        assert_eq!(
            *built.options(),
            GiantSanOptions {
                underflow_anchor: false,
                reverse_mitigation: true,
                block_granular_poison: false,
            }
        );
        assert_eq!(
            *GiantSan::builder().build().options(),
            GiantSanOptions::default()
        );
    }

    #[test]
    fn recycled_blocks_are_unpoisoned_for_reuse() {
        let mut s = GiantSan::new(
            RuntimeConfig::small()
                .to_builder()
                .quarantine_cap(64)
                .build(),
        );
        let a = s.alloc(8, Region::Heap).unwrap();
        s.free(a.base).unwrap();
        // Pushing more frees evicts `a`; its shadow returns to unallocated,
        // then reallocation repoisons it as live.
        for _ in 0..4 {
            let x = s.alloc(64, Region::Heap).unwrap();
            s.free(x.base).unwrap();
        }
        let b = s.alloc(8, Region::Heap).unwrap();
        assert!(s.check_access(b.base, 8, AccessKind::Read).is_ok());
    }

    #[test]
    fn free_errors_are_reported() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        assert_eq!(s.free(a.base + 8).unwrap_err().kind, ErrorKind::InvalidFree);
        s.free(a.base).unwrap();
        assert_eq!(s.free(a.base).unwrap_err().kind, ErrorKind::DoubleFree);
        assert_eq!(s.counters().reports, 2);
    }

    #[test]
    fn locate_lower_bound_finds_object_base() {
        let mut s = san();
        for size in [8u64, 16, 24, 64, 100, 1000, 4096] {
            let a = s.alloc(size, Region::Heap).unwrap();
            // Anchor at the end of the *good-segment run*: a trailing
            // partial segment is not part of it.
            let good_end = a.base + size / 8 * 8;
            assert_eq!(
                s.locate_lower_bound(good_end),
                a.base,
                "size {size}: wrong lower bound"
            );
            // From an interior aligned point too.
            if size >= 16 {
                assert_eq!(s.locate_lower_bound(a.base + 8), a.base);
            }
        }
    }

    #[test]
    fn locate_lower_bound_stops_at_partial_tail() {
        // One past a k-partial segment, the run below the anchor is not all
        // good: the locator must not extend through it.
        let mut s = san();
        let a = s.alloc(100, Region::Heap).unwrap(); // 12 good + 4-partial
        let past_partial = a.base + 104;
        assert_eq!(s.locate_lower_bound(past_partial), past_partial);
    }

    #[test]
    fn locate_lower_bound_is_logarithmic() {
        let mut s = san();
        let n = 1u64 << 16;
        let a = s.alloc(n, Region::Heap).unwrap();
        s.counters_mut().reset();
        let low = s.locate_lower_bound(a.base + n);
        assert_eq!(low, a.base);
        assert!(
            s.counters().shadow_loads <= 2 * (n / 8).ilog2() as u64 + 4,
            "{} loads for a {}-byte run",
            s.counters().shadow_loads,
            n
        );
    }

    #[test]
    fn reverse_mitigation_caches_descending_accesses() {
        let mut s = GiantSan::builder()
            .config(RuntimeConfig::small())
            .reverse_mitigation(true)
            .build();
        let n: u64 = 4096;
        let a = s.alloc(n, Region::Heap).unwrap();
        let end = a.base + n;
        let mut slot = CacheSlot::new();
        for k in 1..=(n / 8) {
            s.cached_check(&mut slot, end, -(8 * k as i64), 8, AccessKind::Read)
                .unwrap();
        }
        // One underflow CI + one lower-bound location, then all hits.
        assert_eq!(s.counters().underflow_checks, 1);
        assert_eq!(s.counters().cache_hits, n / 8 - 1);
        assert_eq!(slot.lb, -(n as i64));
        // Descending past the object start is still reported.
        let err = s
            .cached_check(&mut slot, end, -(n as i64) - 8, 8, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::HeapBufferUnderflow);
    }

    #[test]
    fn reverse_mitigation_soundness_at_every_size() {
        for size in [8u64, 24, 100, 256, 1000] {
            let mut s = GiantSan::builder()
                .config(RuntimeConfig::small())
                .reverse_mitigation(true)
                .build();
            let a = s.alloc(size, Region::Heap).unwrap();
            // Reverse traversal of the whole-word prefix, anchored one past
            // the last full word (the `p = buf + n; *--p` idiom).
            let words = size / 8 * 8;
            let end = a.base + words;
            let mut slot = CacheSlot::new();
            for k in 1..=(words / 8 + 4) {
                let off = -(8 * k as i64);
                let r = s.cached_check(&mut slot, end, off, 8, AccessKind::Read);
                let valid = 8 * k <= words;
                assert_eq!(r.is_ok(), valid, "size={size} k={k}");
            }
        }
    }

    #[test]
    fn no_underflow_anchor_degrades_to_asan_mode() {
        // The first §5.4 alternative: a large negative offset that lands in
        // another live object bypasses the redzone, exactly like ASan.
        let mut s = GiantSan::builder()
            .config(RuntimeConfig::small())
            .underflow_anchor(false)
            .build();
        let victim = s.alloc(256, Region::Heap).unwrap();
        let a = s.alloc(64, Region::Heap).unwrap();
        let dist = (a.base - victim.base) as i64;
        let mut slot = CacheSlot::new();
        // Lands inside the victim: instruction-level check passes (the
        // accuracy cost the paper warns about)...
        assert!(s
            .cached_check(&mut slot, a.base, -dist + 8, 8, AccessKind::Read)
            .is_ok());
        // ...while the default anchored configuration reports it.
        let mut strict = san();
        let victim = strict.alloc(256, Region::Heap).unwrap();
        let a = strict.alloc(64, Region::Heap).unwrap();
        let dist = (a.base - victim.base) as i64;
        let mut slot = CacheSlot::new();
        assert!(strict
            .cached_check(&mut slot, a.base, -dist + 8, 8, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn counters_track_paths() {
        let mut s = san();
        let a = s.alloc(4096, Region::Heap).unwrap();
        s.check_region(a.base, a.base + 4096, AccessKind::Read)
            .unwrap();
        assert_eq!(s.counters().fast_checks, 1);
        assert_eq!(s.counters().shadow_loads, 1);
        // A region not starting at a fold boundary big enough: slow path.
        s.check_region(a.base + 8, a.base + 4096, AccessKind::Read)
            .unwrap();
        assert!(s.counters().slow_checks >= 1);
    }
}
