//! Linear-time shadow poisoning with the binary folding pattern (§4.1).
//!
//! An allocated object of `q` full segments is summarised by giving segment
//! `j` the folding degree `⌊log2(q − j)⌋`: one `(t)`-folded segment, then
//! runs of `2^i` consecutive `(i)`-folded segments down to a single
//! `(0)`-folded segment (Figure 5 of the paper). A trailing `size mod 8`
//! bytes become one *k*-partial segment.
//!
//! The writer fills the pattern run-by-run, touching each shadow byte exactly
//! once — the same linear cost as ASan's `memset`-style poisoning — through
//! the active [`giantsan_shadow::kernel`] backend's `write_folded_run`, so
//! alloc-heavy workloads benefit from vectorized shadow writes too.

use giantsan_shadow::{kernel, Addr, ShadowMemory, SEGMENT_SIZE};

use crate::encoding::{folded, partial};

/// Computes the folding degree of segment `j` out of `q` good segments:
/// `⌊log2(q − j)⌋`, capped at [`crate::encoding::MAX_DEGREE`].
///
/// The canonical definition lives in [`giantsan_shadow::codes::degree_at`]
/// (next to the codes it indexes and the kernels that write it); this is a
/// re-export for the checkers and validators in this crate.
///
/// # Panics
///
/// Panics if `j >= q`.
///
/// # Example
///
/// ```
/// use giantsan_core::poison::degree_at;
/// // Figure 5: an object with 8 full segments.
/// let degrees: Vec<u32> = (0..8).map(|j| degree_at(8, j)).collect();
/// assert_eq!(degrees, [3, 2, 2, 2, 2, 1, 1, 0]);
/// ```
pub use giantsan_shadow::codes::degree_at;

/// Poisons the shadow of an object's user region `[base, base + size)` with
/// the canonical folding pattern.
///
/// `base` must be segment aligned (the runtime guarantees it). Returns the
/// number of shadow bytes written, which the caller adds to its poisoning
/// counters.
///
/// # Panics
///
/// Panics if `base` is not segment aligned.
pub fn poison_object(shadow: &mut ShadowMemory, base: Addr, size: u64) -> u64 {
    assert!(base.is_segment_aligned(), "object base must be 8-aligned");
    if size == 0 {
        return 0;
    }
    let first = shadow.segment_of(base);
    let q = size / SEGMENT_SIZE;
    let rem = (size % SEGMENT_SIZE) as u32;
    let mut written = 0;

    if q > 0 {
        // The run decomposition (segment j has degree ⌊log2(q − j)⌋, so the
        // degree-d segments form one contiguous run) and the fill width both
        // live in the kernel backend now.
        kernel::active().write_folded_run(shadow.slice_mut(first, first + q));
        written += q;
    }
    if rem > 0 {
        shadow.set(first + q, partial(rem));
        written += 1;
    }
    written
}

/// Sets every segment overlapping `[start, start + len)` to `code`
/// (redzones, freed, unallocated). Returns shadow bytes written.
///
/// `start` and `len` must be segment aligned, which holds for all block and
/// redzone boundaries produced by the runtime.
///
/// # Panics
///
/// Panics if the range is not segment aligned.
pub fn poison_range(shadow: &mut ShadowMemory, start: Addr, len: u64, code: u8) -> u64 {
    assert!(start.is_segment_aligned() && len.is_multiple_of(SEGMENT_SIZE));
    if len == 0 {
        return 0;
    }
    let lo = shadow.segment_of(start);
    let hi = lo + len / SEGMENT_SIZE;
    shadow.set_range(lo, hi, code);
    hi - lo
}

/// Reference (quadratic) poisoner used by tests and benchmarks to validate
/// the run-based writer: computes each segment's degree independently.
pub fn poison_object_reference(shadow: &mut ShadowMemory, base: Addr, size: u64) -> u64 {
    assert!(base.is_segment_aligned());
    if size == 0 {
        return 0;
    }
    let first = shadow.segment_of(base);
    let q = size / SEGMENT_SIZE;
    let rem = (size % SEGMENT_SIZE) as u32;
    for j in 0..q {
        shadow.set(first + j, folded(degree_at(q, j)));
    }
    if rem > 0 {
        shadow.set(first + q, partial(rem));
    }
    q + u64::from(rem > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding;
    use giantsan_shadow::AddressSpace;

    fn fresh(segments: u64) -> (AddressSpace, ShadowMemory) {
        let space = AddressSpace::new(0x1_0000, segments * SEGMENT_SIZE);
        let shadow = ShadowMemory::new(&space, encoding::UNALLOCATED);
        (space, shadow)
    }

    #[test]
    fn figure_5_pattern() {
        // Object of 68 bytes: shadow (3)(2)(2)(2)(2)(1)(1)(0) 4-part.
        let (space, mut shadow) = fresh(32);
        let n = poison_object(&mut shadow, space.lo(), 68);
        assert_eq!(n, 9);
        let expect = [61, 62, 62, 62, 62, 63, 63, 64, 68];
        assert_eq!(shadow.slice(0, 9), &expect);
        assert_eq!(shadow.get(9), encoding::UNALLOCATED);
    }

    #[test]
    fn matches_reference_for_all_small_sizes() {
        for size in 1..=2048u64 {
            let (space, mut a) = fresh(512);
            let (_, mut b) = fresh(512);
            let wa = poison_object(&mut a, space.lo(), size);
            let wb = poison_object_reference(&mut b, space.lo(), size);
            assert_eq!(wa, wb, "written count for size {size}");
            assert_eq!(
                a.slice(0, 300),
                b.slice(0, 300),
                "pattern mismatch for size {size}"
            );
        }
    }

    #[test]
    fn tiny_objects() {
        let (space, mut shadow) = fresh(8);
        assert_eq!(poison_object(&mut shadow, space.lo(), 0), 0);
        poison_object(&mut shadow, space.lo(), 1);
        assert_eq!(shadow.get(0), partial(1));
        poison_object(&mut shadow, space.lo(), 8);
        assert_eq!(shadow.get(0), folded(0));
        poison_object(&mut shadow, space.lo(), 9);
        assert_eq!(shadow.get(0), folded(0));
        assert_eq!(shadow.get(1), partial(1));
    }

    #[test]
    fn power_of_two_counts() {
        // 2^i consecutive (i)-folded segments (paper §4.1).
        let (space, mut shadow) = fresh(64);
        poison_object(&mut shadow, space.lo(), 32 * 8);
        let mut counts = std::collections::HashMap::new();
        for s in 0..32 {
            *counts.entry(shadow.get(s)).or_insert(0u64) += 1;
        }
        assert_eq!(counts[&folded(5)], 1);
        assert_eq!(counts[&folded(4)], 16);
        assert_eq!(counts[&folded(3)], 8);
        assert_eq!(counts[&folded(2)], 4);
        assert_eq!(counts[&folded(1)], 2);
        assert_eq!(counts[&folded(0)], 1);
    }

    #[test]
    fn degree_claims_never_exceed_object() {
        // Soundness: the fold claimed by segment j must stay inside [j, q).
        for q in 1..=512u64 {
            for j in 0..q {
                let d = degree_at(q, j);
                assert!(j + (1 << d) <= q, "q={q} j={j} d={d} overclaims");
            }
        }
    }

    #[test]
    fn degree_claims_are_tight() {
        // ⌊log2⌋ claims more than half of the remaining run (the paper's
        // "> 50%" fast-check coverage argument).
        for q in 1..=512u64 {
            for j in 0..q {
                let d = degree_at(q, j);
                assert!(2u64 << d > q - j, "q={q} j={j} claim not tight");
            }
        }
    }

    #[test]
    fn poison_range_sets_codes() {
        let (space, mut shadow) = fresh(16);
        let n = poison_range(&mut shadow, space.lo() + 16, 32, encoding::FREED);
        assert_eq!(n, 4);
        assert_eq!(shadow.get(1), encoding::UNALLOCATED);
        assert_eq!(shadow.get(2), encoding::FREED);
        assert_eq!(shadow.get(5), encoding::FREED);
        assert_eq!(shadow.get(6), encoding::UNALLOCATED);
        assert_eq!(poison_range(&mut shadow, space.lo(), 0, encoding::FREED), 0);
    }

    #[test]
    fn monotone_within_object() {
        // Codes are non-decreasing across an object's segments: deeper folds
        // come first.
        let (space, mut shadow) = fresh(300);
        poison_object(&mut shadow, space.lo(), 2000);
        let segs = 2000 / 8;
        for s in 1..segs {
            assert!(shadow.get(s) >= shadow.get(s - 1));
        }
    }
}
