//! Linear-time shadow poisoning with the binary folding pattern (§4.1).
//!
//! An allocated object of `q` full segments is summarised by giving segment
//! `j` the folding degree `⌊log2(q − j)⌋`: one `(t)`-folded segment, then
//! runs of `2^i` consecutive `(i)`-folded segments down to a single
//! `(0)`-folded segment (Figure 5 of the paper). A trailing `size mod 8`
//! bytes become one *k*-partial segment.
//!
//! The writer fills the pattern run-by-run, touching each shadow byte exactly
//! once — the same linear cost as ASan's `memset`-style poisoning — through
//! the active [`giantsan_shadow::kernel`] backend's `write_folded_run`, so
//! alloc-heavy workloads benefit from vectorized shadow writes too.

use giantsan_shadow::{kernel, Addr, ShadowMemory, SEGMENT_SIZE};

use crate::encoding::{folded, partial};

/// Computes the folding degree of segment `j` out of `q` good segments:
/// `⌊log2(q − j)⌋`, capped at [`crate::encoding::MAX_DEGREE`].
///
/// The canonical definition lives in [`giantsan_shadow::codes::degree_at`]
/// (next to the codes it indexes and the kernels that write it); this is a
/// re-export for the checkers and validators in this crate.
///
/// # Panics
///
/// Panics if `j >= q`.
///
/// # Example
///
/// ```
/// use giantsan_core::poison::degree_at;
/// // Figure 5: an object with 8 full segments.
/// let degrees: Vec<u32> = (0..8).map(|j| degree_at(8, j)).collect();
/// assert_eq!(degrees, [3, 2, 2, 2, 2, 1, 1, 0]);
/// ```
pub use giantsan_shadow::codes::degree_at;

/// Poisons the shadow of an object's user region `[base, base + size)` with
/// the canonical folding pattern.
///
/// `base` must be segment aligned (the runtime guarantees it). Returns the
/// number of shadow bytes written, which the caller adds to its poisoning
/// counters.
///
/// # Panics
///
/// Panics if `base` is not segment aligned.
pub fn poison_object(shadow: &mut ShadowMemory, base: Addr, size: u64) -> u64 {
    assert!(base.is_segment_aligned(), "object base must be 8-aligned");
    if size == 0 {
        return 0;
    }
    let first = shadow.segment_of(base);
    let q = size / SEGMENT_SIZE;
    let rem = (size % SEGMENT_SIZE) as u32;
    let mut written = 0;

    if q > 0 {
        // The run decomposition (segment j has degree ⌊log2(q − j)⌋, so the
        // degree-d segments form one contiguous run) and the fill width both
        // live in the kernel backend now.
        kernel::active().write_folded_run(shadow.slice_mut(first, first + q));
        written += q;
    }
    if rem > 0 {
        shadow.set(first + q, partial(rem));
        written += 1;
    }
    written
}

/// Sets every segment overlapping `[start, start + len)` to `code`
/// (redzones, freed, unallocated). Returns shadow bytes written.
///
/// `start` and `len` must be segment aligned, which holds for all block and
/// redzone boundaries produced by the runtime.
///
/// # Panics
///
/// Panics if the range is not segment aligned.
pub fn poison_range(shadow: &mut ShadowMemory, start: Addr, len: u64, code: u8) -> u64 {
    assert!(start.is_segment_aligned() && len.is_multiple_of(SEGMENT_SIZE));
    if len == 0 {
        return 0;
    }
    let lo = shadow.segment_of(start);
    let hi = lo + len / SEGMENT_SIZE;
    shadow.set_range(lo, hi, code);
    hi - lo
}

/// Builds the shadow image of one size-class slot: left redzone, the folded
/// object pattern for a `size`-byte object, right redzone, and an
/// "unallocated" tail up to `slot_len`.
///
/// Every slot of a class-dedicated block that holds a `size`-byte object has
/// exactly this image, so a sanitizer can stamp a whole block with
/// [`ShadowMemory::tile_pattern`] instead of poisoning slot by slot. The
/// object segments are written through the same kernel `write_folded_run` as
/// [`poison_object`], so the tiled bytes are identical to per-object output.
///
/// All of `redzone`, `slot_len` must be segment aligned, and the slot must
/// hold the object plus both redzones.
///
/// # Panics
///
/// Panics on misaligned arguments or a slot too small for the layout.
pub fn class_slot_pattern(
    size: u64,
    redzone: u64,
    slot_len: u64,
    left_code: u8,
    right_code: u8,
    unallocated: u8,
) -> Vec<u8> {
    assert!(redzone.is_multiple_of(SEGMENT_SIZE) && slot_len.is_multiple_of(SEGMENT_SIZE));
    let user_len = (size.max(1)).div_ceil(SEGMENT_SIZE) * SEGMENT_SIZE;
    assert!(
        slot_len >= user_len + 2 * redzone,
        "slot {slot_len} cannot hold {size} bytes with {redzone}-byte redzones"
    );
    let rz = (redzone / SEGMENT_SIZE) as usize;
    let q = (size / SEGMENT_SIZE) as usize;
    let rem = (size % SEGMENT_SIZE) as u32;
    let mut pattern = vec![unallocated; (slot_len / SEGMENT_SIZE) as usize];
    kernel::active().fill(&mut pattern[..rz], left_code);
    if q > 0 {
        kernel::active().write_folded_run(&mut pattern[rz..rz + q]);
    }
    if rem > 0 {
        pattern[rz + q] = partial(rem);
    }
    // The right redzone covers the slack between the rounded object and the
    // right edge of the redzoned region, like the per-object writer.
    let right_lo = rz + (user_len / SEGMENT_SIZE) as usize;
    kernel::active().fill(&mut pattern[right_lo..right_lo + rz], right_code);
    pattern
}

/// Stamps `slots` repetitions of a [`class_slot_pattern`] over the block at
/// `block_start` — the single bulk write that replaces per-object poisoning
/// when a block is dedicated to a size class. Returns shadow bytes written.
///
/// # Panics
///
/// Panics if `block_start` is not segment aligned.
pub fn poison_class_block(
    shadow: &mut ShadowMemory,
    block_start: Addr,
    slots: u32,
    pattern: &[u8],
) -> u64 {
    assert!(block_start.is_segment_aligned());
    let lo = shadow.segment_of(block_start);
    let hi = lo + pattern.len() as u64 * u64::from(slots);
    shadow.tile_pattern(lo, hi, pattern);
    hi - lo
}

/// Reference (quadratic) poisoner used by tests and benchmarks to validate
/// the run-based writer: computes each segment's degree independently.
pub fn poison_object_reference(shadow: &mut ShadowMemory, base: Addr, size: u64) -> u64 {
    assert!(base.is_segment_aligned());
    if size == 0 {
        return 0;
    }
    let first = shadow.segment_of(base);
    let q = size / SEGMENT_SIZE;
    let rem = (size % SEGMENT_SIZE) as u32;
    for j in 0..q {
        shadow.set(first + j, folded(degree_at(q, j)));
    }
    if rem > 0 {
        shadow.set(first + q, partial(rem));
    }
    q + u64::from(rem > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding;
    use giantsan_shadow::AddressSpace;

    fn fresh(segments: u64) -> (AddressSpace, ShadowMemory) {
        let space = AddressSpace::new(0x1_0000, segments * SEGMENT_SIZE);
        let shadow = ShadowMemory::new(&space, encoding::UNALLOCATED);
        (space, shadow)
    }

    #[test]
    fn figure_5_pattern() {
        // Object of 68 bytes: shadow (3)(2)(2)(2)(2)(1)(1)(0) 4-part.
        let (space, mut shadow) = fresh(32);
        let n = poison_object(&mut shadow, space.lo(), 68);
        assert_eq!(n, 9);
        let expect = [61, 62, 62, 62, 62, 63, 63, 64, 68];
        assert_eq!(shadow.slice(0, 9), &expect);
        assert_eq!(shadow.get(9), encoding::UNALLOCATED);
    }

    #[test]
    fn matches_reference_for_all_small_sizes() {
        for size in 1..=2048u64 {
            let (space, mut a) = fresh(512);
            let (_, mut b) = fresh(512);
            let wa = poison_object(&mut a, space.lo(), size);
            let wb = poison_object_reference(&mut b, space.lo(), size);
            assert_eq!(wa, wb, "written count for size {size}");
            assert_eq!(
                a.slice(0, 300),
                b.slice(0, 300),
                "pattern mismatch for size {size}"
            );
        }
    }

    #[test]
    fn tiny_objects() {
        let (space, mut shadow) = fresh(8);
        assert_eq!(poison_object(&mut shadow, space.lo(), 0), 0);
        poison_object(&mut shadow, space.lo(), 1);
        assert_eq!(shadow.get(0), partial(1));
        poison_object(&mut shadow, space.lo(), 8);
        assert_eq!(shadow.get(0), folded(0));
        poison_object(&mut shadow, space.lo(), 9);
        assert_eq!(shadow.get(0), folded(0));
        assert_eq!(shadow.get(1), partial(1));
    }

    #[test]
    fn power_of_two_counts() {
        // 2^i consecutive (i)-folded segments (paper §4.1).
        let (space, mut shadow) = fresh(64);
        poison_object(&mut shadow, space.lo(), 32 * 8);
        let mut counts = std::collections::HashMap::new();
        for s in 0..32 {
            *counts.entry(shadow.get(s)).or_insert(0u64) += 1;
        }
        assert_eq!(counts[&folded(5)], 1);
        assert_eq!(counts[&folded(4)], 16);
        assert_eq!(counts[&folded(3)], 8);
        assert_eq!(counts[&folded(2)], 4);
        assert_eq!(counts[&folded(1)], 2);
        assert_eq!(counts[&folded(0)], 1);
    }

    #[test]
    fn degree_claims_never_exceed_object() {
        // Soundness: the fold claimed by segment j must stay inside [j, q).
        for q in 1..=512u64 {
            for j in 0..q {
                let d = degree_at(q, j);
                assert!(j + (1 << d) <= q, "q={q} j={j} d={d} overclaims");
            }
        }
    }

    #[test]
    fn degree_claims_are_tight() {
        // ⌊log2⌋ claims more than half of the remaining run (the paper's
        // "> 50%" fast-check coverage argument).
        for q in 1..=512u64 {
            for j in 0..q {
                let d = degree_at(q, j);
                assert!(2u64 << d > q - j, "q={q} j={j} claim not tight");
            }
        }
    }

    #[test]
    fn poison_range_sets_codes() {
        let (space, mut shadow) = fresh(16);
        let n = poison_range(&mut shadow, space.lo() + 16, 32, encoding::FREED);
        assert_eq!(n, 4);
        assert_eq!(shadow.get(1), encoding::UNALLOCATED);
        assert_eq!(shadow.get(2), encoding::FREED);
        assert_eq!(shadow.get(5), encoding::FREED);
        assert_eq!(shadow.get(6), encoding::UNALLOCATED);
        assert_eq!(poison_range(&mut shadow, space.lo(), 0, encoding::FREED), 0);
    }

    #[test]
    fn class_pattern_matches_per_object_writes() {
        // Stamp a block of 4 slots in one call, poison the same layout
        // object-by-object in a twin shadow, and require identical bytes.
        let slot_len = 128u64;
        let size = 68u64;
        let rz = 16u64;
        for size in [1, 8, 68, slot_len - 2 * rz, size] {
            let (space, mut bulk) = fresh(256);
            let (_, mut manual) = fresh(256);
            let pattern = class_slot_pattern(
                size,
                rz,
                slot_len,
                encoding::HEAP_LEFT_REDZONE,
                encoding::HEAP_RIGHT_REDZONE,
                encoding::UNALLOCATED,
            );
            let written = poison_class_block(&mut bulk, space.lo(), 4, &pattern);
            assert_eq!(written, 4 * slot_len / 8);
            for slot in 0..4u64 {
                let block = space.lo() + slot * slot_len;
                let user_len = size.div_ceil(8) * 8;
                poison_range(&mut manual, block, rz, encoding::HEAP_LEFT_REDZONE);
                poison_object(&mut manual, block + rz, size);
                poison_range(
                    &mut manual,
                    block + rz + user_len,
                    rz,
                    encoding::HEAP_RIGHT_REDZONE,
                );
            }
            assert_eq!(
                bulk.slice(0, 4 * slot_len / 8),
                manual.slice(0, 4 * slot_len / 8),
                "bulk/per-object divergence for size {size}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn class_pattern_rejects_overfull_slot() {
        let _ = class_slot_pattern(
            200,
            16,
            128,
            encoding::HEAP_LEFT_REDZONE,
            encoding::HEAP_RIGHT_REDZONE,
            encoding::UNALLOCATED,
        );
    }

    #[test]
    fn monotone_within_object() {
        // Codes are non-decreasing across an object's segments: deeper folds
        // come first.
        let (space, mut shadow) = fresh(300);
        poison_object(&mut shadow, space.lo(), 2000);
        let segs = 2000 / 8;
        for s in 1..segs {
            assert!(shadow.get(s) >= shadow.get(s - 1));
        }
    }
}
