//! Whole-shadow consistency validation against the ground-truth object
//! table.
//!
//! A production sanitizer ships an internal self-check for its metadata
//! (ASan's `__asan_validate…`-style debug hooks); this is GiantSan's — and
//! it matters *more* here than for flat encodings: a folded prefix
//! summarises whole runs, so checks served by the summary never consult the
//! summarised segments, and corruption there is invisible to the fast path.
//! Shadow integrity rests on the runtime being the shadow's only writer;
//! this validator audits exactly that. Concretely: every
//! live object must carry the canonical folding pattern, its redzones the
//! right region codes, quarantined blocks the freed code, and nothing else
//! may be marked addressable. Tests and failure-injection use it to prove
//! the runtime never lets the shadow drift from the allocator state.

use giantsan_runtime::{ObjectState, Region, Sanitizer};
use giantsan_shadow::{align_up, Addr, SEGMENT_SIZE};

use crate::encoding;
use crate::poison::degree_at;
use crate::GiantSan;

/// A detected divergence between shadow and allocator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowInconsistency {
    /// Address of the offending segment.
    pub addr: Addr,
    /// Shadow code found.
    pub found: u8,
    /// Shadow code the invariants require.
    pub expected: u8,
    /// What the segment belongs to.
    pub context: String,
}

impl std::fmt::Display for ShadowInconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shadow at {} is {:#x}, expected {:#x} ({})",
            self.addr, self.found, self.expected, self.context
        )
    }
}

/// Validates the entire shadow of `san` against its object table.
///
/// Returns every inconsistency found (empty = consistent). Checked
/// invariants:
///
/// 1. every live object's user region carries the canonical folding pattern
///    (`degree(j) = ⌊log2(q − j)⌋`) plus its trailing partial code;
/// 2. every live object's redzones carry the region's redzone codes;
/// 3. every quarantined block is wholly poisoned with the freed code.
pub fn validate_shadow(san: &GiantSan) -> Vec<ShadowInconsistency> {
    let mut out = Vec::new();
    let shadow = san.shadow();
    let mut check = |addr: Addr, expected: u8, context: &str| {
        let found = shadow
            .try_segment_of(addr)
            .map(|s| shadow.get(s))
            .unwrap_or(encoding::UNALLOCATED);
        if found != expected {
            out.push(ShadowInconsistency {
                addr,
                found,
                expected,
                context: context.to_string(),
            });
        }
    };

    let objects = san.world().objects();
    for obj in objects.iter_live() {
        let q = obj.size / SEGMENT_SIZE;
        let rem = (obj.size % SEGMENT_SIZE) as u32;
        for j in 0..q {
            check(
                obj.base + j * SEGMENT_SIZE,
                encoding::folded(degree_at(q, j)),
                &format!("{} segment {j} of live {}", obj.id, obj.region),
            );
        }
        if rem > 0 {
            check(
                obj.base + q * SEGMENT_SIZE,
                encoding::partial(rem),
                &format!("{} partial tail", obj.id),
            );
        }
        // Redzones.
        let (left_code, right_code) = match obj.region {
            Region::Heap => (encoding::HEAP_LEFT_REDZONE, encoding::HEAP_RIGHT_REDZONE),
            Region::Stack => (encoding::STACK_REDZONE, encoding::STACK_REDZONE),
            Region::Global => (encoding::GLOBAL_REDZONE, encoding::GLOBAL_REDZONE),
        };
        let mut a = obj.block_start;
        while a < obj.base {
            check(a, left_code, &format!("{} left redzone", obj.id));
            a += SEGMENT_SIZE;
        }
        let user_len = align_up(obj.size.max(1), SEGMENT_SIZE);
        let mut a = obj.base + user_len;
        let block_end = obj.block_start + obj.block_len;
        while a < block_end {
            check(a, right_code, &format!("{} right redzone", obj.id));
            a += SEGMENT_SIZE;
        }
    }

    // Quarantined blocks stay wholly freed-poisoned. (Heap only: dead stack
    // slots are unpoisoned to "unallocated" when their frame pops.)
    for obj in objects_in_state(san, ObjectState::Quarantined) {
        if obj.region != Region::Heap {
            continue;
        }
        let mut a = obj.block_start;
        while a < obj.block_start + obj.block_len {
            check(a, encoding::FREED, &format!("{} quarantined", obj.id));
            a += SEGMENT_SIZE;
        }
    }
    out
}

fn objects_in_state(
    san: &GiantSan,
    state: ObjectState,
) -> Vec<giantsan_runtime::ObjectInfo> {
    // The table exposes live iteration; dead objects are reachable through
    // dead_block_containing probes. For validation purposes we scan the
    // whole id space, which the table supports via `get`.
    let mut out = Vec::new();
    let total = san.world().objects().total_count();
    for id in 0..total as u64 {
        if let Some(o) = san.world().objects().get(giantsan_runtime::ObjectId(id)) {
            if o.state == state {
                out.push(o.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_runtime::{AccessKind, Region, RuntimeConfig};

    #[test]
    fn fresh_world_is_consistent_through_churn() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let mut live = Vec::new();
        for round in 0..300u64 {
            if let Ok(a) = san.alloc(1 + (round * 13) % 500, Region::Heap) {
                live.push(a);
            }
            if live.len() > 8 {
                let victim = live.remove((round % 5) as usize);
                san.free(victim.base).unwrap();
            }
            if round % 50 == 0 {
                let issues = validate_shadow(&san);
                assert!(issues.is_empty(), "round {round}: {}", issues[0]);
            }
        }
        assert!(validate_shadow(&san).is_empty());
    }

    #[test]
    fn stack_and_globals_validate() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        san.push_frame();
        let _s = san.alloc(40, Region::Stack).unwrap();
        let _g = san.alloc(100, Region::Global).unwrap();
        assert!(validate_shadow(&san).is_empty());
        san.pop_frame();
        assert!(validate_shadow(&san).is_empty());
    }

    #[test]
    fn injected_corruption_is_found_by_the_validator() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(256, Region::Heap).unwrap();
        assert!(validate_shadow(&san).is_empty());
        // Corrupt one shadow byte in the middle of the object (simulating a
        // runtime bug or a stray write into shadow).
        let corrupted = encoding::FREED;
        san.corrupt_shadow_for_testing(a.base + 64, corrupted);
        let issues = validate_shadow(&san);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].found, corrupted);
        assert_eq!(issues[0].addr, a.base + 64);
        // A property unique to summary-based encodings: the *prefix fold*
        // still claims the whole object, so a whole-object fast check is
        // masked — which is exactly why the validator exists. Checks that
        // actually consult the corrupted segment do fail.
        assert!(san
            .check_region(a.base, a.base + 256, AccessKind::Read)
            .is_ok());
        assert!(san
            .check_region(a.base + 64, a.base + 72, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn corrupting_the_summary_byte_fails_closed() {
        // The base segment carries the fold the fast check trusts:
        // corrupting *it* breaks every region check through it.
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(256, Region::Heap).unwrap();
        san.corrupt_shadow_for_testing(a.base, encoding::UNALLOCATED);
        assert_eq!(validate_shadow(&san).len(), 1);
        assert!(san
            .check_region(a.base, a.base + 256, AccessKind::Read)
            .is_err());
    }
}
