//! Whole-shadow consistency validation against the ground-truth object
//! table.
//!
//! A production sanitizer ships an internal self-check for its metadata
//! (ASan's `__asan_validate…`-style debug hooks); this is GiantSan's — and
//! it matters *more* here than for flat encodings: a folded prefix
//! summarises whole runs, so checks served by the summary never consult the
//! summarised segments, and corruption there is invisible to the fast path.
//! Shadow integrity rests on the runtime being the shadow's only writer;
//! this validator audits exactly that. Concretely: every
//! live object must carry the canonical folding pattern, its redzones the
//! right region codes, quarantined blocks the freed code, and nothing else
//! may be marked addressable. Tests and failure-injection use it to prove
//! the runtime never lets the shadow drift from the allocator state.

use giantsan_runtime::{ObjectState, Region, Sanitizer};
use giantsan_shadow::{align_up, Addr, ShadowMemory, SEGMENT_SIZE};

use crate::encoding;
use crate::poison::degree_at;
use crate::GiantSan;

/// A detected divergence between shadow and allocator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowInconsistency {
    /// Address of the offending segment.
    pub addr: Addr,
    /// Shadow code found.
    pub found: u8,
    /// Shadow code the invariants require.
    pub expected: u8,
    /// What the segment belongs to.
    pub context: String,
}

impl std::fmt::Display for ShadowInconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shadow at {} is {:#x}, expected {:#x} ({})",
            self.addr, self.found, self.expected, self.context
        )
    }
}

/// Validates the entire shadow of `san` against its object table.
///
/// Returns every inconsistency found (empty = consistent). Checked
/// invariants:
///
/// 1. every live object's user region carries the canonical folding pattern
///    (`degree(j) = ⌊log2(q − j)⌋`) plus its trailing partial code;
/// 2. every live object's redzones carry the region's redzone codes;
/// 3. every quarantined block is wholly poisoned with the freed code.
pub fn validate_shadow(san: &GiantSan) -> Vec<ShadowInconsistency> {
    let mut out = Vec::new();
    let shadow = san.shadow();

    let objects = san.world().objects();
    for obj in objects.iter_live() {
        let q = obj.size / SEGMENT_SIZE;
        let rem = (obj.size % SEGMENT_SIZE) as u32;
        // The folding pattern `degree(j) = ⌊log2(q − j)⌋` is piecewise
        // constant: the degree-d run covers `q − j ∈ [2^d, 2^{d+1})`, so
        // each run is scanned word-wide as one uniform expected code.
        let mut j = 0;
        while j < q {
            let d = degree_at(q, j);
            let run_end = (q + 1 - (1u64 << d)).min(q);
            scan_expected(
                shadow,
                &mut out,
                obj.base + j * SEGMENT_SIZE,
                run_end - j,
                encoding::folded(d),
                |k| format!("{} segment {} of live {}", obj.id, j + k, obj.region),
            );
            j = run_end;
        }
        if rem > 0 {
            scan_expected(
                shadow,
                &mut out,
                obj.base + q * SEGMENT_SIZE,
                1,
                encoding::partial(rem),
                |_| format!("{} partial tail", obj.id),
            );
        }
        // Redzones: uniform runs on both sides of the user region.
        let (left_code, right_code) = match obj.region {
            Region::Heap => (encoding::HEAP_LEFT_REDZONE, encoding::HEAP_RIGHT_REDZONE),
            Region::Stack => (encoding::STACK_REDZONE, encoding::STACK_REDZONE),
            Region::Global => (encoding::GLOBAL_REDZONE, encoding::GLOBAL_REDZONE),
        };
        scan_expected(
            shadow,
            &mut out,
            obj.block_start,
            (obj.base - obj.block_start) / SEGMENT_SIZE,
            left_code,
            |_| format!("{} left redzone", obj.id),
        );
        let user_len = align_up(obj.size.max(1), SEGMENT_SIZE);
        let right_start = obj.base + user_len;
        let block_end = obj.block_start + obj.block_len;
        scan_expected(
            shadow,
            &mut out,
            right_start,
            (block_end - right_start) / SEGMENT_SIZE,
            right_code,
            |_| format!("{} right redzone", obj.id),
        );
    }

    // Quarantined blocks stay wholly freed-poisoned. (Heap only: dead stack
    // slots are unpoisoned to "unallocated" when their frame pops.)
    for obj in objects_in_state(san, ObjectState::Quarantined) {
        if obj.region != Region::Heap {
            continue;
        }
        scan_expected(
            shadow,
            &mut out,
            obj.block_start,
            obj.block_len / SEGMENT_SIZE,
            encoding::FREED,
            |_| format!("{} quarantined", obj.id),
        );
    }
    out
}

/// Verifies that the `segs` segments starting at `start` all carry
/// `expected`, recording one [`ShadowInconsistency`] per divergent segment.
///
/// Scans word-wide via [`ShadowMemory::first_ne`] and only falls back to
/// per-segment work at actual mismatches, so the consistent case — the one
/// every churn test runs thousands of times — costs one eighth the loads of
/// the old per-segment closure. Segments past the mapped shadow read as the
/// fill byte, matching the old `try_segment_of` fallback.
fn scan_expected(
    shadow: &ShadowMemory,
    out: &mut Vec<ShadowInconsistency>,
    start: Addr,
    segs: u64,
    expected: u8,
    mut context: impl FnMut(u64) -> String,
) {
    let lo = shadow.segment_of(start);
    let mut from = lo;
    while let Some(bad) = shadow.first_ne(from, lo + segs, expected) {
        let j = bad - lo;
        out.push(ShadowInconsistency {
            addr: start + j * SEGMENT_SIZE,
            found: shadow.get(bad),
            expected,
            context: context(j),
        });
        from = bad + 1;
    }
}

fn objects_in_state(san: &GiantSan, state: ObjectState) -> Vec<giantsan_runtime::ObjectInfo> {
    // The table exposes live iteration; dead objects are reachable through
    // dead_block_containing probes. For validation purposes we scan the
    // whole id space, which the table supports via `get`.
    let mut out = Vec::new();
    let total = san.world().objects().total_count();
    for id in 0..total as u64 {
        if let Some(o) = san.world().objects().get(giantsan_runtime::ObjectId(id)) {
            if o.state == state {
                out.push(o.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_runtime::{AccessKind, Region, RuntimeConfig};

    #[test]
    fn fresh_world_is_consistent_through_churn() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let mut live = Vec::new();
        for round in 0..300u64 {
            if let Ok(a) = san.alloc(1 + (round * 13) % 500, Region::Heap) {
                live.push(a);
            }
            if live.len() > 8 {
                let victim = live.remove((round % 5) as usize);
                san.free(victim.base).unwrap();
            }
            if round % 50 == 0 {
                let issues = validate_shadow(&san);
                assert!(issues.is_empty(), "round {round}: {}", issues[0]);
            }
        }
        assert!(validate_shadow(&san).is_empty());
    }

    #[test]
    fn stack_and_globals_validate() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        san.push_frame();
        let _s = san.alloc(40, Region::Stack).unwrap();
        let _g = san.alloc(100, Region::Global).unwrap();
        assert!(validate_shadow(&san).is_empty());
        san.pop_frame();
        assert!(validate_shadow(&san).is_empty());
    }

    #[test]
    fn injected_corruption_is_found_by_the_validator() {
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(256, Region::Heap).unwrap();
        assert!(validate_shadow(&san).is_empty());
        // Corrupt one shadow byte in the middle of the object (simulating a
        // runtime bug or a stray write into shadow).
        let corrupted = encoding::FREED;
        san.corrupt_shadow_for_testing(a.base + 64, corrupted);
        let issues = validate_shadow(&san);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].found, corrupted);
        assert_eq!(issues[0].addr, a.base + 64);
        // A property unique to summary-based encodings: the *prefix fold*
        // still claims the whole object, so a whole-object fast check is
        // masked — which is exactly why the validator exists. Checks that
        // actually consult the corrupted segment do fail.
        assert!(san
            .check_region(a.base, a.base + 256, AccessKind::Read)
            .is_ok());
        assert!(san
            .check_region(a.base + 64, a.base + 72, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn corrupting_the_summary_byte_fails_closed() {
        // The base segment carries the fold the fast check trusts:
        // corrupting *it* breaks every region check through it.
        let mut san = GiantSan::new(RuntimeConfig::small());
        let a = san.alloc(256, Region::Heap).unwrap();
        san.corrupt_shadow_for_testing(a.base, encoding::UNALLOCATED);
        assert_eq!(validate_shadow(&san).len(), 1);
        assert!(san
            .check_region(a.base, a.base + 256, AccessKind::Read)
            .is_err());
    }
}
