//! O(1) region checking with folded segments (paper §4.2, Algorithm 1).
//!
//! A region `[L, R)` is safe iff every segment except possibly the last is
//! "good" and the first `R mod 8` bytes of the last segment are addressable.
//! Because any `N` consecutive good segments are the union of two
//! `⌊log2 N⌋`-folded segments (Figure 6), the check needs at most three
//! shadow loads regardless of `N`:
//!
//! 1. **fast check** — the prefix folded segment at `m[L/8]` alone covers the
//!    region (the common case: folds cover > 50 % of any safe run);
//! 2. **slow check** — otherwise validate that the prefix covers at least
//!    half, that a suffix folded segment of the same degree ends at the last
//!    segment boundary, and that the trailing partial segment has enough
//!    addressable bytes.

use giantsan_shadow::{Addr, ShadowMemory, SEGMENT_SIZE};

use crate::encoding::{addressable_bytes, exposed_bytes, exposes_prefix, GOOD};

/// Where and why a region check failed: the shadow code observed and the
/// first address it implicates. The sanitizer maps this to an
/// [`giantsan_runtime::ErrorReport`] via [`crate::classify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadSpot {
    /// Address at which the violation is reported.
    pub addr: Addr,
    /// Shadow code that triggered the report.
    pub code: u8,
}

/// Which path admitted the region (drives the Figure 10 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPath {
    /// The single-load fast check sufficed.
    Fast,
    /// The slow check (up to three loads) ran.
    Slow,
}

/// Outcome of a region check: path taken plus shadow loads performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// Path that decided the verdict.
    pub path: CheckPath,
    /// Number of shadow bytes loaded.
    pub loads: u32,
}

impl CheckOutcome {
    fn fast(loads: u32) -> Self {
        CheckOutcome {
            path: CheckPath::Fast,
            loads,
        }
    }

    fn slow(loads: u32) -> Self {
        CheckOutcome {
            path: CheckPath::Slow,
            loads,
        }
    }
}

/// Algorithm 1: checks the segment-aligned region `[l, r)` in O(1).
///
/// `l` must be segment aligned (the paper's precondition, guaranteed by the
/// 8-byte alignment strategy when anchoring at object bases). `r` is
/// arbitrary.
///
/// # Errors
///
/// Returns the offending [`BadSpot`] if any byte of `[l, r)` may be
/// non-addressable.
///
/// # Panics
///
/// Panics in debug builds if `l` is unaligned or `r < l`.
pub fn check_region_aligned(
    shadow: &ShadowMemory,
    l: Addr,
    r: Addr,
) -> Result<CheckOutcome, (BadSpot, CheckOutcome)> {
    debug_assert!(l.is_segment_aligned(), "CI precondition: L ≡ 0 (mod 8)");
    debug_assert!(l <= r);
    let len = r - l;
    if len == 0 {
        return Ok(CheckOutcome::fast(0));
    }
    // Line 1: v = m[L/8]; line 2: u = (v ≤ 64) << (67 − v).
    let v = load(shadow, l);
    let u = addressable_bytes(v);
    // Line 3 (fast check): the prefix fold covers the whole region.
    if u >= len {
        return Ok(CheckOutcome::fast(1));
    }
    let mut loads = 1;
    if len >= SEGMENT_SIZE {
        // Line 5: the prefix must cover at least half of the region.
        if 2 * u < len {
            let spot = BadSpot {
                addr: l.offset(u as i64),
                code: v,
            };
            return Err((spot, CheckOutcome::slow(loads)));
        }
        // Line 8: a suffix folded segment of the same degree must end at the
        // last segment boundary of the region.
        let suffix = Addr::new(align_down_u(r.raw() - u));
        loads += 1;
        let sv = load(shadow, suffix);
        if sv != v {
            let spot = BadSpot {
                addr: suffix,
                code: sv,
            };
            return Err((spot, CheckOutcome::slow(loads)));
        }
    }
    // Line 12: the trailing partial segment must expose ≥ R mod 8 bytes.
    let tail_bytes = (r.raw() & (SEGMENT_SIZE - 1)) as u8;
    if tail_bytes != 0 {
        loads += 1;
        let last = Addr::new(align_down_u(r.raw() - 1));
        let tv = load(shadow, last);
        if !exposes_prefix(tv, tail_bytes) {
            let spot = BadSpot {
                addr: last,
                code: tv,
            };
            return Err((spot, CheckOutcome::slow(loads)));
        }
    }
    Ok(CheckOutcome::slow(loads))
}

/// General region check for possibly-unaligned `l`: one extra load validates
/// the leading partial segment, then Algorithm 1 takes over — still O(1).
///
/// Used for underflow checks like `CI(y + 4j, y)` (Figure 9 line 10), whose
/// left edge is not anchored at an object base.
///
/// # Errors
///
/// Returns the offending [`BadSpot`] if any byte of `[l, r)` may be
/// non-addressable.
pub fn check_region(
    shadow: &ShadowMemory,
    l: Addr,
    r: Addr,
) -> Result<CheckOutcome, (BadSpot, CheckOutcome)> {
    debug_assert!(l <= r);
    if l.is_segment_aligned() {
        return check_region_aligned(shadow, l, r);
    }
    if l == r {
        return Ok(CheckOutcome::fast(0));
    }
    // Leading unaligned fragment: bytes [l, seg_end) of l's segment. The
    // addressable bytes of a segment always form a prefix, so the fragment is
    // safe iff the segment exposes at least (fragment end − segment base)
    // bytes.
    let seg_base = Addr::new(align_down_u(l.raw()));
    let seg_end = seg_base + SEGMENT_SIZE;
    let upto = r.min(seg_end);
    let needed = (upto - seg_base) as u8;
    let v = load(shadow, l);
    // Folded segments expose all 8 bytes; k-partial segments expose k.
    // `v ≤ 72 − needed` covers both by monotonicity.
    if !exposes_prefix(v, needed) {
        let spot = BadSpot { addr: l, code: v };
        return Err((spot, CheckOutcome::slow(1)));
    }
    if upto == r {
        return Ok(CheckOutcome::fast(1));
    }
    match check_region_aligned(shadow, seg_end, r) {
        Ok(o) => Ok(CheckOutcome {
            path: o.path,
            loads: o.loads + 1,
        }),
        Err((spot, o)) => Err((
            spot,
            CheckOutcome {
                path: o.path,
                loads: o.loads + 1,
            },
        )),
    }
}

/// Checks a small instruction-level access of `width ≤ 8` bytes at `addr`
/// with a single load when the access stays within one segment.
///
/// # Errors
///
/// Returns the offending [`BadSpot`] if the access may touch a
/// non-addressable byte.
pub fn check_small(
    shadow: &ShadowMemory,
    addr: Addr,
    width: u32,
) -> Result<CheckOutcome, (BadSpot, CheckOutcome)> {
    debug_assert!(width <= 8);
    let off = addr.segment_offset();
    if off + width as u64 <= SEGMENT_SIZE {
        let needed = (off + width as u64) as u8;
        let v = load(shadow, addr);
        if !exposes_prefix(v, needed) {
            let spot = BadSpot { addr, code: v };
            return Err((spot, CheckOutcome::fast(1)));
        }
        Ok(CheckOutcome::fast(1))
    } else {
        check_region(shadow, addr, addr.offset(width as i64))
    }
}

/// Linear walk over `[l, r)` reporting the first non-addressable byte.
///
/// This is the blame scan the sanitizer runs after the O(1) check fails (to
/// pin the exact offending byte) and the oracle the property tests compare
/// the O(1) checkers against. It is word-wide: one leading-segment probe,
/// then a `u64`-chunked [`ShadowMemory::first_ge`] sweep for the first
/// segment that is not fully exposed — eight segments per step instead of a
/// shadow load per segment. Byte-identical to
/// [`check_region_bytewise_reference`] (enforced by differential tests).
pub fn check_region_bytewise(shadow: &ShadowMemory, l: Addr, r: Addr) -> Result<(), BadSpot> {
    if l >= r {
        return Ok(());
    }
    if shadow.try_segment_of(l).is_none() && l < shadow.segment_base(0) {
        // Below the shadowed space: segment indexes would underflow, and the
        // region starts unallocated anyway. The reference walk handles it.
        return check_region_bytewise_reference(shadow, l, r);
    }
    // Leading segment: its addressable bytes form a prefix, so `[l, r)` is
    // covered up to `min(r, segment base + exposed)`.
    let v = load(shadow, l);
    let exposed = exposed_bytes(v);
    if l.segment_offset() >= exposed {
        return Err(BadSpot { addr: l, code: v });
    }
    let seg_base = Addr::new(align_down_u(l.raw()));
    let covered = r.min(seg_base + exposed);
    if covered < r && covered.segment() == seg_base.segment() {
        return Err(BadSpot {
            addr: covered,
            code: v,
        });
    }
    let a = seg_base + SEGMENT_SIZE;
    if a >= r {
        return Ok(());
    }
    // Interior segments `[a, align_down(r-1))` must all be fully exposed
    // (code <= GOOD): scan word-wide for the first that is not. The final
    // segment only needs `r mod 8` bytes, so it is checked separately.
    let lo = shadow.segment_of(a);
    let last = shadow.segment_of(Addr::new(align_down_u(r.raw() - 1)));
    if let Some(bad) = shadow.first_ge(lo, last, GOOD + 1) {
        let code = shadow.get(bad);
        // The exposed prefix of the offending segment ends strictly inside
        // it; the byte right after is the first bad one.
        return Err(BadSpot {
            addr: shadow.segment_base(bad) + exposed_bytes(code),
            code,
        });
    }
    let tail_code = shadow.get(last);
    let tail_exposed = exposed_bytes(tail_code);
    if tail_exposed < r - shadow.segment_base(last) {
        return Err(BadSpot {
            addr: shadow.segment_base(last) + tail_exposed,
            code: tail_code,
        });
    }
    Ok(())
}

/// Byte-at-a-time reference for [`check_region_bytewise`]: the pre-scanner
/// implementation, kept as the differential-testing baseline and as the
/// "before" side of the hot-path benchmarks.
pub fn check_region_bytewise_reference(
    shadow: &ShadowMemory,
    l: Addr,
    r: Addr,
) -> Result<(), BadSpot> {
    let mut a = l;
    while a < r {
        let v = load(shadow, a);
        let exposed = exposed_bytes(v);
        let off = a.segment_offset();
        if off >= exposed {
            return Err(BadSpot { addr: a, code: v });
        }
        // Skip to the end of the exposed prefix or the region end.
        let seg_base = Addr::new(align_down_u(a.raw()));
        a = r.min(seg_base + exposed);
        if a < r && a.segment() == seg_base.segment() {
            // Exposed prefix ends inside the segment: the next byte is bad.
            return Err(BadSpot { addr: a, code: v });
        }
    }
    Ok(())
}

#[inline]
fn load(shadow: &ShadowMemory, addr: Addr) -> u8 {
    match shadow.try_segment_of(addr) {
        Some(seg) => shadow.get(seg),
        None => shadow.fill_byte(),
    }
}

#[inline]
const fn align_down_u(v: u64) -> u64 {
    v & !(SEGMENT_SIZE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{self, UNALLOCATED};
    use crate::poison::{poison_object, poison_range};
    use giantsan_shadow::AddressSpace;

    /// Builds a shadow with one object of `size` bytes at offset 64, with
    /// 16-byte redzones around it.
    fn world(size: u64) -> (Addr, ShadowMemory) {
        let space = AddressSpace::new(0x1_0000, 1 << 16);
        let mut shadow = ShadowMemory::new(&space, UNALLOCATED);
        let base = space.lo() + 64;
        poison_range(&mut shadow, base - 16, 16, encoding::HEAP_LEFT_REDZONE);
        poison_object(&mut shadow, base, size);
        let rz_start = base + giantsan_shadow::align_up(size, 8);
        poison_range(&mut shadow, rz_start, 16, encoding::HEAP_RIGHT_REDZONE);
        (base, shadow)
    }

    #[test]
    fn whole_object_check_is_fast_and_constant() {
        for size in [8u64, 64, 1024, 65536 / 4] {
            let (base, shadow) = world(size);
            let out = check_region_aligned(&shadow, base, base.offset(size as i64)).unwrap();
            assert!(out.loads <= 3, "size {size}: {} loads", out.loads);
        }
    }

    #[test]
    fn one_kilobyte_region_needs_one_load_not_128() {
        // The paper's motivating example (§1): ASan loads 128 shadow bytes
        // for a 1 KiB region; a folded prefix answers in one.
        let (base, shadow) = world(1024);
        let out = check_region_aligned(&shadow, base, base + 1024).unwrap();
        assert_eq!(out.path, CheckPath::Fast);
        assert_eq!(out.loads, 1);
    }

    #[test]
    fn overflow_detected_at_every_size() {
        for size in [1u64, 7, 8, 12, 100, 1000, 4096] {
            let (base, shadow) = world(size);
            // One byte past the end must fail.
            let r = base.offset(size as i64 + 1);
            assert!(
                check_region_aligned(&shadow, base, r).is_err(),
                "size {size} overflow missed"
            );
            // The exact size must pass.
            assert!(
                check_region_aligned(&shadow, base, base.offset(size as i64)).is_ok(),
                "size {size} false positive"
            );
        }
    }

    #[test]
    fn interior_regions_pass() {
        let (base, shadow) = world(256);
        for (lo, hi) in [(0i64, 1), (8, 16), (40, 200), (248, 256), (0, 255)] {
            assert!(
                check_region(&shadow, base.offset(lo), base.offset(hi)).is_ok(),
                "[{lo},{hi}) rejected"
            );
        }
    }

    #[test]
    fn unaligned_left_edge() {
        let (base, shadow) = world(64);
        assert!(check_region(&shadow, base.offset(3), base.offset(64)).is_ok());
        assert!(check_region(&shadow, base.offset(3), base.offset(65)).is_err());
        assert!(check_region(&shadow, base.offset(61), base.offset(64)).is_ok());
        assert!(check_region(&shadow, base.offset(-3), base.offset(4)).is_err());
        // Zero-length unaligned region is trivially fine.
        assert!(check_region(&shadow, base.offset(3), base.offset(3)).is_ok());
    }

    #[test]
    fn unaligned_within_partial_segment() {
        // Object of 13 bytes: one good segment + 5-partial.
        let (base, shadow) = world(13);
        assert!(check_region(&shadow, base.offset(9), base.offset(13)).is_ok());
        assert!(check_region(&shadow, base.offset(9), base.offset(14)).is_err());
        assert!(check_region(&shadow, base.offset(12), base.offset(13)).is_ok());
        assert!(check_region(&shadow, base.offset(13), base.offset(14)).is_err());
    }

    #[test]
    fn matches_bytewise_oracle_exhaustively() {
        // Every (size, lo, hi) on a small object: O(1) verdict == oracle.
        for size in 1..=96u64 {
            let (base, shadow) = world(size);
            for lo in 0..=(size + 24) {
                for hi in lo..=(size + 24) {
                    let l = base.offset(lo as i64 - 8);
                    let r = base.offset(hi as i64 - 8);
                    let fast = check_region(&shadow, l, r).is_ok();
                    let oracle = check_region_bytewise(&shadow, l, r).is_ok();
                    assert_eq!(
                        fast,
                        oracle,
                        "size={size} region=[{}, {}) disagree",
                        lo as i64 - 8,
                        hi as i64 - 8
                    );
                }
            }
        }
    }

    #[test]
    fn small_access_checks() {
        let (base, shadow) = world(16);
        assert!(check_small(&shadow, base, 8).is_ok());
        assert!(check_small(&shadow, base.offset(8), 8).is_ok());
        assert!(check_small(&shadow, base.offset(12), 4).is_ok());
        assert!(check_small(&shadow, base.offset(13), 4).is_err());
        assert!(check_small(&shadow, base.offset(16), 1).is_err());
        // Straddling access within the object.
        assert!(check_small(&shadow, base.offset(6), 4).is_ok());
    }

    #[test]
    fn freed_region_reported_with_freed_code() {
        let (base, mut shadow) = world(64);
        poison_range(&mut shadow, base, 64, encoding::FREED);
        let (spot, _) = check_region_aligned(&shadow, base, base + 8).unwrap_err();
        assert_eq!(spot.code, encoding::FREED);
        assert_eq!(spot.addr.segment(), base.segment());
    }

    #[test]
    fn wild_addresses_fail_as_unallocated() {
        let (_, shadow) = world(64);
        let wild = Addr::new(0x10);
        let (spot, _) = check_region(&shadow, wild, wild + 8).unwrap_err();
        assert_eq!(spot.code, UNALLOCATED);
    }

    #[test]
    fn fast_check_covers_majority_of_prefix_regions() {
        // For regions starting at the object base, the fold at the base
        // covers > 50% of the object, so more than half the possible region
        // lengths take the fast path (the paper's coverage argument).
        let (base, shadow) = world(4096);
        let mut fast = 0;
        let total = 4096 / 8;
        for segs in 1..=total {
            let out = check_region_aligned(&shadow, base, base + segs * 8).unwrap();
            if out.path == CheckPath::Fast {
                fast += 1;
            }
        }
        assert!(fast * 2 > total, "fast {fast}/{total}");
    }

    #[test]
    fn suffix_mismatch_detects_holes() {
        // Two objects adjacent modulo redzones: a region spanning the gap
        // must fail even though both ends are addressable.
        let space = AddressSpace::new(0x1_0000, 1 << 14);
        let mut shadow = ShadowMemory::new(&space, UNALLOCATED);
        let a = space.lo();
        poison_object(&mut shadow, a, 64);
        poison_range(&mut shadow, a + 64, 16, encoding::HEAP_RIGHT_REDZONE);
        poison_object(&mut shadow, a + 80, 64);
        assert!(check_region_aligned(&shadow, a, a + 144).is_err());
        assert!(check_region_aligned(&shadow, a, a + 64).is_ok());
        assert!(check_region_aligned(&shadow, a + 80, a + 144).is_ok());
    }

    #[test]
    fn zero_length_region_is_free() {
        let (base, shadow) = world(8);
        let out = check_region_aligned(&shadow, base, base).unwrap();
        assert_eq!(out.loads, 0);
    }

    #[test]
    fn scan_walk_is_byte_identical_to_reference() {
        // The word-wide blame scan must return the exact same Result —
        // including the BadSpot address and code — as the byte-at-a-time
        // reference, across sizes, offsets, freed runs, and wild pointers.
        for size in 1..=96u64 {
            let (base, shadow) = world(size);
            for lo in 0..=(size + 24) {
                for hi in lo..=(size + 24) {
                    let l = base.offset(lo as i64 - 8);
                    let r = base.offset(hi as i64 - 8);
                    assert_eq!(
                        check_region_bytewise(&shadow, l, r),
                        check_region_bytewise_reference(&shadow, l, r),
                        "size={size} region=[{}, {})",
                        lo as i64 - 8,
                        hi as i64 - 8
                    );
                }
            }
        }
        // Freed interior: blame lands on the first freed segment.
        let (base, mut shadow) = world(128);
        poison_range(&mut shadow, base + 40, 24, encoding::FREED);
        for (lo, hi) in [(0i64, 128), (0, 48), (40, 64), (32, 41), (63, 64)] {
            assert_eq!(
                check_region_bytewise(&shadow, base.offset(lo), base.offset(hi)),
                check_region_bytewise_reference(&shadow, base.offset(lo), base.offset(hi)),
                "freed [{lo},{hi})"
            );
        }
        // Wild-low pointer delegates to the reference path.
        let wild = Addr::new(0x10);
        assert_eq!(
            check_region_bytewise(&shadow, wild, wild + 64),
            check_region_bytewise_reference(&shadow, wild, wild + 64),
        );
        // Region running past the shadowed space (fill tail).
        let past = base.offset(1 << 17);
        assert_eq!(
            check_region_bytewise(&shadow, base, past),
            check_region_bytewise_reference(&shadow, base, past),
        );
    }
}
