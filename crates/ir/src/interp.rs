//! The mini-IR interpreter.
//!
//! Executes a [`Program`] against a [`Sanitizer`]'s world, performing *real*
//! data loads and stores in the simulated address space and running the
//! checks prescribed by a [`CheckPlan`]. The [`RecoveryPolicy`] on
//! [`ExecConfig`] decides what a report does: [`RecoveryPolicy::Continue`]
//! (the paper's SPEC configuration) records every report and keeps going,
//! [`RecoveryPolicy::Halt`] stops at the first one, and
//! [`RecoveryPolicy::Recover`] deduplicates reports per site, rate-limits
//! them per kind, and *contains* each faulting access — the access is
//! skipped and the tool's [`Sanitizer::contain`] hook heals its metadata —
//! so execution continues on a sound state. Unmapped accesses behave like
//! hardware faults and abort the run for every tool, native included.
//!
//! [`run`] is generic over the sanitizer: calling it with a concrete tool
//! monomorphizes the whole interpreter loop around that tool's check
//! methods, so the per-access fast path inlines instead of going through a
//! vtable. [`run_dyn`] pins the `dyn Sanitizer` instantiation for call
//! sites that hold boxed tools and for dispatch-cost benchmarks.
//!
//! [`run_with`] additionally threads a [`Recorder`] through the loop. Every
//! emission site is guarded by `if R::ENABLED`, so [`run`] — which delegates
//! with [`NoopRecorder`] — monomorphizes to exactly the untraced
//! interpreter: telemetry is zero-cost unless a [`TraceRecorder`] is passed.
//! Events are classified from the sanitizer's own counter deltas (the tool
//! needs no telemetry hooks beyond the read-only
//! [`Sanitizer::shadow_probe`]), so traced and untraced runs execute
//! byte-identically.
//!
//! [`TraceRecorder`]: giantsan_telemetry::TraceRecorder

use giantsan_runtime::{
    AccessKind, Admission, CacheSlot, Counters, ErrorReport, RecoveryPolicy, RecoveryState, Region,
    Sanitizer,
};
use giantsan_shadow::Addr;
use giantsan_telemetry::{
    CheckPathKind, EventKind, NoopRecorder, Recorder, LOOP_FINAL_SITE, PRE_CHECK_SITE,
};

use crate::expr::Expr;
use crate::plan::{CheckPlan, SiteAction};
use crate::program::{Program, Stmt};

/// Interpreter limits and error policy.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Abort after this many executed statements (runaway-loop backstop).
    pub max_steps: u64,
    /// What a raised report does: halt, record-and-continue (the paper's
    /// configuration, the default), or recover with dedup + containment.
    pub recovery: RecoveryPolicy,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 200_000_000,
            recovery: RecoveryPolicy::Continue,
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Termination {
    /// Ran to completion.
    Finished,
    /// Stopped at the first report (only with [`RecoveryPolicy::Halt`]).
    Halted,
    /// Hardware-fault analogue: an access left the simulated address space.
    Crashed {
        /// Human-readable fault description.
        reason: String,
    },
    /// Exceeded [`ExecConfig::max_steps`].
    StepLimit,
}

/// The observable outcome of one run.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Error reports raised by the sanitizer, in order.
    pub reports: Vec<ErrorReport>,
    /// How the run ended.
    pub termination: Termination,
    /// XOR-rotate digest of every loaded value: identical across sanitizers
    /// for the same program and inputs (checked by differential tests).
    pub checksum: u64,
    /// Executed statement count.
    pub steps: u64,
    /// Abstract units of real memory work (accesses + memop segments); the
    /// denominator of the analytic overhead model.
    pub native_work: u64,
}

impl ExecResult {
    /// `true` if the run produced at least one report or crashed — the
    /// "detected" predicate of the detection studies (Tables 3–5).
    pub fn detected(&self) -> bool {
        !self.reports.is_empty() || matches!(self.termination, Termination::Crashed { .. })
    }

    /// FNV-1a digest of every deterministic field: checksum, steps, native
    /// work, termination, and the rendered reports.
    ///
    /// Two runs with equal digests behaved identically as far as the
    /// interpreter can observe; the batch engine's determinism checks
    /// compare these instead of whole results.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&self.checksum.to_le_bytes());
        eat(&self.steps.to_le_bytes());
        eat(&self.native_work.to_le_bytes());
        match &self.termination {
            Termination::Finished => eat(b"finished"),
            Termination::Halted => eat(b"halted"),
            Termination::Crashed { reason } => {
                eat(b"crashed:");
                eat(reason.as_bytes());
            }
            Termination::StepLimit => eat(b"step-limit"),
        }
        for r in &self.reports {
            eat(r.to_string().as_bytes());
        }
        h
    }
}

/// Runs `program` with `inputs` under `san`, instrumented per `plan`.
///
/// # Example
///
/// ```
/// use giantsan_ir::{CheckPlan, ExecConfig, ProgramBuilder, run, Expr};
/// use giantsan_runtime::{NullSanitizer, RuntimeConfig};
///
/// let mut b = ProgramBuilder::new("sum");
/// let buf = b.alloc_heap(80);
/// b.for_loop(0i64, 10i64, |b, i| {
///     b.store(buf, Expr::var(i) * 8, 8, Expr::var(i));
/// });
/// let prog = b.build();
///
/// let mut native = NullSanitizer::new(RuntimeConfig::small());
/// let plan = CheckPlan::none(&prog);
/// let result = run(&prog, &[], &mut native, &plan, &ExecConfig::default());
/// assert!(!result.detected());
/// assert_eq!(result.native_work, 10);
/// ```
pub fn run<S: Sanitizer + ?Sized>(
    program: &Program,
    inputs: &[i64],
    san: &mut S,
    plan: &CheckPlan,
    config: &ExecConfig,
) -> ExecResult {
    run_with(program, inputs, san, plan, config, &mut NoopRecorder)
}

/// [`run`] with a telemetry [`Recorder`] attached.
///
/// With [`NoopRecorder`] (what [`run`] passes) every `if R::ENABLED` guard
/// is a compile-time `false` and this is exactly the untraced interpreter.
/// With an enabled recorder the loop additionally emits a structured
/// [`EventKind`] per check (site, path classified from counter deltas,
/// shadow loads, region size, observed folded code), per quasi-bound
/// refresh, per allocator operation (with poisoning spans), per report or
/// containment, and one end-of-run summary. Tracing never changes execution:
/// the recorder only observes counters the sanitizer already maintains.
pub fn run_with<S: Sanitizer + ?Sized, R: Recorder>(
    program: &Program,
    inputs: &[i64],
    san: &mut S,
    plan: &CheckPlan,
    config: &ExecConfig,
    rec: &mut R,
) -> ExecResult {
    debug_assert_eq!(plan.sites.len(), program.num_sites as usize);
    let mut interp = Interp {
        san,
        plan,
        inputs,
        config,
        rec,
        vars: vec![0; program.num_vars as usize],
        ptrs: vec![0; program.num_ptrs as usize],
        slots: vec![CacheSlot::new(); plan.num_caches as usize],
        recovery: RecoveryState::new(),
        result: ExecResult {
            reports: Vec::new(),
            termination: Termination::Finished,
            checksum: 0,
            steps: 0,
            native_work: 0,
        },
    };
    match interp.exec_block(&program.stmts) {
        Ok(()) => {}
        Err(stop) => interp.result.termination = stop,
    }
    if R::ENABLED {
        interp.rec.record(EventKind::Run {
            steps: interp.result.steps,
            native_work: interp.result.native_work,
            reports: interp.result.reports.len() as u64,
        });
    }
    interp.result
}

/// Dynamic-dispatch entry point: [`run`] instantiated at `dyn Sanitizer`.
///
/// Kept as an explicit shim so call sites that hold a boxed tool (and the
/// dispatch-cost benchmarks) have a stable, guaranteed-virtual path to
/// compare against the monomorphized one.
pub fn run_dyn(
    program: &Program,
    inputs: &[i64],
    san: &mut dyn Sanitizer,
    plan: &CheckPlan,
    config: &ExecConfig,
) -> ExecResult {
    run(program, inputs, san, plan, config)
}

struct Interp<'a, S: Sanitizer + ?Sized, R: Recorder> {
    san: &'a mut S,
    plan: &'a CheckPlan,
    inputs: &'a [i64],
    config: &'a ExecConfig,
    rec: &'a mut R,
    vars: Vec<i64>,
    ptrs: Vec<u64>,
    slots: Vec<CacheSlot>,
    recovery: RecoveryState,
    result: ExecResult,
}

/// Classifies the path one check took from the counter delta it left.
///
/// Precedence mirrors the paths' cost ordering: a cache refresh implies a
/// real check underneath it, an anchored slow path may also bump the
/// underflow counter, so the most specific counter wins.
fn classify_path(before: &Counters, after: &Counters) -> CheckPathKind {
    if after.cache_hits > before.cache_hits {
        CheckPathKind::CacheHit
    } else if after.cache_updates > before.cache_updates {
        CheckPathKind::CacheUpdate
    } else if after.slow_checks > before.slow_checks {
        CheckPathKind::Slow
    } else if after.underflow_checks > before.underflow_checks {
        CheckPathKind::Underflow
    } else if after.arith_checks > before.arith_checks {
        CheckPathKind::Arith
    } else if after.fast_checks > before.fast_checks {
        CheckPathKind::Fast
    } else {
        CheckPathKind::Skipped
    }
}

impl<S: Sanitizer + ?Sized, R: Recorder> Interp<'_, S, R> {
    fn eval(&self, e: &Expr) -> i64 {
        e.eval(&self.vars, self.inputs)
    }

    /// Snapshot of the tool's counters, taken only when tracing.
    #[inline]
    fn counters_snapshot(&self) -> Counters {
        if R::ENABLED {
            *self.san.counters()
        } else {
            Counters::default()
        }
    }

    /// Emits one `Check` event classified against the `before` snapshot.
    #[inline]
    fn record_check(
        &mut self,
        site: u32,
        before: &Counters,
        kind: AccessKind,
        region: u64,
        probe: Addr,
    ) {
        let after = *self.san.counters();
        self.rec.record(EventKind::Check {
            site,
            path: classify_path(before, &after),
            write: kind == AccessKind::Write,
            loads: after.shadow_loads.saturating_sub(before.shadow_loads) as u32,
            region,
            code: self.san.shadow_probe(probe),
        });
    }

    #[inline]
    fn step(&mut self) -> Result<(), Termination> {
        self.result.steps += 1;
        if self.result.steps > self.config.max_steps {
            return Err(Termination::StepLimit);
        }
        // Cooperative cancellation: a cell running under an armed batch-
        // engine deadline is aborted here (by the watchdog's distinguished
        // panic) instead of wedging its worker for the rest of the budget.
        if self
            .result
            .steps
            .is_multiple_of(crate::watchdog::POLL_INTERVAL)
        {
            crate::watchdog::poll();
        }
        Ok(())
    }

    /// Handles a raised report per the recovery policy.
    ///
    /// Returns `Ok(true)` when the faulting access must be *contained*
    /// (skipped) rather than performed — only under
    /// [`RecoveryPolicy::Recover`], where the tool's
    /// [`Sanitizer::contain`] hook has already been given a chance to heal
    /// its metadata. `Ok(false)` is the historical record-and-continue path.
    fn note_report(&mut self, report: ErrorReport) -> Result<bool, Termination> {
        match self.recovery.admit(&self.config.recovery, &report) {
            Admission::Halt => {
                if R::ENABLED {
                    self.rec.record(EventKind::Report { site: report.site });
                }
                self.result.reports.push(report);
                Err(Termination::Halted)
            }
            Admission::Record => {
                let contain = self.config.recovery.contains_faults();
                if contain {
                    self.san.counters_mut().errors_recovered += 1;
                    self.san.contain(&report);
                }
                if R::ENABLED {
                    self.rec.record(EventKind::Report { site: report.site });
                    if contain {
                        self.rec.record(EventKind::Contained {
                            site: report.site,
                            suppressed: false,
                        });
                    }
                }
                self.result.reports.push(report);
                Ok(contain)
            }
            Admission::Suppress => {
                self.san.counters_mut().errors_suppressed += 1;
                self.san.contain(&report);
                if R::ENABLED {
                    self.rec.record(EventKind::Contained {
                        site: report.site,
                        suppressed: true,
                    });
                }
                Ok(true)
            }
        }
    }

    fn crash(&self, what: &str, addr: Addr) -> Termination {
        Termination::Crashed {
            reason: format!("{what} fault at {addr}"),
        }
    }

    /// Runs the planned check for an ordinary access site.
    ///
    /// Returns whether the real access should be performed: `false` only
    /// when a failed check was contained under [`RecoveryPolicy::Recover`].
    #[inline]
    fn check_site(
        &mut self,
        site: crate::program::SiteId,
        base: Addr,
        offset: i64,
        width: u8,
        kind: AccessKind,
    ) -> Result<bool, Termination> {
        let before = self.counters_snapshot();
        // (cache index, pre-check bound) for the quasi-bound refresh event.
        let mut cached_pre: Option<(usize, u64)> = None;
        let mut region = width as u64;
        let verdict = match self.plan.action(site) {
            SiteAction::Skip => {
                region = 0;
                Ok(())
            }
            SiteAction::Direct => self
                .san
                .check_access(base.offset(offset), width as u32, kind),
            SiteAction::Anchored => {
                if R::ENABLED {
                    // Anchored checks cover base..access end (both directions).
                    let lo = base.min(base.offset(offset));
                    let hi = base.max(base.offset(offset + width as i64));
                    region = hi.raw().saturating_sub(lo.raw());
                }
                self.san.check_anchored(
                    base,
                    base.offset(offset),
                    base.offset(offset + width as i64),
                    kind,
                )
            }
            SiteAction::Region { lo, hi } => {
                // The planner already folded any anchoring into `lo`, so a
                // plain region check keeps non-anchored tools honest.
                let lo = self.eval(lo);
                let hi = self.eval(hi);
                if R::ENABLED {
                    region = (hi.max(lo) - lo) as u64;
                }
                self.san
                    .check_region(base.offset(lo), base.offset(hi.max(lo)), kind)
            }
            SiteAction::Cached { cache } => {
                let idx = cache.0 as usize;
                if R::ENABLED {
                    cached_pre = Some((idx, self.slots[idx].ub));
                }
                let slot = &mut self.slots[idx];
                self.san
                    .cached_check(slot, base, offset, width as u32, kind)
            }
        };
        if R::ENABLED {
            self.record_check(site.0, &before, kind, region, base.offset(offset));
            if let Some((idx, old_ub)) = cached_pre {
                let slot = self.slots[idx];
                if slot.ub != old_ub {
                    self.rec.record(EventKind::QuasiBound {
                        site: site.0,
                        old_ub,
                        new_ub: slot.ub,
                        step: slot.updates,
                    });
                }
            }
        }
        match verdict {
            Ok(()) => Ok(true),
            Err(r) => Ok(!self.note_report(r.with_site(site.0))?),
        }
    }

    /// Runs a (possibly skipped) region check for a memory intrinsic.
    ///
    /// Returns whether the memop's real data movement should be performed
    /// (see [`Interp::check_site`]).
    #[inline]
    fn check_memop(
        &mut self,
        site: crate::program::SiteId,
        lo: Addr,
        hi: Addr,
        kind: AccessKind,
    ) -> Result<bool, Termination> {
        let before = self.counters_snapshot();
        let verdict = match self.plan.action(site) {
            SiteAction::Skip => Ok(()),
            _ => self.san.check_region(lo, hi, kind),
        };
        if R::ENABLED {
            let region = hi.raw().saturating_sub(lo.raw());
            self.record_check(site.0, &before, kind, region, lo);
        }
        match verdict {
            Ok(()) => Ok(true),
            Err(r) => Ok(!self.note_report(r.with_site(site.0))?),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<(), Termination> {
        for stmt in stmts {
            self.exec(stmt)?;
        }
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<(), Termination> {
        self.step()?;
        match stmt {
            Stmt::Let { var, expr } => {
                self.vars[var.0 as usize] = self.eval(expr);
            }
            Stmt::Alloc { ptr, size, region } => {
                let size = self.eval(size).max(0) as u64;
                let stores_before = self.counters_snapshot().shadow_stores;
                match self.san.alloc(size, *region) {
                    Ok(a) => {
                        self.ptrs[ptr.0 as usize] = a.base.raw();
                        if R::ENABLED {
                            self.rec.record(EventKind::Alloc {
                                size,
                                stack: *region == Region::Stack,
                                poison: self
                                    .san
                                    .counters()
                                    .shadow_stores
                                    .saturating_sub(stores_before),
                                placement: a.placement.map(|p| {
                                    giantsan_telemetry::AllocPlacement {
                                        block: p.block,
                                        line: p.line,
                                        class: p.class,
                                    }
                                }),
                            });
                        }
                    }
                    Err(e) => {
                        return Err(Termination::Crashed {
                            reason: format!("allocation failure: {e}"),
                        })
                    }
                }
            }
            Stmt::Free { ptr, offset } => {
                let off = self.eval(offset);
                let addr = Addr::new(self.ptrs[ptr.0 as usize]).offset(off);
                let stores_before = self.counters_snapshot().shadow_stores;
                if let Err(r) = self.san.free(addr) {
                    // A rejected free performed no deallocation; there is
                    // nothing further to contain.
                    self.note_report(r)?;
                } else if R::ENABLED {
                    self.rec.record(EventKind::Free {
                        poison: self
                            .san
                            .counters()
                            .shadow_stores
                            .saturating_sub(stores_before),
                    });
                }
            }
            Stmt::Realloc { ptr, new_size } => {
                let size = self.eval(new_size).max(0) as u64;
                let addr = Addr::new(self.ptrs[ptr.0 as usize]);
                let stores_before = self.counters_snapshot().shadow_stores;
                match self.san.realloc(addr, size) {
                    Ok(a) => {
                        self.ptrs[ptr.0 as usize] = a.base.raw();
                        if R::ENABLED {
                            self.rec.record(EventKind::Realloc {
                                new_size: size,
                                poison: self
                                    .san
                                    .counters()
                                    .shadow_stores
                                    .saturating_sub(stores_before),
                            });
                        }
                    }
                    Err(r) => {
                        self.note_report(r)?;
                    }
                }
            }
            Stmt::Load {
                site,
                ptr,
                offset,
                width,
                dst,
            } => {
                let off = self.eval(offset);
                let base = Addr::new(self.ptrs[ptr.0 as usize]);
                if !self.check_site(*site, base, off, *width, AccessKind::Read)? {
                    // Contained: the load is skipped and yields a safe zero.
                    if let Some(d) = dst {
                        self.vars[d.0 as usize] = 0;
                    }
                    return Ok(());
                }
                let addr = base.offset(off);
                self.result.native_work += 1;
                match self.san.world().space().read_uint(addr, *width as u32) {
                    Ok(v) => {
                        self.result.checksum = self.result.checksum.rotate_left(1) ^ v;
                        if let Some(d) = dst {
                            self.vars[d.0 as usize] = v as i64;
                        }
                    }
                    Err(_) => return Err(self.crash("load", addr)),
                }
            }
            Stmt::Store {
                site,
                ptr,
                offset,
                width,
                value,
            } => {
                let off = self.eval(offset);
                let val = self.eval(value);
                let base = Addr::new(self.ptrs[ptr.0 as usize]);
                if !self.check_site(*site, base, off, *width, AccessKind::Write)? {
                    return Ok(()); // contained: the store never lands
                }
                let addr = base.offset(off);
                self.result.native_work += 1;
                if self
                    .san
                    .world_mut()
                    .space_mut()
                    .write_uint(addr, val as u64, *width as u32)
                    .is_err()
                {
                    return Err(self.crash("store", addr));
                }
            }
            Stmt::MemSet {
                site,
                ptr,
                offset,
                len,
                value,
            } => {
                let off = self.eval(offset);
                let len = self.eval(len).max(0) as u64;
                let val = self.eval(value) as u8;
                let base = Addr::new(self.ptrs[ptr.0 as usize]);
                let lo = base.offset(off);
                let hi = lo.offset(len as i64);
                if !self.check_memop(*site, lo, hi, AccessKind::Write)? {
                    return Ok(());
                }
                self.result.native_work += len / 8 + 1;
                if len > 0 && self.san.world_mut().space_mut().fill(lo, val, len).is_err() {
                    return Err(self.crash("memset", lo));
                }
            }
            Stmt::StrCpy {
                site,
                dst,
                dst_offset,
                src,
                src_offset,
            } => {
                let doff = self.eval(dst_offset);
                let soff = self.eval(src_offset);
                let dbase = Addr::new(self.ptrs[dst.0 as usize]);
                let sbase = Addr::new(self.ptrs[src.0 as usize]);
                let slo = sbase.offset(soff);
                let dlo = dbase.offset(doff);
                // The libc scan: find the NUL. Reading an unterminated
                // string off the end of the space is a fault.
                let mut len = 1u64; // include the NUL
                loop {
                    match self
                        .san
                        .world()
                        .space()
                        .read_uint(slo.offset(len as i64 - 1), 1)
                    {
                        Ok(0) => break,
                        Ok(_) => len += 1,
                        Err(_) => return Err(self.crash("strcpy scan", slo)),
                    }
                }
                // The guardian checks both regions before the copy.
                let src_ok =
                    self.check_memop(*site, slo, slo.offset(len as i64), AccessKind::Read)?;
                let dst_ok =
                    self.check_memop(*site, dlo, dlo.offset(len as i64), AccessKind::Write)?;
                if !(src_ok && dst_ok) {
                    return Ok(());
                }
                self.result.native_work += len / 8 + 1;
                if self
                    .san
                    .world_mut()
                    .space_mut()
                    .copy(dlo, slo, len)
                    .is_err()
                {
                    return Err(self.crash("strcpy", dlo));
                }
            }
            Stmt::MemCpy {
                site,
                dst,
                dst_offset,
                src,
                src_offset,
                len,
            } => {
                let doff = self.eval(dst_offset);
                let soff = self.eval(src_offset);
                let len = self.eval(len).max(0) as u64;
                let dbase = Addr::new(self.ptrs[dst.0 as usize]);
                let sbase = Addr::new(self.ptrs[src.0 as usize]);
                let dlo = dbase.offset(doff);
                let slo = sbase.offset(soff);
                let src_ok =
                    self.check_memop(*site, slo, slo.offset(len as i64), AccessKind::Read)?;
                let dst_ok =
                    self.check_memop(*site, dlo, dlo.offset(len as i64), AccessKind::Write)?;
                if !(src_ok && dst_ok) {
                    return Ok(());
                }
                self.result.native_work += len / 8 + 1;
                if len > 0
                    && self
                        .san
                        .world_mut()
                        .space_mut()
                        .copy(dlo, slo, len)
                        .is_err()
                {
                    return Err(self.crash("memcpy", dlo));
                }
            }
            Stmt::For {
                id,
                var,
                lo,
                hi,
                reverse,
                body,
                ..
            } => {
                let lo = self.eval(lo);
                let hi = self.eval(hi);
                // Loop pre-header: promoted region checks (guarded by a
                // non-zero trip count, as a real compiler guards hoisted
                // checks) and cache resets.
                let loop_plan = self.plan.loops.get(id).cloned();
                if let Some(ref lp) = loop_plan {
                    if hi > lo {
                        for pre in &lp.pre_checks {
                            let plo = self.eval(&pre.lo);
                            let phi = self.eval(&pre.hi);
                            let base = Addr::new(self.ptrs[pre.ptr.0 as usize]);
                            let before = self.counters_snapshot();
                            let verdict = self.san.check_region(
                                base.offset(plo),
                                base.offset(phi.max(plo)),
                                pre.kind,
                            );
                            if R::ENABLED {
                                let region = (phi.max(plo) - plo) as u64;
                                self.record_check(
                                    PRE_CHECK_SITE,
                                    &before,
                                    pre.kind,
                                    region,
                                    base.offset(plo),
                                );
                            }
                            if let Err(r) = verdict {
                                self.note_report(r)?;
                            }
                        }
                    }
                    for (cache, _) in &lp.caches {
                        self.slots[cache.0 as usize] = CacheSlot::new();
                    }
                }
                if hi > lo {
                    if *reverse {
                        let mut i = hi - 1;
                        while i >= lo {
                            self.vars[var.0 as usize] = i;
                            self.exec_block(body)?;
                            i -= 1;
                        }
                    } else {
                        for i in lo..hi {
                            self.vars[var.0 as usize] = i;
                            self.exec_block(body)?;
                        }
                    }
                }
                // Loop exit: finalise caches (Figure 9 line 14).
                if let Some(ref lp) = loop_plan {
                    for (cache, ptr) in &lp.caches {
                        let slot = self.slots[cache.0 as usize];
                        let base = Addr::new(self.ptrs[ptr.0 as usize]);
                        let before = self.counters_snapshot();
                        let verdict = self.san.loop_final_check(&slot, base, AccessKind::Read);
                        if R::ENABLED {
                            self.record_check(
                                LOOP_FINAL_SITE,
                                &before,
                                AccessKind::Read,
                                slot.ub,
                                base,
                            );
                        }
                        if let Err(r) = verdict {
                            self.note_report(r)?;
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond) != 0 {
                    self.exec_block(then_body)?;
                } else {
                    self.exec_block(else_body)?;
                }
            }
            Stmt::Frame { body } => {
                self.san.push_frame();
                let r = self.exec_block(body);
                self.san.pop_frame();
                r?;
            }
            Stmt::PtrCopy { dst, src, offset } => {
                let off = self.eval(offset);
                self.ptrs[dst.0 as usize] = Addr::new(self.ptrs[src.0 as usize]).offset(off).raw();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckPlan, ProgramBuilder};
    use giantsan_runtime::{NullSanitizer, RuntimeConfig};

    fn native() -> NullSanitizer {
        NullSanitizer::new(RuntimeConfig::small())
    }

    #[test]
    fn arithmetic_and_memory_round_trip() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(64);
        b.store(p, 0i64, 8, 0xdeadi64);
        let v = b.load(p, 0i64, 8);
        let q = b.alloc_heap(8);
        b.store(q, 0i64, 8, Expr::var(v) + 1);
        let w = b.load(q, 0i64, 8);
        let out = b.alloc_heap(8);
        b.store(out, 0i64, 8, Expr::var(w));
        let prog = b.build();
        let mut san = native();
        let plan = CheckPlan::all_direct(&prog);
        let r = run(&prog, &[], &mut san, &plan, &ExecConfig::default());
        assert_eq!(r.termination, Termination::Finished);
        // checksum folds 0xdead then 0xdeae.
        assert_ne!(r.checksum, 0);
        assert_eq!(
            san.world()
                .space()
                .read_u64(san.world().objects().iter_live().last().unwrap().base)
                .unwrap(),
            0xdeae
        );
    }

    #[test]
    fn loops_forward_and_reverse() {
        for reverse in [false, true] {
            let mut b = ProgramBuilder::new("t");
            let p = b.alloc_heap(80);
            if reverse {
                b.for_loop_rev(0i64, 10i64, |b, i| {
                    b.store(p, Expr::var(i) * 8, 8, Expr::var(i));
                });
            } else {
                b.for_loop(0i64, 10i64, |b, i| {
                    b.store(p, Expr::var(i) * 8, 8, Expr::var(i));
                });
            }
            let prog = b.build();
            let mut san = native();
            let plan = CheckPlan::none(&prog);
            let r = run(&prog, &[], &mut san, &plan, &ExecConfig::default());
            assert_eq!(r.native_work, 10);
            let base = san.world().objects().iter_live().next().unwrap().base;
            for i in 0..10u64 {
                assert_eq!(san.world().space().read_u64(base + i * 8).unwrap(), i);
            }
        }
    }

    #[test]
    fn empty_and_negative_ranges_skip() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        b.for_loop(5i64, 5i64, |b, i| b.store(p, Expr::var(i), 8, 0i64));
        b.for_loop(5i64, 2i64, |b, i| b.store(p, Expr::var(i), 8, 0i64));
        let prog = b.build();
        let mut san = native();
        let r = run(
            &prog,
            &[],
            &mut san,
            &CheckPlan::none(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.native_work, 0);
    }

    #[test]
    fn inputs_parameterise_runs() {
        let mut b = ProgramBuilder::new("t");
        let n = b.input(0);
        let p = b.alloc_heap(Expr::input(0) * 8);
        b.for_loop(0i64, n, |b, i| {
            b.store(p, Expr::var(i) * 8, 8, Expr::var(i) * 2);
        });
        let prog = b.build();
        for n in [1i64, 7, 32] {
            let mut san = native();
            let r = run(
                &prog,
                &[n],
                &mut san,
                &CheckPlan::none(&prog),
                &ExecConfig::default(),
            );
            assert_eq!(r.native_work as i64, n);
        }
    }

    #[test]
    fn null_dereference_crashes() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        let q = b.ptr_add(p, 0i64);
        // Simulate p = NULL by pointer arithmetic down to zero.
        let null = b.ptr_add(q, Expr::Const(-(1i64 << 62)));
        b.load_discard(null, 0i64, 8);
        let prog = b.build();
        let mut san = native();
        let r = run(
            &prog,
            &[],
            &mut san,
            &CheckPlan::none(&prog),
            &ExecConfig::default(),
        );
        assert!(matches!(r.termination, Termination::Crashed { .. }));
        assert!(r.detected());
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        b.for_loop(0i64, 1_000_000i64, |b, _| {
            b.store(p, 0i64, 8, 1i64);
        });
        let prog = b.build();
        let mut san = native();
        let cfg = ExecConfig {
            max_steps: 1000,
            recovery: RecoveryPolicy::Continue,
        };
        let r = run(&prog, &[], &mut san, &CheckPlan::none(&prog), &cfg);
        assert_eq!(r.termination, Termination::StepLimit);
    }

    #[test]
    fn frames_push_and_pop() {
        let mut b = ProgramBuilder::new("t");
        b.frame(|b| {
            let s = b.alloc_stack(32);
            b.store(s, 0i64, 8, 42i64);
        });
        b.frame(|b| {
            let s = b.alloc_stack(32);
            b.store(s, 0i64, 8, 43i64);
        });
        let prog = b.build();
        let mut san = native();
        let r = run(
            &prog,
            &[],
            &mut san,
            &CheckPlan::none(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.termination, Termination::Finished);
        assert_eq!(san.world().stack().bytes_in_use(), 0);
        assert_eq!(san.world().stack().depth(), 0);
    }

    #[test]
    fn memops_move_data() {
        let mut b = ProgramBuilder::new("t");
        let a = b.alloc_heap(64);
        let c = b.alloc_heap(64);
        b.memset(a, 0i64, 64i64, 0x5ai64);
        b.memcpy(c, 0i64, a, 0i64, 64i64);
        let v = b.load(c, 56i64, 8);
        let out = b.alloc_heap(8);
        b.store(out, 0i64, 8, Expr::var(v));
        let prog = b.build();
        let mut san = native();
        let r = run(
            &prog,
            &[],
            &mut san,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.termination, Termination::Finished);
        let out_base = san.world().objects().iter_live().last().unwrap().base;
        assert_eq!(
            san.world().space().read_u64(out_base).unwrap(),
            0x5a5a_5a5a_5a5a_5a5a
        );
    }

    #[test]
    fn strcpy_copies_through_the_nul() {
        let mut b = ProgramBuilder::new("t");
        let src = b.alloc_heap(32);
        let dst = b.alloc_heap(32);
        // Build "abc\0" at src.
        b.store(src, 0i64, 1, 97i64);
        b.store(src, 1i64, 1, 98i64);
        b.store(src, 2i64, 1, 99i64);
        b.store(src, 3i64, 1, 0i64);
        b.memset(dst, 0i64, 32i64, 0x7fi64);
        b.strcpy(dst, 0i64, src, 0i64);
        let prog = b.build();
        let mut san = native();
        let r = run(
            &prog,
            &[],
            &mut san,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.termination, Termination::Finished);
        let dst_base = san.world().objects().iter_live().last().unwrap().base;
        assert_eq!(
            san.world().space().read_uint(dst_base, 8).unwrap() & 0xff_ffff_ffff,
            0x7f00_636261, // "abc\0" then untouched 0x7f
        );
    }

    #[test]
    fn strcpy_overflow_detected_by_the_guardian() {
        // The classic bug: a long string into a short stack buffer.
        let mut b = ProgramBuilder::new("t");
        let src = b.alloc_heap(64);
        b.memset(src, 0i64, 48i64, 65i64); // 48 'A's, no NUL yet
        b.store(src, 48i64, 1, 0i64);
        b.frame(|b| {
            let buf = b.alloc_stack(16);
            b.strcpy(buf, 0i64, src, 0i64);
        });
        let prog = b.build();
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let r = run(
            &prog,
            &[],
            &mut gs,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.reports.len(), 1, "{:?}", r.reports);
        assert!(r.reports[0].kind.is_spatial());
    }

    #[test]
    fn checksum_is_sanitizer_independent() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(128);
        b.for_loop(0i64, 16i64, |b, i| {
            b.store(p, Expr::var(i) * 8, 8, Expr::var(i) * 31);
        });
        b.for_loop(0i64, 16i64, |b, i| {
            b.load_discard(p, Expr::var(i) * 8, 8);
        });
        let prog = b.build();

        let mut native = native();
        let r1 = run(
            &prog,
            &[],
            &mut native,
            &CheckPlan::none(&prog),
            &ExecConfig::default(),
        );
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let r2 = run(
            &prog,
            &[],
            &mut gs,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r1.checksum, r2.checksum);
    }

    #[test]
    fn halt_on_error_stops_at_first_report() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        b.for_loop(0i64, 10i64, |b, i| {
            b.store(p, Expr::var(i) * 8 + 8, 8, 0i64); // always OOB
        });
        let prog = b.build();
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let cfg = ExecConfig {
            recovery: RecoveryPolicy::Halt,
            ..ExecConfig::default()
        };
        let r = run(&prog, &[], &mut gs, &CheckPlan::all_direct(&prog), &cfg);
        assert_eq!(r.reports.len(), 1);
        assert_eq!(r.termination, Termination::Halted);
        // And without halting we get one report per iteration (offset 8..80
        // stays inside the 16-byte redzone for the first iteration only —
        // farther offsets are still poisoned, some land in the next block's
        // left zone, all invalid).
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let r = run(
            &prog,
            &[],
            &mut gs,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert!(r.reports.len() >= 2);
    }

    #[test]
    fn recover_mode_dedups_and_contains() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        b.store(p, 0i64, 8, 0x55i64);
        b.for_loop(0i64, 10i64, |b, _| {
            b.load_discard(p, 8i64, 8); // always OOB, same site
        });
        let v = b.load(p, 8i64, 8); // second OOB site
        let out = b.alloc_heap(8);
        b.store(out, 0i64, 8, Expr::var(v));
        let prog = b.build();
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let cfg = ExecConfig {
            recovery: RecoveryPolicy::recover(),
            ..ExecConfig::default()
        };
        let r = run(&prog, &[], &mut gs, &CheckPlan::all_direct(&prog), &cfg);
        assert_eq!(r.termination, Termination::Finished);
        assert_eq!(r.reports.len(), 2, "one report per (site, kind)");
        assert_eq!(gs.counters().errors_recovered, 2);
        assert_eq!(gs.counters().errors_suppressed, 9);
        // The contained load never touched memory: its destination holds the
        // safe zero, not redzone bytes.
        let out_base = gs.world().objects().iter_live().last().unwrap().base;
        assert_eq!(gs.world().space().read_u64(out_base).unwrap(), 0);
    }

    #[test]
    fn reports_carry_site_ids() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(8);
        b.load_discard(p, 16i64, 8);
        let prog = b.build();
        let mut gs = giantsan_core::GiantSan::new(RuntimeConfig::small());
        let r = run(
            &prog,
            &[],
            &mut gs,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.reports.len(), 1);
        assert_eq!(r.reports[0].site, Some(0));
    }
}
