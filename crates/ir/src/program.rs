//! Statements and programs of the mini-IR.
//!
//! A [`Program`] is a structured tree (no gotos): allocations, frees, typed
//! loads/stores with byte-offset expressions, the memory intrinsics the
//! paper's Table 1 analyses (`memset`/`memcpy`), counted loops with
//! optionally *opaque* bounds (modelling unbounded `while` loops), stack
//! frames, conditionals, and pointer arithmetic. This is exactly the shape
//! the paper's static analyses consume: constant propagation, must-alias,
//! SCEV loop bounds, and check-in-loop promotion all operate on these nodes.

use std::fmt;

use giantsan_runtime::Region;

use crate::expr::{Expr, VarId};

/// Identifier of a pointer-typed local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtrId(pub u32);

impl fmt::Display for PtrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a static memory-access site (one per syntactic access).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One statement of the mini-IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let var = expr`.
    Let {
        /// Destination variable.
        var: VarId,
        /// Value expression.
        expr: Expr,
    },
    /// `ptr = alloc(size)` in `region`.
    Alloc {
        /// Destination pointer.
        ptr: PtrId,
        /// Requested size in bytes.
        size: Expr,
        /// Memory region kind.
        region: Region,
    },
    /// `free(ptr + offset)`; a non-zero offset models CWE-761.
    Free {
        /// Pointer to free.
        ptr: PtrId,
        /// Byte offset added before the call.
        offset: Expr,
    },
    /// `ptr = realloc(ptr, new_size)`: moves the object, preserving the
    /// overlapping data prefix; the old block is quarantined.
    Realloc {
        /// Pointer reallocated (updated in place).
        ptr: PtrId,
        /// New size in bytes.
        new_size: Expr,
    },
    /// `dst = *(ptr + offset)` reading `width` bytes.
    Load {
        /// Static site id.
        site: SiteId,
        /// Base pointer (the access's anchor).
        ptr: PtrId,
        /// Byte offset expression.
        offset: Expr,
        /// Access width (1, 2, 4 or 8).
        width: u8,
        /// Variable receiving the loaded value, if any.
        dst: Option<VarId>,
    },
    /// `*(ptr + offset) = value` writing `width` bytes.
    Store {
        /// Static site id.
        site: SiteId,
        /// Base pointer (the access's anchor).
        ptr: PtrId,
        /// Byte offset expression.
        offset: Expr,
        /// Access width (1, 2, 4 or 8).
        width: u8,
        /// Value to store.
        value: Expr,
    },
    /// `memset(ptr + offset, value, len)`.
    MemSet {
        /// Static site id.
        site: SiteId,
        /// Base pointer.
        ptr: PtrId,
        /// Byte offset of the destination start.
        offset: Expr,
        /// Length in bytes.
        len: Expr,
        /// Fill byte (low 8 bits of the value).
        value: Expr,
    },
    /// `strcpy(dst + dst_offset, src + src_offset)`: copies bytes up to and
    /// including the first NUL of the source string.
    ///
    /// This is the paper's guardian-function case (§4.5): the length is only
    /// known at run time, so ASan's interceptor validates both regions with
    /// a linear walk while GiantSan's does it in O(1).
    StrCpy {
        /// Static site id (covers both the read and the write).
        site: SiteId,
        /// Destination pointer.
        dst: PtrId,
        /// Destination byte offset.
        dst_offset: Expr,
        /// Source pointer.
        src: PtrId,
        /// Source byte offset.
        src_offset: Expr,
    },
    /// `memcpy(dst + dst_offset, src + src_offset, len)`.
    MemCpy {
        /// Static site id (covers both the read and the write).
        site: SiteId,
        /// Destination pointer.
        dst: PtrId,
        /// Destination byte offset.
        dst_offset: Expr,
        /// Source pointer.
        src: PtrId,
        /// Source byte offset.
        src_offset: Expr,
        /// Length in bytes.
        len: Expr,
    },
    /// `for var in lo..hi { body }` (or descending when `reverse`).
    ///
    /// `lo`/`hi` are evaluated once at loop entry. When `opaque_bound` is
    /// set, static analysis must treat the trip count as unknown — the
    /// mini-IR's model of `while (data[i] != 0)`-style unbounded loops,
    /// which is where the paper's history caching earns its keep (§4.3).
    For {
        /// Loop identity.
        id: LoopId,
        /// Induction variable.
        var: VarId,
        /// Inclusive lower bound.
        lo: Expr,
        /// Exclusive upper bound.
        hi: Expr,
        /// Iterate from `hi-1` down to `lo` when set.
        reverse: bool,
        /// Hide the bound from static analysis.
        opaque_bound: bool,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if cond != 0 { then_body } else { else_body }`.
    If {
        /// Condition expression (non-zero = true).
        cond: Expr,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Push a stack frame around `body` (a function scope).
    Frame {
        /// Statements executed inside the frame.
        body: Vec<Stmt>,
    },
    /// `dst = src + offset` (pointer arithmetic producing a derived pointer).
    PtrCopy {
        /// Destination pointer.
        dst: PtrId,
        /// Source pointer.
        src: PtrId,
        /// Byte offset added.
        offset: Expr,
    },
}

/// A complete mini-IR program.
///
/// Use [`crate::ProgramBuilder`] to construct programs; the builder assigns
/// dense ids that the interpreter and analyses index by.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Human-readable name (workload id).
    pub name: String,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
    /// Number of scalar variables.
    pub num_vars: u32,
    /// Number of pointer locals.
    pub num_ptrs: u32,
    /// Number of static access sites.
    pub num_sites: u32,
    /// Number of loops.
    pub num_loops: u32,
    /// Number of runtime inputs the program expects.
    pub num_inputs: usize,
}

impl Program {
    /// Visits every statement in the tree, depth-first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::For { body, .. } | Stmt::Frame { body } => walk(body, f),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, f);
                        walk(else_body, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.stmts, f);
    }

    /// Counts static access sites of each kind `(loads, stores, memops)`.
    pub fn site_census(&self) -> (u32, u32, u32) {
        let (mut loads, mut stores, mut memops) = (0, 0, 0);
        self.visit(&mut |s| match s {
            Stmt::Load { .. } => loads += 1,
            Stmt::Store { .. } => stores += 1,
            Stmt::MemSet { .. } | Stmt::MemCpy { .. } | Stmt::StrCpy { .. } => memops += 1,
            _ => {}
        });
        (loads, stores, memops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    #[test]
    fn visit_reaches_nested_statements() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(64);
        let n = b.input(0);
        b.for_loop(Expr::Const(0), n, |b, i| {
            b.store(p, Expr::var(i) * 8, 8, Expr::Const(1));
            b.if_nonzero(Expr::var(i), |b| {
                let _ = b.load(p, Expr::var(i) * 8, 8);
            });
        });
        let prog = b.build();
        let mut count = 0;
        prog.visit(&mut |_| count += 1);
        assert!(count >= 5);
        assert_eq!(prog.site_census(), (1, 1, 0));
        assert_eq!(prog.num_loops, 1);
    }

    #[test]
    fn ids_display() {
        assert_eq!(format!("{}", PtrId(1)), "p1");
        assert_eq!(format!("{}", SiteId(2)), "s2");
        assert_eq!(format!("{}", LoopId(3)), "L3");
    }
}
