//! Cooperative per-cell watchdog: a thread-local deadline polled from the
//! interpreter's hot loop.
//!
//! Threads cannot be preempted in safe Rust, so a runaway cell (an unbounded
//! loop, an adversarial service submission) is cancelled *cooperatively*:
//! the batch engine arms a deadline on the worker thread before invoking the
//! cell job, and long-running library loops — the interpreter's [`step`]
//! counter being the canonical one — periodically call [`poll`]. When the
//! deadline has passed, `poll` panics with the distinguished
//! [`TIMEOUT_PAYLOAD`]; the batch engine's `catch_unwind` recognises that
//! payload and converts the cell into a `Timeout` verdict **without
//! retrying** (re-running a runaway cell would just burn another deadline),
//! so the worker moves on and the pool never wedges.
//!
//! The deadline is thread-local: arming it on one worker never affects
//! another, and a cell that finishes in time leaves nothing armed (the
//! [`Armed`] guard clears it on drop, panic included).
//!
//! Polling costs one `Instant::now()` call; callers in tight loops are
//! expected to rate-limit their polls (the interpreter checks every
//! [`POLL_INTERVAL`] executed statements).
//!
//! [`step`]: crate::ExecConfig::max_steps

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Process-wide hook fired once per timeout, just before [`poll`] panics.
///
/// The sanitizer service installs a flight-recorder dump request here so a
/// wedged cell leaves a post-mortem trace bundle even though the panic
/// itself unwinds into the batch engine's quarantine path. The hook runs on
/// the timing-out worker thread and must not panic or block.
static TIMEOUT_HOOK: OnceLock<fn()> = OnceLock::new();

/// Installs the process-wide timeout hook. First caller wins; later calls
/// are ignored (the service installs it once at startup).
pub fn set_timeout_hook(hook: fn()) {
    let _ = TIMEOUT_HOOK.set(hook);
}

/// The panic payload [`poll`] raises on an expired deadline. The batch
/// engine matches on this exact string to classify a quarantined cell as
/// timed out rather than crashed.
pub const TIMEOUT_PAYLOAD: &str = "giantsan-watchdog: cell deadline exceeded";

/// How many interpreter steps elapse between deadline polls.
pub const POLL_INTERVAL: u64 = 4096;

/// Arms the calling thread's watchdog: [`poll`] panics once `budget` has
/// elapsed. Returns a guard that disarms on drop (normal return, panic, or
/// timeout alike), restoring whatever deadline was armed before — nested
/// arms keep the *earlier* of the two deadlines, so an outer budget can
/// never be extended by an inner one.
#[must_use]
pub fn arm(budget: Duration) -> Armed {
    let new = Instant::now() + budget;
    let prev = DEADLINE.with(|d| {
        let prev = d.get();
        let effective = match prev {
            Some(outer) if outer < new => outer,
            _ => new,
        };
        d.set(Some(effective));
        prev
    });
    Armed { prev }
}

/// Disarming guard returned by [`arm`].
#[derive(Debug)]
pub struct Armed {
    prev: Option<Instant>,
}

impl Drop for Armed {
    fn drop(&mut self) {
        let prev = self.prev;
        DEADLINE.with(|d| d.set(prev));
    }
}

/// `true` when a deadline is armed on this thread and has passed.
pub fn expired() -> bool {
    DEADLINE.with(|d| d.get().is_some_and(|t| Instant::now() >= t))
}

/// Panics with [`TIMEOUT_PAYLOAD`] if the armed deadline has passed; a no-op
/// when nothing is armed. Library loops call this at their poll points.
#[inline]
pub fn poll() {
    if expired() {
        if let Some(hook) = TIMEOUT_HOOK.get() {
            hook();
        }
        std::panic::panic_any(TIMEOUT_PAYLOAD);
    }
}

/// `true` when `payload` (a caught panic payload) is a watchdog timeout.
pub fn is_timeout_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload
        .downcast_ref::<&str>()
        .is_some_and(|s| *s == TIMEOUT_PAYLOAD)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_poll_is_a_noop() {
        assert!(!expired());
        poll();
    }

    #[test]
    fn armed_deadline_expires_and_disarms_on_drop() {
        {
            let _g = arm(Duration::from_millis(0));
            assert!(expired());
            let err = std::panic::catch_unwind(poll).unwrap_err();
            assert!(is_timeout_payload(err.as_ref()));
        }
        // Guard dropped (even though poll panicked inside the scope above,
        // the catch_unwind kept the guard alive until the block end).
        assert!(!expired());
        poll();
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let _g = arm(Duration::from_secs(3600));
        assert!(!expired());
        poll();
    }

    #[test]
    fn nested_arm_keeps_the_tighter_outer_deadline() {
        let _outer = arm(Duration::from_millis(0));
        {
            let _inner = arm(Duration::from_secs(3600));
            // The inner arm may not extend the already-expired outer budget.
            assert!(expired());
        }
        assert!(expired());
    }

    #[test]
    fn timeout_hook_fires_before_the_panic() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static FIRED: AtomicU64 = AtomicU64::new(0);
        // The hook is process-global; installing a pure counter bump keeps
        // this safe no matter which other test trips a timeout afterwards.
        set_timeout_hook(|| {
            FIRED.fetch_add(1, Ordering::SeqCst);
        });
        let before = FIRED.load(Ordering::SeqCst);
        let _g = arm(Duration::from_millis(0));
        let err = std::panic::catch_unwind(poll).unwrap_err();
        assert!(is_timeout_payload(err.as_ref()));
        assert!(FIRED.load(Ordering::SeqCst) > before);
    }

    #[test]
    fn deadlines_are_thread_local() {
        let _g = arm(Duration::from_millis(0));
        assert!(expired());
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(!expired());
                poll();
            });
        });
    }
}
