//! Scalar expressions of the mini-IR.
//!
//! Expressions are deliberately close to what LLVM's scalar-evolution and
//! constant-propagation passes reason about: integer constants, local
//! variables, program inputs, and the three arithmetic operators. Loop index
//! computations in the workloads are affine in these terms, which is what
//! lets `giantsan-analysis` recognise promotable checks the same way the
//! paper's SCEV-based pass does (§4.4.2).

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// Identifier of a scalar local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A scalar expression tree.
///
/// # Example
///
/// ```
/// use giantsan_ir::Expr;
/// let e = Expr::var(giantsan_ir::VarId(0)) * 4 + 8;
/// assert_eq!(format!("{e}"), "((v0 * 4) + 8)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer constant.
    Const(i64),
    /// A local variable.
    Var(VarId),
    /// The `k`-th runtime input of the program.
    Input(usize),
    /// The input at a computed index (`inputs[expr]`): a read-only data
    /// tape, used by workloads for shuffled index sequences and other
    /// data-driven values. Out-of-range indexes read 0.
    InputDyn(Box<Expr>),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Shorthand for an input reference.
    pub fn input(k: usize) -> Expr {
        Expr::Input(k)
    }

    /// Returns the constant value if the expression is a literal constant
    /// (without any folding).
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Evaluates the expression with wrapping 64-bit arithmetic.
    ///
    /// `vars` maps every [`VarId`] below its length to a value; `inputs` maps
    /// input indexes. Unbound variables and missing inputs evaluate to 0 (the
    /// simulator's model of an uninitialised read).
    pub fn eval(&self, vars: &[i64], inputs: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => vars.get(v.0 as usize).copied().unwrap_or(0),
            Expr::Input(k) => inputs.get(*k).copied().unwrap_or(0),
            Expr::InputDyn(e) => {
                let idx = e.eval(vars, inputs);
                usize::try_from(idx)
                    .ok()
                    .and_then(|i| inputs.get(i))
                    .copied()
                    .unwrap_or(0)
            }
            Expr::Add(a, b) => a.eval(vars, inputs).wrapping_add(b.eval(vars, inputs)),
            Expr::Sub(a, b) => a.eval(vars, inputs).wrapping_sub(b.eval(vars, inputs)),
            Expr::Mul(a, b) => a.eval(vars, inputs).wrapping_mul(b.eval(vars, inputs)),
        }
    }

    /// Returns every variable the expression reads.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) | Expr::Input(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::InputDyn(e) => e.collect_vars(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Shorthand for a dynamically-indexed input read.
    pub fn input_at(idx: Expr) -> Expr {
        Expr::InputDyn(Box::new(idx))
    }

    /// Returns `true` if the expression reads any of the given variables.
    pub fn uses_any(&self, vars: &[VarId]) -> bool {
        self.vars().iter().any(|v| vars.contains(v))
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        Expr::Const(c)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Self {
        Expr::Var(v)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr::$variant(Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Input(k) => write!(f, "in{k}"),
            Expr::InputDyn(e) => write!(f, "in[{e}]"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basics() {
        let vars = [10, 20];
        let inputs = [100];
        let e = Expr::var(VarId(0)) * 4 + 8;
        assert_eq!(e.eval(&vars, &inputs), 48);
        let e = Expr::input(0) - Expr::var(VarId(1));
        assert_eq!(e.eval(&vars, &inputs), 80);
        assert_eq!(Expr::Const(-3).eval(&vars, &inputs), -3);
    }

    #[test]
    fn unbound_reads_are_zero() {
        let e = Expr::var(VarId(9)) + Expr::input(9);
        assert_eq!(e.eval(&[], &[]), 0);
    }

    #[test]
    fn wrapping_semantics() {
        let e = Expr::Const(i64::MAX) + 1;
        assert_eq!(e.eval(&[], &[]), i64::MIN);
    }

    #[test]
    fn var_collection() {
        let e = (Expr::var(VarId(0)) + Expr::var(VarId(2))) * Expr::input(0);
        assert_eq!(e.vars(), vec![VarId(0), VarId(2)]);
        assert!(e.uses_any(&[VarId(2)]));
        assert!(!e.uses_any(&[VarId(1)]));
    }

    #[test]
    fn input_dyn_semantics() {
        let inputs = [10, 20, 30];
        // inputs[v0] with v0 = 2.
        let e = Expr::input_at(Expr::var(VarId(0)));
        assert_eq!(e.eval(&[2], &inputs), 30);
        // Negative and out-of-range indexes read 0.
        assert_eq!(e.eval(&[-1], &inputs), 0);
        assert_eq!(e.eval(&[99], &inputs), 0);
        // Nested arithmetic in the index.
        let e = Expr::input_at(Expr::var(VarId(0)) + 1) * 2;
        assert_eq!(e.eval(&[0], &inputs), 40);
        // Vars inside the index are collected.
        assert_eq!(Expr::input_at(Expr::var(VarId(3))).vars(), vec![VarId(3)]);
        assert_eq!(format!("{}", Expr::input_at(Expr::Const(7))), "in[7]");
    }

    #[test]
    fn conversions_and_display() {
        let e: Expr = 7i64.into();
        assert_eq!(e.as_const(), Some(7));
        let v: Expr = VarId(3).into();
        assert_eq!(v.as_const(), None);
        assert_eq!(format!("{}", Expr::input(2) - 1), "(in2 - 1)");
    }
}
