#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Mini-IR and interpreter: the compiler/execution substrate standing in for
//! LLVM in the GiantSan reproduction.
//!
//! The paper implements GiantSan as an LLVM-12 instrumentation pass plus a
//! runtime library. The reproduction's calibration notes flag LLVM pass
//! development as the awkward dependency, so this crate substitutes a small
//! structured IR that exposes exactly the facts the paper's static analyses
//! consume (Table 1): constant offsets, must-aliased base pointers, affine
//! loop indexes with knowable (or deliberately *opaque*) bounds, and the
//! `memset`/`memcpy` intrinsics — plus an interpreter that executes programs
//! against any [`giantsan_runtime::Sanitizer`] under a [`CheckPlan`].
//!
//! * [`Expr`], [`Stmt`], [`Program`] — the IR itself;
//! * [`ProgramBuilder`] — fluent construction;
//! * [`CheckPlan`], [`SiteAction`], [`LoopPlan`] — instrumentation as data
//!   (Figure 8c/9 of the paper);
//! * [`run`] — the interpreter: real loads/stores in the simulated space,
//!   checks per plan, reports collected, crashes modelled as faults.
//!
//! # Example
//!
//! ```
//! use giantsan_ir::{CheckPlan, ExecConfig, Expr, ProgramBuilder, run};
//! use giantsan_core::GiantSan;
//! use giantsan_runtime::RuntimeConfig;
//!
//! // for i in 0..N { buf[i] = i } with an off-by-one on the last round.
//! let mut b = ProgramBuilder::new("off-by-one");
//! let n = b.input(0);
//! let buf = b.alloc_heap(Expr::input(0) * 8);
//! b.for_loop(0i64, n + 1, |b, i| {
//!     b.store(buf, Expr::var(i) * 8, 8, Expr::var(i));
//! });
//! let prog = b.build();
//!
//! let mut san = GiantSan::new(RuntimeConfig::small());
//! let result = run(
//!     &prog,
//!     &[16],
//!     &mut san,
//!     &CheckPlan::all_direct(&prog),
//!     &ExecConfig::default(),
//! );
//! assert!(result.detected());
//! ```

mod builder;
mod expr;
mod interp;
mod plan;
mod program;
pub mod watchdog;

pub use builder::ProgramBuilder;
pub use expr::{Expr, VarId};
pub use interp::{run, run_dyn, run_with, ExecConfig, ExecResult, Termination};
pub use plan::{CacheId, CheckPlan, LoopPlan, PreCheck, SiteAction};
pub use program::{LoopId, Program, PtrId, SiteId, Stmt};
