//! Instrumentation plans: what check, if any, runs at each access site.
//!
//! A [`CheckPlan`] is the mini-IR analogue of the instrumented binary the
//! paper's compiler pass produces: per-site actions (Figure 8c), per-loop
//! promoted region checks and cache slots (Figure 9), all as *data* the
//! interpreter executes. `giantsan-analysis` constructs plans; this module
//! only defines their shape plus the trivial "check everything" plan that
//! models un-optimised ASan instrumentation.

use std::collections::HashMap;

use giantsan_runtime::AccessKind;

use crate::expr::Expr;
use crate::program::{LoopId, Program, PtrId, SiteId};

/// Identifier of a history-cache slot (one local `ub` variable, Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheId(pub u32);

/// The runtime action at one access site.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteAction {
    /// Instruction-level check of exactly the accessed bytes (ASan's mode).
    Direct,
    /// Anchor-based operation check: validate `[ptr, access end)` (§4.4.1).
    Anchored,
    /// Merged check: validate `[ptr + lo, ptr + hi)` at this site, covering
    /// this access and the aliased ones whose own sites were eliminated.
    Region {
        /// Inclusive start offset of the covered region.
        lo: Expr,
        /// Exclusive end offset of the covered region.
        hi: Expr,
    },
    /// History-cached check through the given quasi-bound slot (§4.3).
    Cached {
        /// Cache slot consulted and refreshed by this site.
        cache: CacheId,
    },
    /// No runtime action: the access is covered by a merged or promoted
    /// check elsewhere (`Eliminated` in Figure 10's terms).
    Skip,
}

/// A region check hoisted to a loop pre-header (check-in-loop promotion).
#[derive(Debug, Clone, PartialEq)]
pub struct PreCheck {
    /// Anchor pointer of the region.
    pub ptr: PtrId,
    /// Inclusive start offset.
    pub lo: Expr,
    /// Exclusive end offset (e.g. `4 * N` for Figure 8c's `CI(x, x+4N)`).
    pub hi: Expr,
    /// Read or write.
    pub kind: AccessKind,
}

/// Per-loop instrumentation: promoted checks and cache slots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoopPlan {
    /// Region checks executed once at loop entry.
    pub pre_checks: Vec<PreCheck>,
    /// Cache slots reset at loop entry and finalised at loop exit, with the
    /// pointer each one guards.
    pub caches: Vec<(CacheId, PtrId)>,
}

/// A complete instrumentation plan for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckPlan {
    /// Action per access site, indexed by [`SiteId`].
    pub sites: Vec<SiteAction>,
    /// Per-loop instrumentation.
    pub loops: HashMap<LoopId, LoopPlan>,
    /// Number of cache slots the interpreter must allocate.
    pub num_caches: u32,
}

impl CheckPlan {
    /// The un-optimised plan: every site checked directly, no promotion, no
    /// caching. This is ASan's instruction-level instrumentation.
    pub fn all_direct(program: &Program) -> Self {
        CheckPlan {
            sites: vec![SiteAction::Direct; program.num_sites as usize],
            loops: HashMap::new(),
            num_caches: 0,
        }
    }

    /// A plan with *no* checks at all — native execution.
    pub fn none(program: &Program) -> Self {
        CheckPlan {
            sites: vec![SiteAction::Skip; program.num_sites as usize],
            loops: HashMap::new(),
            num_caches: 0,
        }
    }

    /// The action at `site`.
    pub fn action(&self, site: SiteId) -> &SiteAction {
        &self.sites[site.0 as usize]
    }

    /// Counts sites per action kind: `(direct, anchored, region, cached,
    /// skipped)`.
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for s in &self.sites {
            match s {
                SiteAction::Direct => c.0 += 1,
                SiteAction::Anchored => c.1 += 1,
                SiteAction::Region { .. } => c.2 += 1,
                SiteAction::Cached { .. } => c.3 += 1,
                SiteAction::Skip => c.4 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Expr, ProgramBuilder};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(64);
        let _ = b.load(p, 0i64, 8);
        b.store(p, 8i64, 8, 1i64);
        b.build()
    }

    #[test]
    fn all_direct_covers_every_site() {
        let prog = sample();
        let plan = CheckPlan::all_direct(&prog);
        assert_eq!(plan.sites.len(), 2);
        assert_eq!(plan.census(), (2, 0, 0, 0, 0));
        assert_eq!(plan.action(SiteId(0)), &SiteAction::Direct);
    }

    #[test]
    fn none_skips_every_site() {
        let prog = sample();
        let plan = CheckPlan::none(&prog);
        assert_eq!(plan.census(), (0, 0, 0, 0, 2));
    }

    #[test]
    fn census_distinguishes_kinds() {
        let prog = sample();
        let mut plan = CheckPlan::all_direct(&prog);
        plan.sites[0] = SiteAction::Cached { cache: CacheId(0) };
        plan.sites[1] = SiteAction::Region {
            lo: Expr::Const(0),
            hi: Expr::Const(16),
        };
        plan.num_caches = 1;
        assert_eq!(plan.census(), (0, 0, 1, 1, 0));
    }
}
