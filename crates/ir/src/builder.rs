//! Fluent construction of mini-IR programs.

use giantsan_runtime::Region;

use crate::expr::{Expr, VarId};
use crate::program::{LoopId, Program, PtrId, SiteId, Stmt};

/// Builds a [`Program`] with dense ids.
///
/// Nested constructs (loops, frames, conditionals) take closures, so the
/// builder reads like the source code the paper's examples show.
///
/// # Example
///
/// Figure 8a's kernel, `y[x[i]] = i` over a loop:
///
/// ```
/// use giantsan_ir::{Expr, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new("figure8");
/// let n = b.input(0);
/// let x = b.alloc_heap(Expr::input(0) * 4);
/// let y = b.alloc_heap(Expr::input(0) * 4);
/// b.for_loop(Expr::Const(0), n, |b, i| {
///     let j = b.load(x, Expr::var(i) * 4, 4);
///     b.store(y, Expr::var(j) * 4, 4, Expr::var(i));
/// });
/// b.free(x);
/// b.free(y);
/// let prog = b.build();
/// assert_eq!(prog.site_census(), (1, 1, 0));
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    blocks: Vec<Vec<Stmt>>,
    num_vars: u32,
    num_ptrs: u32,
    num_sites: u32,
    num_loops: u32,
    num_inputs: usize,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            blocks: vec![Vec::new()],
            num_vars: 0,
            num_ptrs: 0,
            num_sites: 0,
            num_loops: 0,
            num_inputs: 0,
        }
    }

    fn push(&mut self, stmt: Stmt) {
        self.blocks
            .last_mut()
            .expect("builder always has a block")
            .push(stmt);
    }

    fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.num_vars);
        self.num_vars += 1;
        v
    }

    fn fresh_ptr(&mut self) -> PtrId {
        let p = PtrId(self.num_ptrs);
        self.num_ptrs += 1;
        p
    }

    fn fresh_site(&mut self) -> SiteId {
        let s = SiteId(self.num_sites);
        self.num_sites += 1;
        s
    }

    /// References runtime input `k` and records that the program needs it.
    pub fn input(&mut self, k: usize) -> Expr {
        self.num_inputs = self.num_inputs.max(k + 1);
        Expr::Input(k)
    }

    /// Emits `let v = expr` and returns `v`.
    pub fn let_(&mut self, expr: impl Into<Expr>) -> VarId {
        let var = self.fresh_var();
        self.push(Stmt::Let {
            var,
            expr: expr.into(),
        });
        var
    }

    fn alloc(&mut self, size: impl Into<Expr>, region: Region) -> PtrId {
        let ptr = self.fresh_ptr();
        self.push(Stmt::Alloc {
            ptr,
            size: size.into(),
            region,
        });
        ptr
    }

    /// Allocates a heap object of `size` bytes.
    pub fn alloc_heap(&mut self, size: impl Into<Expr>) -> PtrId {
        self.alloc(size, Region::Heap)
    }

    /// Allocates a stack slot of `size` bytes in the current frame.
    pub fn alloc_stack(&mut self, size: impl Into<Expr>) -> PtrId {
        self.alloc(size, Region::Stack)
    }

    /// Allocates a global object of `size` bytes.
    pub fn alloc_global(&mut self, size: impl Into<Expr>) -> PtrId {
        self.alloc(size, Region::Global)
    }

    /// Emits `free(ptr)`.
    pub fn free(&mut self, ptr: PtrId) {
        self.free_at(ptr, 0i64);
    }

    /// Emits `free(ptr + offset)` (non-zero offsets model CWE-761).
    pub fn free_at(&mut self, ptr: PtrId, offset: impl Into<Expr>) {
        self.push(Stmt::Free {
            ptr,
            offset: offset.into(),
        });
    }

    /// Emits `ptr = realloc(ptr, new_size)`.
    pub fn realloc(&mut self, ptr: PtrId, new_size: impl Into<Expr>) {
        self.push(Stmt::Realloc {
            ptr,
            new_size: new_size.into(),
        });
    }

    /// Emits a `width`-byte load of `ptr + offset` into a fresh variable.
    pub fn load(&mut self, ptr: PtrId, offset: impl Into<Expr>, width: u8) -> VarId {
        let dst = self.fresh_var();
        let site = self.fresh_site();
        self.push(Stmt::Load {
            site,
            ptr,
            offset: offset.into(),
            width,
            dst: Some(dst),
        });
        dst
    }

    /// Emits a load whose value is discarded (pure traversal work).
    pub fn load_discard(&mut self, ptr: PtrId, offset: impl Into<Expr>, width: u8) {
        let site = self.fresh_site();
        self.push(Stmt::Load {
            site,
            ptr,
            offset: offset.into(),
            width,
            dst: None,
        });
    }

    /// Emits a `width`-byte store of `value` to `ptr + offset`.
    pub fn store(
        &mut self,
        ptr: PtrId,
        offset: impl Into<Expr>,
        width: u8,
        value: impl Into<Expr>,
    ) {
        let site = self.fresh_site();
        self.push(Stmt::Store {
            site,
            ptr,
            offset: offset.into(),
            width,
            value: value.into(),
        });
    }

    /// Emits `memset(ptr + offset, value, len)`.
    pub fn memset(
        &mut self,
        ptr: PtrId,
        offset: impl Into<Expr>,
        len: impl Into<Expr>,
        value: impl Into<Expr>,
    ) {
        let site = self.fresh_site();
        self.push(Stmt::MemSet {
            site,
            ptr,
            offset: offset.into(),
            len: len.into(),
            value: value.into(),
        });
    }

    /// Emits `memcpy(dst + dst_offset, src + src_offset, len)`.
    pub fn memcpy(
        &mut self,
        dst: PtrId,
        dst_offset: impl Into<Expr>,
        src: PtrId,
        src_offset: impl Into<Expr>,
        len: impl Into<Expr>,
    ) {
        let site = self.fresh_site();
        self.push(Stmt::MemCpy {
            site,
            dst,
            dst_offset: dst_offset.into(),
            src,
            src_offset: src_offset.into(),
            len: len.into(),
        });
    }

    /// Emits `strcpy(dst + dst_offset, src + src_offset)`.
    pub fn strcpy(
        &mut self,
        dst: PtrId,
        dst_offset: impl Into<Expr>,
        src: PtrId,
        src_offset: impl Into<Expr>,
    ) {
        let site = self.fresh_site();
        self.push(Stmt::StrCpy {
            site,
            dst,
            dst_offset: dst_offset.into(),
            src,
            src_offset: src_offset.into(),
        });
    }

    fn for_loop_inner(
        &mut self,
        lo: Expr,
        hi: Expr,
        reverse: bool,
        opaque_bound: bool,
        f: impl FnOnce(&mut Self, VarId),
    ) -> LoopId {
        let id = LoopId(self.num_loops);
        self.num_loops += 1;
        let var = self.fresh_var();
        self.blocks.push(Vec::new());
        f(self, var);
        let body = self.blocks.pop().expect("loop body block");
        self.push(Stmt::For {
            id,
            var,
            lo,
            hi,
            reverse,
            opaque_bound,
            body,
        });
        id
    }

    /// Emits `for v in lo..hi { ... }` with an analysable bound.
    pub fn for_loop(
        &mut self,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        f: impl FnOnce(&mut Self, VarId),
    ) -> LoopId {
        self.for_loop_inner(lo.into(), hi.into(), false, false, f)
    }

    /// Emits a descending loop `for v in (lo..hi).rev() { ... }`.
    pub fn for_loop_rev(
        &mut self,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        f: impl FnOnce(&mut Self, VarId),
    ) -> LoopId {
        self.for_loop_inner(lo.into(), hi.into(), true, false, f)
    }

    /// Emits a loop whose trip count is hidden from static analysis —
    /// the model of an unbounded `while` loop.
    pub fn for_loop_opaque(
        &mut self,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        f: impl FnOnce(&mut Self, VarId),
    ) -> LoopId {
        self.for_loop_inner(lo.into(), hi.into(), false, true, f)
    }

    /// Emits a descending loop with an opaque bound (reverse traversal of an
    /// unbounded loop — the paper's §5.4 worst case).
    pub fn for_loop_rev_opaque(
        &mut self,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        f: impl FnOnce(&mut Self, VarId),
    ) -> LoopId {
        self.for_loop_inner(lo.into(), hi.into(), true, true, f)
    }

    /// Emits `if cond != 0 { ... }`.
    pub fn if_nonzero(&mut self, cond: impl Into<Expr>, then: impl FnOnce(&mut Self)) {
        self.if_else(cond, then, |_| {});
    }

    /// Emits `if cond != 0 { ... } else { ... }`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then(self);
        let then_body = self.blocks.pop().expect("then block");
        self.blocks.push(Vec::new());
        otherwise(self);
        let else_body = self.blocks.pop().expect("else block");
        self.push(Stmt::If {
            cond: cond.into(),
            then_body,
            else_body,
        });
    }

    /// Emits a stack frame (function scope) around `f`'s statements.
    pub fn frame(&mut self, f: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        f(self);
        let body = self.blocks.pop().expect("frame block");
        self.push(Stmt::Frame { body });
    }

    /// Declares a pointer local that is never assigned: its runtime value is
    /// the null address (the interpreter zero-initialises pointers), used to
    /// model null-dereference bugs (CWE-476).
    pub fn null_ptr(&mut self) -> PtrId {
        self.fresh_ptr()
    }

    /// Emits `dst = src + offset` and returns `dst`.
    pub fn ptr_add(&mut self, src: PtrId, offset: impl Into<Expr>) -> PtrId {
        let dst = self.fresh_ptr();
        self.push(Stmt::PtrCopy {
            dst,
            src,
            offset: offset.into(),
        });
        dst
    }

    /// Finishes the program.
    ///
    /// # Panics
    ///
    /// Panics if a nested block was left open (a builder bug).
    pub fn build(mut self) -> Program {
        assert_eq!(self.blocks.len(), 1, "unclosed block in builder");
        Program {
            name: self.name,
            stmts: self.blocks.pop().expect("root block"),
            num_vars: self.num_vars,
            num_ptrs: self.num_ptrs,
            num_sites: self.num_sites,
            num_loops: self.num_loops,
            num_inputs: self.num_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(16);
        let q = b.alloc_heap(16);
        let v = b.load(p, 0i64, 8);
        b.store(q, 8i64, 8, Expr::var(v));
        let prog = b.build();
        assert_eq!(prog.num_ptrs, 2);
        assert_eq!(prog.num_sites, 2);
        assert_eq!(prog.num_vars, 1);
        assert_eq!(prog.name, "t");
    }

    #[test]
    fn nested_loops_count() {
        let mut b = ProgramBuilder::new("t");
        let p = b.alloc_heap(1024);
        b.for_loop(0i64, 4i64, |b, i| {
            b.for_loop(0i64, 4i64, |b, j| {
                b.store(p, Expr::var(i) * 32 + Expr::var(j) * 8, 8, 0i64);
            });
        });
        let prog = b.build();
        assert_eq!(prog.num_loops, 2);
        assert_eq!(prog.num_inputs, 0);
    }

    #[test]
    fn inputs_tracked() {
        let mut b = ProgramBuilder::new("t");
        let _ = b.input(3);
        let prog = b.build();
        assert_eq!(prog.num_inputs, 4);
    }

    #[test]
    fn frames_and_branches_nest() {
        let mut b = ProgramBuilder::new("t");
        b.frame(|b| {
            let s = b.alloc_stack(32);
            b.if_else(
                1i64,
                |b| b.store(s, 0i64, 8, 1i64),
                |b| b.store(s, 8i64, 8, 2i64),
            );
        });
        let prog = b.build();
        assert_eq!(prog.num_sites, 2);
        assert!(matches!(prog.stmts[0], Stmt::Frame { .. }));
    }
}
