#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Workload generators for every experiment in the GiantSan paper.
//!
//! | Paper artefact | Module | Entry point |
//! |---|---|---|
//! | Table 2 / Figure 10 — SPEC CPU2017 performance & check breakdown | [`spec`] | [`spec_suite`] |
//! | Table 3 — Juliet Test Suite detection | [`juliet`] | [`juliet_suite`] |
//! | Table 4 — Linux Flaw Project CVEs | [`flaws`] | [`cve_scenarios`] |
//! | Table 5 — Magma redzone study | [`magma`] | [`magma_cases`] |
//! | Figure 11 — traversal patterns | [`traversal`] | [`traversal_program`] |
//!
//! The real corpora (SPEC sources/inputs, Juliet 1.3, the CVE projects,
//! Magma) cannot ship in this reproduction; each generator synthesises
//! programs with the same *decision-relevant geometry* — access-pattern mix
//! for the performance rows, error geometry for the detection rows — as
//! documented per module and in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use giantsan_workloads::{spec_suite, juliet_suite_scaled};
//!
//! assert_eq!(spec_suite(1).len(), 24); // the 24 rows of Table 2
//! let juliet = juliet_suite_scaled(100);
//! assert!(juliet.cases.len() > 40);
//! ```

pub mod ablation;
pub mod figure8;
pub mod flaws;
pub mod fuzz;
pub mod juliet;
pub mod magma;
pub mod spec;
pub mod traversal;

pub use ablation::{quarantine_probe, underflow_bypass_probe};
pub use figure8::figure8_program;
pub use flaws::{cve_scenarios, CveKind, CveScenario};
pub use fuzz::{buggy_program, safe_program, FuzzProgram, InjectedBug};
pub use juliet::{juliet_suite, juliet_suite_scaled, JulietCase, JulietSuite};
pub use magma::{magma_cases, magma_templates, MagmaCase, PocClass};
pub use spec::{spec_suite, spec_workload, Workload};
pub use traversal::{figure11_sizes, traversal_program, Pattern};
