//! Linux-Flaw-Project-like CVE scenarios (Table 4 of the paper).
//!
//! Each CVE row of Table 4 becomes a small program whose error geometry
//! matches the class of the real vulnerability. Three rows are the
//! interesting ones — the three LFP misses, each for a mechanically distinct
//! reason:
//!
//! * **CVE-2017-12858** (libzip): use-after-free where the freed chunk is
//!   reallocated before the dangling use — LFP has no quarantine, so the
//!   dangling pointer aliases the new object; quarantine-based tools keep
//!   the region poisoned;
//! * **CVE-2017-9165** (autotrace) and **CVE-2017-14409** (mp3gain): small
//!   heap overflows that stay within LFP's size-class rounding slack.

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// The vulnerability class a CVE scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CveKind {
    /// Heap overflow far past the allocation (parser trusting a length
    /// field).
    HeapOverflowLarge,
    /// Heap overflow of a few bytes, inside size-class rounding slack.
    HeapOverflowRounded,
    /// Heap overread past the allocation.
    HeapOverreadLarge,
    /// Heap underflow (negative index from a parsed value).
    HeapUnderflow,
    /// Use-after-free with the chunk reallocated before the dangling use.
    UseAfterFreeRealloc,
}

/// One CVE scenario.
#[derive(Debug, Clone)]
pub struct CveScenario {
    /// Project the CVE belongs to.
    pub project: &'static str,
    /// CVE identifier.
    pub cve: &'static str,
    /// Vulnerability class.
    pub kind: CveKind,
    /// The buggy program.
    pub program: Program,
    /// Inputs triggering the vulnerability.
    pub inputs: Vec<i64>,
}

fn heap_overflow_large() -> (Program, Vec<i64>) {
    // A parser copies a length-prefixed record without validating it.
    let mut b = ProgramBuilder::new("cve-heap-overflow-large");
    let size = b.input(0);
    let claimed = b.input(1);
    let dst = b.alloc_heap(size);
    let src = b.alloc_heap(claimed.clone());
    b.memcpy(dst, 0i64, src, 0i64, claimed);
    b.free(src);
    b.free(dst);
    (b.build(), vec![96, 512])
}

fn heap_overflow_rounded() -> (Program, Vec<i64>) {
    // Off-by-a-few write: 100-byte object, LFP slot is 128 bytes.
    let mut b = ProgramBuilder::new("cve-heap-overflow-rounded");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, Expr::input(1), 1, 0x41i64);
    b.free(p);
    (b.build(), vec![100, 102])
}

fn heap_overread_large() -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("cve-heap-overread-large");
    let size = b.input(0);
    let n = b.input(1);
    let p = b.alloc_heap(size);
    b.for_loop(0i64, n, |b, i| {
        b.load_discard(p, Expr::var(i), 1);
    });
    b.free(p);
    (b.build(), vec![64, 640])
}

fn heap_underflow() -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("cve-heap-underflow");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, Expr::input(1), 2, 0i64);
    b.free(p);
    (b.build(), vec![128, -6])
}

fn uaf_realloc() -> (Program, Vec<i64>) {
    // Free, reallocate the same size (the allocator hands the slot back
    // unless a quarantine delays it), then use the dangling pointer.
    let mut b = ProgramBuilder::new("cve-uaf-realloc");
    let size = b.input(0);
    let p = b.alloc_heap(size.clone());
    b.store(p, 0i64, 8, 7i64);
    b.free(p);
    let q = b.alloc_heap(size);
    b.store(q, 0i64, 8, 9i64);
    b.load_discard(p, 8i64, 8); // dangling
    b.free(q);
    (b.build(), vec![48])
}

/// Table 4's rows: `(project, cve, kind)`.
const ROWS: &[(&str, &str, CveKind)] = &[
    ("libzip", "CVE-2017-12858", CveKind::UseAfterFreeRealloc),
    ("autotrace", "CVE-2017-9164", CveKind::HeapOverflowLarge),
    ("autotrace", "CVE-2017-9165", CveKind::HeapOverflowRounded),
    ("autotrace", "CVE-2017-9166", CveKind::HeapOverflowLarge),
    ("autotrace", "CVE-2017-9167", CveKind::HeapOverreadLarge),
    ("autotrace", "CVE-2017-9168", CveKind::HeapOverreadLarge),
    ("autotrace", "CVE-2017-9169", CveKind::HeapOverflowLarge),
    ("autotrace", "CVE-2017-9170", CveKind::HeapOverreadLarge),
    ("autotrace", "CVE-2017-9171", CveKind::HeapOverflowLarge),
    ("autotrace", "CVE-2017-9172", CveKind::HeapOverreadLarge),
    ("autotrace", "CVE-2017-9173", CveKind::HeapOverflowLarge),
    ("imageworsener", "CVE-2017-9204", CveKind::HeapOverflowLarge),
    ("imageworsener", "CVE-2017-9205", CveKind::HeapOverflowLarge),
    ("imageworsener", "CVE-2017-9206", CveKind::HeapOverreadLarge),
    ("imageworsener", "CVE-2017-9207", CveKind::HeapOverreadLarge),
    ("lame", "CVE-2015-9101", CveKind::HeapOverflowLarge),
    ("zziplib", "CVE-2017-5976", CveKind::HeapOverflowLarge),
    ("zziplib", "CVE-2017-5977", CveKind::HeapOverreadLarge),
    ("libtiff", "CVE-2016-10270", CveKind::HeapOverreadLarge),
    ("libtiff", "CVE-2016-10271", CveKind::HeapOverflowLarge),
    ("libtiff", "CVE-2016-10095", CveKind::HeapUnderflow),
    ("potrace", "CVE-2017-7263", CveKind::HeapOverflowLarge),
    ("mp3gain", "CVE-2017-14407", CveKind::HeapUnderflow),
    ("mp3gain", "CVE-2017-14408", CveKind::HeapOverflowLarge),
    ("mp3gain", "CVE-2017-14409", CveKind::HeapOverflowRounded),
];

/// Builds every CVE scenario of Table 4.
///
/// # Example
///
/// ```
/// let cves = giantsan_workloads::cve_scenarios();
/// assert_eq!(cves.len(), 25);
/// assert!(cves.iter().any(|c| c.cve == "CVE-2017-12858"));
/// ```
pub fn cve_scenarios() -> Vec<CveScenario> {
    ROWS.iter()
        .map(|&(project, cve, kind)| {
            let (program, inputs) = match kind {
                CveKind::HeapOverflowLarge => heap_overflow_large(),
                CveKind::HeapOverflowRounded => heap_overflow_rounded(),
                CveKind::HeapOverreadLarge => heap_overread_large(),
                CveKind::HeapUnderflow => heap_underflow(),
                CveKind::UseAfterFreeRealloc => uaf_realloc(),
            };
            CveScenario {
                project,
                cve,
                kind,
                program,
                inputs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_baselines::{Asan, Lfp};
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, ExecConfig};
    use giantsan_runtime::RuntimeConfig;

    #[test]
    fn giantsan_and_asan_detect_every_cve() {
        for c in cve_scenarios() {
            let plan = analyze(&c.program, &ToolProfile::giantsan()).plan;
            let mut g = GiantSan::new(RuntimeConfig::small());
            let r = run(&c.program, &c.inputs, &mut g, &plan, &ExecConfig::default());
            assert!(r.detected(), "GiantSan missed {}", c.cve);

            let plan = analyze(&c.program, &ToolProfile::asan()).plan;
            let mut a = Asan::new(RuntimeConfig::small());
            let r = run(&c.program, &c.inputs, &mut a, &plan, &ExecConfig::default());
            assert!(r.detected(), "ASan missed {}", c.cve);
        }
    }

    #[test]
    fn lfp_misses_exactly_the_three_paper_rows() {
        let mut missed = Vec::new();
        for c in cve_scenarios() {
            let plan = analyze(&c.program, &ToolProfile::lfp()).plan;
            let mut l = Lfp::new(RuntimeConfig::small());
            let r = run(&c.program, &c.inputs, &mut l, &plan, &ExecConfig::default());
            if !r.detected() {
                missed.push(c.cve);
            }
        }
        assert_eq!(
            missed,
            vec!["CVE-2017-12858", "CVE-2017-9165", "CVE-2017-14409"],
            "LFP misses must match Table 4"
        );
    }
}
