//! Buffer traversal patterns (Figure 11 of the paper).
//!
//! The paper's §5.4 limitation study measures three traversal orders over a
//! buffer, with unbounded (statically opaque) loops so that history caching
//! — not check promotion — is the operative optimisation:
//!
//! * **forward** — ascending offsets from the base pointer: the quasi-bound
//!   converges in `⌈log2(n/8)⌉` updates, then every access is a cache hit;
//! * **random** — data-driven offsets: same convergence, which is where
//!   GiantSan's 1.48× advantage over ASan comes from;
//! * **reverse** — descending accesses anchored at the buffer *end* (the
//!   `while (p > start) *--p` idiom): every offset is negative, the paper
//!   keeps no quasi-lower-bound, so each access pays a dedicated underflow
//!   region check — the case where GiantSan is 1.39× *slower* than ASan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// Traversal order over the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Lowest to highest address.
    Forward,
    /// Uniformly shuffled order.
    Random,
    /// Highest to lowest address, anchored at the buffer end.
    Reverse,
}

impl Pattern {
    /// All three patterns, in the figure's order.
    pub const ALL: [Pattern; 3] = [Pattern::Forward, Pattern::Random, Pattern::Reverse];

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Forward => "forward",
            Pattern::Random => "random",
            Pattern::Reverse => "reverse",
        }
    }
}

/// Builds a traversal program over an `n`-byte buffer (8-byte reads, one
/// per segment), repeated `rounds` times. Returns the program and inputs.
///
/// # Panics
///
/// Panics if `n` is not a positive multiple of 8.
///
/// # Example
///
/// ```
/// use giantsan_workloads::{traversal_program, Pattern};
/// let (prog, inputs) = traversal_program(Pattern::Random, 4096, 2);
/// assert_eq!(inputs[0], 4096 / 8);
/// ```
pub fn traversal_program(pattern: Pattern, n: u64, rounds: u64) -> (Program, Vec<i64>) {
    assert!(
        n > 0 && n.is_multiple_of(8),
        "buffer size must be a multiple of 8"
    );
    let words = (n / 8) as i64;
    let mut b = ProgramBuilder::new(match pattern {
        Pattern::Forward => "traverse-forward",
        Pattern::Random => "traverse-random",
        Pattern::Reverse => "traverse-reverse",
    });
    let w = b.input(0);
    let buf = b.alloc_heap(Expr::input(0) * 8);
    let mut inputs = vec![words, rounds as i64];
    b.for_loop(0i64, Expr::input(1), |b, _| match pattern {
        Pattern::Forward => {
            b.for_loop_opaque(0i64, w.clone(), |b, i| {
                b.load_discard(buf, Expr::var(i) * 8, 8);
            });
        }
        Pattern::Random => {
            b.for_loop_opaque(0i64, w.clone(), |b, i| {
                let j = b.let_(Expr::input_at(Expr::var(i) + 2));
                b.load_discard(buf, Expr::var(j) * 8, 8);
            });
        }
        Pattern::Reverse => {
            // Anchor at the buffer end: `end[-(i+1)*8]`, the paper's
            // worst-case idiom.
            let end = b.ptr_add(buf, Expr::input(0) * 8);
            b.for_loop_opaque(0i64, w.clone(), |b, i| {
                b.load_discard(end, (Expr::var(i) + 1) * -8, 8);
            });
        }
    });
    b.free(buf);
    if pattern == Pattern::Random {
        let mut rng = StdRng::seed_from_u64(n ^ 0xfee1);
        let mut idx: Vec<i64> = (0..words).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        inputs.extend(idx);
    }
    (b.build(), inputs)
}

/// The buffer sizes of Figure 11's x-axis (1 KB – 16 KB).
pub fn figure11_sizes() -> Vec<u64> {
    vec![1024, 2048, 4096, 8192, 12288, 16384]
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_baselines::Asan;
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, CheckPlan, ExecConfig, Termination};
    use giantsan_runtime::{RuntimeConfig, Sanitizer};

    #[test]
    fn all_patterns_clean_under_all_tools() {
        for pattern in Pattern::ALL {
            let (prog, inputs) = traversal_program(pattern, 2048, 2);
            let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
            let mut g = GiantSan::new(RuntimeConfig::small());
            let r = run(&prog, &inputs, &mut g, &plan, &ExecConfig::default());
            assert_eq!(r.termination, Termination::Finished, "{pattern:?}");
            assert!(r.reports.is_empty(), "{pattern:?}: {:?}", r.reports.first());

            let mut a = Asan::new(RuntimeConfig::small());
            let r = run(
                &prog,
                &inputs,
                &mut a,
                &CheckPlan::all_direct(&prog),
                &ExecConfig::default(),
            );
            assert!(r.reports.is_empty(), "{pattern:?} asan");
        }
    }

    #[test]
    fn forward_and_random_mostly_hit_the_cache() {
        for pattern in [Pattern::Forward, Pattern::Random] {
            let (prog, inputs) = traversal_program(pattern, 4096, 1);
            let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
            let mut g = GiantSan::new(RuntimeConfig::small());
            run(&prog, &inputs, &mut g, &plan, &ExecConfig::default());
            let c = g.counters();
            let accesses = 4096 / 8;
            assert!(
                c.cache_hits >= accesses - 16,
                "{pattern:?}: only {} hits of {accesses}",
                c.cache_hits
            );
        }
    }

    #[test]
    fn reverse_never_hits_the_cache() {
        let (prog, inputs) = traversal_program(Pattern::Reverse, 4096, 1);
        let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
        let mut g = GiantSan::new(RuntimeConfig::small());
        run(&prog, &inputs, &mut g, &plan, &ExecConfig::default());
        let c = g.counters();
        assert_eq!(c.cache_hits, 0, "no quasi-lower-bound exists (§5.4)");
        assert!(c.underflow_checks >= 4096 / 8);
    }

    #[test]
    fn giantsan_loads_less_shadow_than_asan_on_random() {
        let (prog, inputs) = traversal_program(Pattern::Random, 8192, 1);
        let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
        let mut g = GiantSan::new(RuntimeConfig::small());
        run(&prog, &inputs, &mut g, &plan, &ExecConfig::default());
        let mut a = Asan::new(RuntimeConfig::small());
        run(
            &prog,
            &inputs,
            &mut a,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert!(
            g.counters().shadow_loads * 10 < a.counters().shadow_loads,
            "GiantSan {} vs ASan {}",
            g.counters().shadow_loads,
            a.counters().shadow_loads
        );
    }

    #[test]
    fn reverse_costs_more_shadow_loads_than_asan() {
        let (prog, inputs) = traversal_program(Pattern::Reverse, 4096, 1);
        let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
        let mut g = GiantSan::new(RuntimeConfig::small());
        run(&prog, &inputs, &mut g, &plan, &ExecConfig::default());
        let mut a = Asan::new(RuntimeConfig::small());
        run(
            &prog,
            &inputs,
            &mut a,
            &CheckPlan::all_direct(&prog),
            &ExecConfig::default(),
        );
        assert!(
            g.counters().shadow_loads > a.counters().shadow_loads,
            "the reverse pattern must be GiantSan's weak spot"
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn unaligned_size_rejected() {
        let _ = traversal_program(Pattern::Forward, 100, 1);
    }
}
