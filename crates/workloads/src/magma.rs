//! Magma-like redzone-bypass study (Table 5 of the paper).
//!
//! Magma's 58,969 fuzzing test cases distil, for redzone purposes, into one
//! question per case: *how far past the object does the proof-of-concept
//! access land?* Four geometries appear:
//!
//! * **near** — within 16 bytes of the end: caught by any redzone setting;
//! * **mid** — beyond the 16-byte redzone but inside a 512-byte one: a
//!   neighbouring object absorbs the access under `rz=16` (the classic
//!   bypass), while `rz=512` and anchor-based checks report it;
//! * **far** — beyond even a 512-byte redzone (the CVE-2018-14883-class PHP
//!   POCs): only the anchor-based check catches it;
//! * **non-memory** — POCs for non-address bugs no sanitizer reports.
//!
//! Counts per project reproduce Table 5's totals; the 463 = 2019 − 1556 and
//! 57 = 2019 − 1962 PHP gaps come from the mid and far families.

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// Geometry class of one Magma-like POC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PocClass {
    /// Overflow distance < 16 bytes.
    Near,
    /// Overflow distance within [48, 400] bytes — bypasses a 16-byte
    /// redzone into a neighbouring object.
    Mid,
    /// Overflow distance ≥ 1100 bytes — bypasses even a 512-byte redzone.
    Far,
    /// Not an address-safety bug.
    NonMemory,
}

/// One Magma-like test case.
#[derive(Debug, Clone)]
pub struct MagmaCase {
    /// Project name (Table 5 rows).
    pub project: &'static str,
    /// Geometry class.
    pub class: PocClass,
    /// Which template program to run (index into [`magma_templates`]).
    pub template: usize,
    /// Inputs.
    pub inputs: Vec<i64>,
}

/// Per-project Table 5 row: `(project, loc, near, mid, far, total)`.
pub const PROJECTS: &[(&str, &str, u32, u32, u32, u32)] = &[
    ("php", "1.3M", 1556, 406, 57, 3072),
    ("libpng", "86K", 1881, 0, 0, 1881),
    ("libtiff", "91K", 9858, 0, 0, 9858),
    ("libxml2", "284K", 30566, 0, 0, 30574),
    ("openssl", "535K", 46, 0, 0, 1509),
    ("sqlite3", "367K", 1528, 0, 0, 1528),
    ("poppler", "43K", 10201, 0, 0, 10547),
];

/// Builds the two template programs: index 0 is the overflow POC, index 1
/// the non-memory workload.
pub fn magma_templates() -> Vec<Program> {
    // 0: overflow POC. `in0` = object size, `in1` = absolute store offset
    // from the object base. A large neighbour absorbs bypassing accesses.
    let mut b = ProgramBuilder::new("magma-poc");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    let victim = b.alloc_heap(4096);
    b.store(victim, 0i64, 8, 1i64); // keep the neighbour live and touched
    b.store(p, Expr::input(1), 1, 0x41i64);
    b.free(victim);
    b.free(p);
    let poc = b.build();

    // 1: non-memory bug (e.g. an integer/logic error): valid accesses only.
    let mut b = ProgramBuilder::new("magma-nonmem");
    let n = b.input(0);
    let p = b.alloc_heap(256);
    b.for_loop(0i64, n, |b, i| {
        b.store(p, (Expr::var(i) * 8) - (Expr::var(i) * 8), 8, Expr::var(i));
    });
    b.free(p);
    let nonmem = b.build();

    vec![poc, nonmem]
}

fn class_offset(size: i64, class: PocClass, salt: u32) -> i64 {
    // Offsets are measured from the 8-aligned end of the object so the
    // geometry is stable across sizes.
    let end8 = (size + 7) / 8 * 8;
    match class {
        PocClass::Near => end8 + (salt as i64 % 8),
        PocClass::Mid => end8 + 48 + (salt as i64 % 350),
        PocClass::Far => end8 + 1100 + (salt as i64 % 1800),
        PocClass::NonMemory => 0,
    }
}

/// Generates every `div`-th case of the full 58,969-case corpus
/// (`div = 1` reproduces Table 5 exactly; larger values keep the
/// per-project proportions).
///
/// # Example
///
/// ```
/// let cases = giantsan_workloads::magma_cases(1);
/// assert_eq!(cases.len(), 58_969);
/// let php: Vec<_> = cases.iter().filter(|c| c.project == "php").collect();
/// assert_eq!(php.len(), 3072);
/// ```
pub fn magma_cases(div: u32) -> Vec<MagmaCase> {
    let div = div.max(1);
    let sizes = [40i64, 100, 200, 333, 600, 1000];
    let mut out = Vec::new();
    for &(project, _, near, mid, far, total) in PROJECTS {
        let nonmem = total - near - mid - far;
        let families = [
            (PocClass::Near, near),
            (PocClass::Mid, mid),
            (PocClass::Far, far),
            (PocClass::NonMemory, nonmem),
        ];
        for (class, count) in families {
            for i in (0..count).step_by(div as usize) {
                let case = match class {
                    PocClass::NonMemory => MagmaCase {
                        project,
                        class,
                        template: 1,
                        inputs: vec![4 + (i as i64 % 12)],
                    },
                    _ => {
                        let size = sizes[i as usize % sizes.len()];
                        MagmaCase {
                            project,
                            class,
                            template: 0,
                            inputs: vec![size, class_offset(size, class, i)],
                        }
                    }
                };
                out.push(case);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_baselines::Asan;
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, ExecConfig};
    use giantsan_runtime::RuntimeConfig;

    fn detected(case: &MagmaCase, anchored: bool, rz: u64) -> bool {
        let templates = magma_templates();
        let prog = &templates[case.template];
        let cfg = RuntimeConfig::small().to_builder().redzone(rz).build();
        if anchored {
            let plan = analyze(prog, &ToolProfile::giantsan()).plan;
            let mut san = GiantSan::new(cfg);
            run(prog, &case.inputs, &mut san, &plan, &ExecConfig::default()).detected()
        } else {
            let plan = analyze(prog, &ToolProfile::asan()).plan;
            let mut san = Asan::new(cfg);
            run(prog, &case.inputs, &mut san, &plan, &ExecConfig::default()).detected()
        }
    }

    #[test]
    fn geometry_drives_detection() {
        let cases = magma_cases(500);
        for case in cases.iter().filter(|c| c.project == "php") {
            match case.class {
                PocClass::Near => {
                    assert!(detected(case, false, 16), "near must be caught at rz=16");
                    assert!(detected(case, true, 16));
                }
                PocClass::Mid => {
                    assert!(!detected(case, false, 16), "mid bypasses rz=16");
                    assert!(detected(case, false, 512), "mid caught at rz=512");
                    assert!(detected(case, true, 16), "anchor catches mid at rz=16");
                }
                PocClass::Far => {
                    assert!(!detected(case, false, 16));
                    assert!(!detected(case, false, 512), "far bypasses rz=512");
                    assert!(detected(case, true, 16), "anchor catches far");
                }
                PocClass::NonMemory => {
                    assert!(!detected(case, false, 16));
                    assert!(!detected(case, true, 16));
                }
            }
        }
    }

    #[test]
    fn corpus_counts_match_table_5() {
        let cases = magma_cases(1);
        assert_eq!(cases.len(), 58_969);
        for &(project, _, near, mid, far, total) in PROJECTS {
            let n = cases.iter().filter(|c| c.project == project).count();
            assert_eq!(n as u32, total, "{project}");
            let spatial = cases
                .iter()
                .filter(|c| c.project == project && c.class != PocClass::NonMemory)
                .count();
            assert_eq!(spatial as u32, near + mid + far, "{project} spatial");
        }
    }
}
