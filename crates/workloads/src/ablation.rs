//! Workloads for the supporting ablation studies (DESIGN.md §5).
//!
//! * [`quarantine_probe`] — a use-after-free whose dangling access happens
//!   after a configurable volume of allocation churn: whether the quarantine
//!   still holds the freed block when the dangling pointer strikes decides
//!   detection (the paper's §5.4 "quarantine bypassing" limitation, made
//!   measurable);
//! * [`underflow_bypass_probe`] — a large negative offset landing inside a
//!   neighbouring object: detected by anchored underflow checks, missed by
//!   instruction-level ones (drives the §5.4 first-alternative trade-off).

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// Builds a use-after-free probe: free a 64-byte target, run `churn_bytes`
/// of allocation traffic (1 KiB blocks, allocated and freed), then read
/// through the dangling pointer.
///
/// With a quarantine capacity above `churn_bytes` the freed block is still
/// poisoned when the dangling read happens; below it, the block has been
/// recycled and reallocated, and every quarantine-based tool goes blind.
///
/// # Example
///
/// ```
/// let (prog, inputs) = giantsan_workloads::quarantine_probe(16 << 10);
/// assert_eq!(inputs[0], (16 << 10) / 1024);
/// let _ = prog;
/// ```
pub fn quarantine_probe(churn_bytes: u64) -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("quarantine-probe");
    let rounds = b.input(0);
    let target = b.alloc_heap(64);
    // A live separator pins the target's hole: once recycled it cannot
    // coalesce with churn blocks, and the 1 KiB churn allocations cannot
    // fit it — so the small squatter below deterministically reoccupies
    // the target's exact slot.
    let separator = b.alloc_heap(64);
    b.store(separator, 0i64, 8, 3i64);
    b.store(target, 0i64, 8, 7i64);
    b.free(target);
    // Churn: each round allocates and frees 1 KiB, pushing the target
    // through the quarantine FIFO.
    b.for_loop(0i64, rounds, |b, _| {
        let t = b.alloc_heap(1024);
        b.store(t, 0i64, 8, 1i64);
        b.free(t);
    });
    // Reallocate the slot (first fit hands the recycled block back), then
    // strike through the dangling pointer.
    let squatter = b.alloc_heap(64);
    b.store(squatter, 0i64, 8, 9i64);
    b.load_discard(target, 0i64, 8);
    b.free(squatter);
    b.free(separator);
    (b.build(), vec![(churn_bytes / 1024) as i64])
}

/// Builds an underflow probe: a buffer sits above a victim object, and a
/// parsed (attacker-controlled) negative index reaches back into the victim.
///
/// Inputs: `in0` = victim size, `in1` = negative byte offset from the
/// buffer base.
pub fn underflow_bypass_probe() -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("underflow-bypass");
    let victim_size = b.input(0);
    let victim = b.alloc_heap(victim_size);
    b.store(victim, 0i64, 8, 0x5ec2e7i64);
    let buf = b.alloc_heap(64);
    // The buggy access: buf[in1] with in1 < 0 reaching into the victim.
    b.store(buf, Expr::input(1), 1, 0x41i64);
    b.free(buf);
    b.free(victim);
    (b.build(), vec![256, -72])
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, ExecConfig};
    use giantsan_runtime::RuntimeConfig;

    #[test]
    fn quarantine_size_decides_detection() {
        let (prog, inputs) = quarantine_probe(64 << 10);
        let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
        // Large quarantine: the dangling read still sees poison.
        let mut big = GiantSan::builder()
            .config(
                RuntimeConfig::small()
                    .to_builder()
                    .quarantine_cap(1 << 20)
                    .build(),
            )
            .build();
        let r = run(&prog, &inputs, &mut big, &plan, &ExecConfig::default());
        assert!(r.detected(), "large quarantine must detect");
        // Tiny quarantine: the slot is recycled and re-used — bypassed.
        let mut small = GiantSan::builder()
            .config(
                RuntimeConfig::small()
                    .to_builder()
                    .quarantine_cap(1 << 10)
                    .build(),
            )
            .build();
        let r = run(&prog, &inputs, &mut small, &plan, &ExecConfig::default());
        assert!(!r.detected(), "tiny quarantine must be bypassed");
    }

    #[test]
    fn underflow_probe_reaches_the_victim() {
        let (prog, inputs) = underflow_bypass_probe();
        let plan = analyze(&prog, &ToolProfile::giantsan()).plan;
        let mut san = GiantSan::new(RuntimeConfig::small());
        let r = run(&prog, &inputs, &mut san, &plan, &ExecConfig::default());
        assert!(r.detected(), "anchored underflow check must catch it");
    }
}
