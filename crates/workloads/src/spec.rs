//! SPEC CPU2017-like synthetic workloads (the rows of Table 2).
//!
//! The paper's performance study runs the 24 C/C++ SPEC CPU2017 benchmarks.
//! Those inputs and sources cannot ship here, so each benchmark is replaced
//! by a kernel reproducing its *dominant memory-access pattern* — the factor
//! sanitizer overhead actually depends on: how many accesses sit in bounded
//! affine loops (promotable), how many are data-dependent (cacheable), how
//! much is stack-allocated (LFP's weakness), how much flows through
//! `memset`/`memcpy` (linear vs O(1) guardians), and how much allocation
//! churn blocks hoisting. The kernels are small, deterministic, and scale
//! with a single factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// A runnable workload: a program plus its inputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// SPEC-style row id, e.g. `"519.lbm_r"`.
    pub id: String,
    /// Kernel family name, e.g. `"stencil"`.
    pub kernel: &'static str,
    /// The mini-IR program.
    pub program: Program,
    /// Runtime inputs (sizes plus data tapes).
    pub inputs: Vec<i64>,
}

/// Deterministic shuffled indexes in `0..n`, used as a data tape.
fn shuffled(n: i64, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<i64> = (0..n).collect();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// `perlbench`: interpreter dispatch — hash-table probes with data-dependent
/// indexes inside an opaque loop, short string copies, field accesses.
fn perl_interp(scale: u64) -> (Program, Vec<i64>) {
    let ops = (400 * scale) as i64;
    let tbl = 512i64;
    let mut b = ProgramBuilder::new("perl-interp");
    let n_ops = b.input(0);
    let table = b.alloc_heap(tbl * 8);
    let strings = b.alloc_heap(4096);
    let scratch = b.alloc_heap(256);
    // Fill the hash table (bounded, promotable for capable tools) with
    // in-range probe targets from the shuffled tape.
    b.for_loop(0i64, tbl, |b, i| {
        b.store(table, Expr::var(i) * 8, 8, Expr::input_at(Expr::var(i) + 2));
    });
    // Opcode dispatch: opaque trip count, data-dependent probes. Every value
    // stored into the table stays below `tbl`, keeping probe chains in
    // bounds.
    b.for_loop_opaque(0i64, n_ops, |b, i| {
        let h = b.let_(Expr::input_at(Expr::var(i) + 2));
        let slot = b.load(table, Expr::var(h) * 8, 8); // cached (data-dep)
                                                       // The bucket is manipulated through a derived pointer, like a perl
                                                       // SV*: the pointer changes per op, so these stay fast-checked.
        let sv = b.ptr_add(table, Expr::var(slot) * 8);
        let refcnt = b.load(sv, 0i64, 8);
        b.store(
            sv,
            0i64,
            8,
            Expr::var(refcnt) - Expr::var(refcnt) + Expr::var(h),
        );
        // Short string op: constant-offset header then a small copy.
        b.load_discard(strings, 0i64, 8);
        b.load_discard(strings, 8i64, 8);
        b.memcpy(scratch, 0i64, strings, 16i64, 24i64);
    });
    b.free(scratch);
    b.free(strings);
    b.free(table);
    let mut inputs = vec![ops, tbl];
    inputs.extend(shuffled(tbl, 0x9e1));
    // Extend the tape so i+2 never runs off it.
    while (inputs.len() as i64) < ops + 2 {
        let k = inputs.len();
        inputs.push(inputs[2 + (k % tbl as usize)]);
    }
    (b.build(), inputs)
}

/// `gcc`: IR manipulation — node-pool allocation churn, constant-offset
/// field writes, pointer-chasing reads.
fn gcc_ir(scale: u64) -> (Program, Vec<i64>) {
    let nodes = (300 * scale) as i64;
    let mut b = ProgramBuilder::new("gcc-ir");
    let n = b.input(0);
    let pool = b.alloc_heap(nodes * 8);
    b.for_loop(0i64, n, |b, i| {
        // Allocation inside the loop: a hoisting barrier for every tool.
        let node = b.alloc_heap(48);
        // Field initialisation at constant offsets (must-alias mergeable).
        b.store(node, 0i64, 8, Expr::var(i));
        b.store(node, 8i64, 8, Expr::var(i) + 1);
        b.store(node, 16i64, 8, 0i64);
        b.store(node, 40i64, 4, 7i64);
        // Chase a data-dependent edge through the pool, manipulating the
        // successor through a derived use-def pointer.
        let succ = b.let_(Expr::input_at(Expr::var(i) + 1));
        let edge = b.load(pool, Expr::var(succ) * 8, 8);
        let def = b.ptr_add(pool, Expr::var(edge) * 8);
        let uses = b.load(def, 0i64, 8);
        b.store(
            def,
            0i64,
            8,
            Expr::var(uses) - Expr::var(uses) + Expr::var(succ),
        );
        b.free(node);
    });
    b.free(pool);
    let mut inputs = vec![nodes];
    inputs.extend(shuffled(nodes, 0x6cc));
    inputs.push(0);
    (b.build(), inputs)
}

/// `mcf`: network simplex — long affine scans over the arc array plus
/// data-dependent node follows.
fn mcf_simplex(scale: u64) -> (Program, Vec<i64>) {
    let arcs = (2000 * scale) as i64;
    let mut b = ProgramBuilder::new("mcf-simplex");
    let n = b.input(0);
    let arc = b.alloc_heap(arcs * 8);
    let node = b.alloc_heap(arcs * 8);
    b.for_loop(0i64, n.clone(), |b, i| {
        b.store(arc, Expr::var(i) * 8, 8, Expr::input_at(Expr::var(i) + 1));
    });
    // Price scan: promotable affine pass over the arcs, plus a follow of
    // each arc's head through a derived node pointer (fast-checked: the
    // pointer changes every iteration).
    b.for_loop(0i64, n, |b, i| {
        let cost = b.load(arc, Expr::var(i) * 8, 8);
        // Potential lookup through the stable node array (cacheable), then
        // an update through the derived head pointer (fast-checked).
        b.load_discard(node, Expr::var(cost) * 8, 8);
        let head = b.ptr_add(node, Expr::var(cost) * 8);
        let pot = b.load(head, 0i64, 8);
        b.store(head, 0i64, 8, Expr::var(pot) + 1);
    });
    b.free(node);
    b.free(arc);
    let mut inputs = vec![arcs];
    inputs.extend(shuffled(arcs, 0x3cf));
    inputs.push(0);
    (b.build(), inputs)
}

/// `namd`: molecular dynamics — per-step stack-allocated temporaries and
/// highly promotable numeric loops.
fn namd_md(scale: u64) -> (Program, Vec<i64>) {
    let steps = (6 * scale) as i64;
    let atoms = 256i64;
    let mut b = ProgramBuilder::new("namd-md");
    let n_steps = b.input(0);
    let pos = b.alloc_heap(atoms * 8);
    let force = b.alloc_heap(atoms * 8);
    b.for_loop(0i64, n_steps, |b, _| {
        b.frame(|b| {
            let tmp = b.alloc_stack(atoms * 8);
            b.for_loop(0i64, atoms, |b, i| {
                let p = b.load(pos, Expr::var(i) * 8, 8);
                b.store(tmp, Expr::var(i) * 8, 8, Expr::var(p) * 3 + 1);
            });
            b.for_loop(0i64, atoms, |b, i| {
                let t = b.load(tmp, Expr::var(i) * 8, 8);
                let f = b.load(force, Expr::var(i) * 8, 8);
                b.store(pos, Expr::var(i) * 8, 8, Expr::var(t) + Expr::var(f));
            });
        });
    });
    b.free(force);
    b.free(pos);
    (b.build(), vec![steps])
}

/// `parest`: finite elements — dense matrix sweeps and row copies.
fn parest_fem(scale: u64) -> (Program, Vec<i64>) {
    let dim = 48i64;
    let sweeps = (3 * scale) as i64;
    let mut b = ProgramBuilder::new("parest-fem");
    let n_sweeps = b.input(0);
    let m = b.alloc_heap(dim * dim * 8);
    let rhs = b.alloc_heap(dim * 8);
    b.for_loop(0i64, n_sweeps, |b, _| {
        b.for_loop(0i64, dim, |b, r| {
            b.for_loop(0i64, dim, |b, c| {
                let v = b.load(m, (Expr::var(r) * dim + Expr::var(c)) * 8, 8);
                b.store(rhs, Expr::var(r) * 8, 8, Expr::var(v) + 1);
            });
            // Row copy via the intrinsic: a big region per call.
            b.memcpy(m, Expr::var(r) * (dim * 8), m, 0i64, dim * 8);
        });
    });
    b.free(rhs);
    b.free(m);
    (b.build(), vec![sweeps])
}

/// `povray`: ray tracing — per-ray stack frames, struct fields, scene
/// lookups.
fn povray_trace(scale: u64) -> (Program, Vec<i64>) {
    let rays = (250 * scale) as i64;
    let objs = 128i64;
    let mut b = ProgramBuilder::new("povray-trace");
    let n = b.input(0);
    let scene = b.alloc_heap(objs * 32);
    b.for_loop(0i64, objs, |b, i| {
        b.store(
            scene,
            Expr::var(i) * 32,
            8,
            Expr::input_at(Expr::var(i) + 1),
        );
    });
    b.for_loop_opaque(0i64, n, |b, i| {
        b.frame(|b| {
            let ray = b.alloc_stack(64);
            b.store(ray, 0i64, 8, Expr::var(i));
            b.store(ray, 8i64, 8, Expr::var(i) * 3);
            b.store(ray, 16i64, 8, 1i64);
            // The hit object is inspected through an object pointer that
            // changes per ray: fast-checked field reads.
            let oid = b.let_(Expr::input_at(Expr::var(i) + 1));
            let obj = b.ptr_add(scene, Expr::var(oid) * 32);
            let hit = b.load(obj, 0i64, 8);
            b.load_discard(obj, 8i64, 8);
            b.load_discard(obj, 16i64, 8);
            b.store(ray, 24i64, 8, Expr::var(hit));
            b.load_discard(ray, 24i64, 8);
        });
    });
    b.free(scene);
    let mut inputs = vec![rays];
    inputs.extend(shuffled(objs, 0x90f));
    while (inputs.len() as i64) < rays + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % objs as usize)]);
    }
    (b.build(), inputs)
}

/// `lbm`: lattice-Boltzmann — a stencil over a large grid, fully affine.
fn lbm_stencil(scale: u64) -> (Program, Vec<i64>) {
    let dim = 64i64;
    let steps = (4 * scale) as i64;
    let mut b = ProgramBuilder::new("lbm-stencil");
    let n_steps = b.input(0);
    let grid = b.alloc_heap(dim * dim * 8);
    let next = b.alloc_heap(dim * dim * 8);
    b.for_loop(0i64, n_steps, |b, _| {
        b.for_loop(1i64, dim - 1, |b, y| {
            b.for_loop(1i64, dim - 1, |b, x| {
                let idx = Expr::var(y) * dim + Expr::var(x);
                let c = b.load(grid, idx.clone() * 8, 8);
                let w = b.load(grid, (idx.clone() - 1) * 8, 8);
                let e = b.load(grid, (idx.clone() + 1) * 8, 8);
                let s = b.load(grid, (idx.clone() - dim) * 8, 8);
                let nn = b.load(grid, (idx.clone() + dim) * 8, 8);
                b.store(
                    next,
                    idx * 8,
                    8,
                    Expr::var(c) + Expr::var(w) + Expr::var(e) + Expr::var(s) + Expr::var(nn),
                );
            });
        });
        b.memcpy(grid, 0i64, next, 0i64, dim * dim * 8);
    });
    b.free(next);
    b.free(grid);
    (b.build(), vec![steps])
}

/// `omnetpp`: discrete-event simulation — allocation-heavy event queue.
fn omnetpp_events(scale: u64) -> (Program, Vec<i64>) {
    let events = (350 * scale) as i64;
    let mut b = ProgramBuilder::new("omnetpp-events");
    let n = b.input(0);
    let queue = b.alloc_heap(1024 * 8);
    b.for_loop(0i64, n, |b, i| {
        let ev = b.alloc_heap(64); // churn: barrier
        b.store(ev, 0i64, 8, Expr::var(i));
        b.store(ev, 8i64, 8, Expr::var(i) * 17);
        b.store(ev, 56i64, 8, 0i64);
        // The queue bucket is touched through a derived pointer (like a
        // heap node in omnetpp's event queue).
        let slot = b.let_(Expr::input_at(Expr::var(i) + 1));
        let bucket = b.ptr_add(queue, Expr::var(slot) * 8);
        let prev = b.load(bucket, 0i64, 8);
        b.store(bucket, 0i64, 8, Expr::var(prev) + 1);
        b.free(ev);
    });
    b.free(queue);
    let mut inputs = vec![events];
    inputs.extend(shuffled(1024, 0x0e7));
    while (inputs.len() as i64) < events + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % 1024)]);
    }
    (b.build(), inputs)
}

/// `xalancbmk`: XML transformation — pointer-chasing DOM walks.
fn xalanc_dom(scale: u64) -> (Program, Vec<i64>) {
    let nodes = 600i64;
    let walks = (220 * scale) as i64;
    let mut b = ProgramBuilder::new("xalanc-dom");
    let n_walks = b.input(0);
    let dom = b.alloc_heap(nodes * 16);
    b.for_loop(0i64, nodes, |b, i| {
        b.store(dom, Expr::var(i) * 16, 8, Expr::input_at(Expr::var(i) + 1));
        b.store(dom, Expr::var(i) * 16 + 8, 8, Expr::var(i));
    });
    b.for_loop_opaque(0i64, n_walks, |b, i| {
        // Three-hop pointer chase from a data-chosen root. Each hop forms a
        // *node pointer* (like `node->firstChild`), so the accessed pointer
        // changes every iteration: neither promotable nor cacheable — the
        // fast check carries these (FastOnly in Figure 10's terms).
        let root = b.let_(Expr::input_at(Expr::var(i) + 1));
        // First hop through the stable arena pointer (cacheable)...
        let c1 = b.load(dom, Expr::var(root) * 16, 8);
        b.load_discard(dom, Expr::var(root) * 16 + 8, 8);
        // ...then node-pointer hops (fast-checked).
        let n1 = b.ptr_add(dom, Expr::var(c1) * 16);
        let c2 = b.load(n1, 0i64, 8);
        let n2 = b.ptr_add(dom, Expr::var(c2) * 16);
        let c3 = b.load(n2, 0i64, 8);
        b.store(n2, 8i64, 8, Expr::var(c3) + Expr::var(i));
    });
    b.free(dom);
    let mut inputs = vec![walks];
    inputs.extend(shuffled(nodes, 0xd0a));
    while (inputs.len() as i64) < walks + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % nodes as usize)]);
    }
    (b.build(), inputs)
}

/// `deepsjeng`: game-tree search — per-ply stack frames with board copies.
fn deepsjeng_search(scale: u64) -> (Program, Vec<i64>) {
    let plies = (60 * scale) as i64;
    let board = 128i64;
    let mut b = ProgramBuilder::new("deepsjeng-search");
    let n = b.input(0);
    let root = b.alloc_heap(board * 8);
    b.for_loop(0i64, n, |b, i| {
        b.frame(|b| {
            let copy = b.alloc_stack(board * 8);
            b.memcpy(copy, 0i64, root, 0i64, board * 8);
            // Evaluate: affine scan over the copy.
            b.for_loop(0i64, board, |b, s| {
                b.load_discard(copy, Expr::var(s) * 8, 8);
            });
            // Make a data-dependent move on the root through a square
            // pointer (fast-checked each ply).
            let mv = b.let_(Expr::input_at(Expr::var(i) + 1));
            let sq = b.ptr_add(root, Expr::var(mv) * 8);
            let old = b.load(sq, 0i64, 8);
            b.store(sq, 0i64, 8, Expr::var(old) + 1);
        });
    });
    b.free(root);
    let mut inputs = vec![plies];
    inputs.extend(shuffled(board, 0xd33));
    while (inputs.len() as i64) < plies + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % board as usize)]);
    }
    (b.build(), inputs)
}

/// `imagick`: image filtering — big-buffer intrinsics plus affine passes.
fn imagick_filter(scale: u64) -> (Program, Vec<i64>) {
    let w = 128i64;
    let h = 64i64;
    let passes = (3 * scale) as i64;
    let mut b = ProgramBuilder::new("imagick-filter");
    let n_passes = b.input(0);
    let img = b.alloc_heap(w * h);
    let out = b.alloc_heap(w * h);
    b.memset(img, 0i64, w * h, 0x80i64);
    b.for_loop(0i64, n_passes, |b, _| {
        b.for_loop(0i64, h, |b, y| {
            b.for_loop(0i64, w - 1, |b, x| {
                let p = b.load(img, Expr::var(y) * w + Expr::var(x), 1);
                let q = b.load(img, Expr::var(y) * w + Expr::var(x) + 1, 1);
                b.store(
                    out,
                    Expr::var(y) * w + Expr::var(x),
                    1,
                    Expr::var(p) + Expr::var(q),
                );
            });
        });
        b.memcpy(img, 0i64, out, 0i64, w * h);
    });
    b.free(out);
    b.free(img);
    (b.build(), vec![passes])
}

/// `leela`: MCTS — node churn plus data-dependent tree descent.
fn leela_mcts(scale: u64) -> (Program, Vec<i64>) {
    let sims = (220 * scale) as i64;
    let tree = 512i64;
    let mut b = ProgramBuilder::new("leela-mcts");
    let n = b.input(0);
    let nodes = b.alloc_heap(tree * 16);
    b.for_loop(0i64, n, |b, i| {
        let path = b.alloc_heap(64); // churn
                                     // UCT descent: root hop through the stable arena (cacheable), then
                                     // per-node pointers (fast-checked).
        let n0 = b.let_(Expr::input_at(Expr::var(i) + 1));
        let n1 = b.load(nodes, Expr::var(n0) * 16, 8);
        let p1 = b.ptr_add(nodes, Expr::var(n1) * 16);
        let n2 = b.load(p1, 0i64, 8);
        let p2 = b.ptr_add(nodes, Expr::var(n2) * 16);
        let visits = b.load(p2, 8i64, 8);
        b.store(p2, 8i64, 8, Expr::var(visits) + 1);
        b.store(path, 0i64, 8, Expr::var(n2));
        b.free(path);
    });
    b.free(nodes);
    let mut inputs = vec![sims];
    inputs.extend(shuffled(tree, 0x1ee));
    while (inputs.len() as i64) < sims + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % tree as usize)]);
    }
    (b.build(), inputs)
}

/// `xz`: LZMA — window match copies with data-dependent offsets.
fn xz_lzma(scale: u64) -> (Program, Vec<i64>) {
    let window = 4096i64;
    let matches = (250 * scale) as i64;
    let mut b = ProgramBuilder::new("xz-lzma");
    let n = b.input(0);
    let win = b.alloc_heap(window);
    b.memset(win, 0i64, window, 0x11i64);
    b.for_loop_opaque(0i64, n, |b, i| {
        let dist = b.let_(Expr::input_at(Expr::var(i) + 1));
        // Match probe through the candidate pointer (fast-checked), like
        // LZMA's `pb = cur - dist` comparisons.
        // Hash probe via the stable window base (cacheable)...
        b.load_discard(win, Expr::var(dist), 1);
        b.load_discard(win, Expr::var(dist) + 1, 1);
        // ...then comparisons through the candidate pointer (fast-checked).
        let cand = b.ptr_add(win, Expr::var(dist));
        b.load_discard(cand, 2i64, 1);
        b.load_discard(cand, 3i64, 1);
        // Copy the match forward.
        b.memcpy(win, Expr::var(dist) + 64, win, Expr::var(dist), 32i64);
    });
    b.free(win);
    let mut inputs = vec![matches];
    let idx = shuffled(window - 128, 0x72a);
    inputs.extend(idx.iter().take(4000).copied());
    while (inputs.len() as i64) < matches + 1 {
        let k = inputs.len();
        inputs.push(inputs[1 + (k % 1000)]);
    }
    (b.build(), inputs)
}

/// `nab`: molecular modelling — plain affine numeric loops.
fn nab_min(scale: u64) -> (Program, Vec<i64>) {
    let atoms = 1200i64;
    let iters = (6 * scale) as i64;
    let mut b = ProgramBuilder::new("nab-min");
    let n_iters = b.input(0);
    let x = b.alloc_heap(atoms * 8);
    let g = b.alloc_heap(atoms * 8);
    b.for_loop(0i64, n_iters, |b, _| {
        b.for_loop(0i64, atoms, |b, i| {
            let xi = b.load(x, Expr::var(i) * 8, 8);
            let gi = b.load(g, Expr::var(i) * 8, 8);
            b.store(x, Expr::var(i) * 8, 8, Expr::var(xi) - Expr::var(gi));
        });
    });
    b.free(g);
    b.free(x);
    (b.build(), vec![iters])
}

type KernelFn = fn(u64) -> (Program, Vec<i64>);

/// The Table 2 rows: `(row id, kernel name, generator, scale multiplier)`.
/// Speed (`_s`) rows run larger scales than rate (`_r`) rows, as in SPEC.
const ROWS: &[(&str, &str, KernelFn, u64)] = &[
    ("500.perlbench_r", "perl-interp", perl_interp, 1),
    ("502.gcc_r", "gcc-ir", gcc_ir, 1),
    ("505.mcf_r", "mcf-simplex", mcf_simplex, 1),
    ("508.namd_r", "namd-md", namd_md, 1),
    ("510.parest_r", "parest-fem", parest_fem, 1),
    ("511.povray_r", "povray-trace", povray_trace, 1),
    ("519.lbm_r", "lbm-stencil", lbm_stencil, 1),
    ("520.omnetpp_r", "omnetpp-events", omnetpp_events, 1),
    ("523.xalancbmk_r", "xalanc-dom", xalanc_dom, 1),
    ("531.deepsjeng_r", "deepsjeng-search", deepsjeng_search, 1),
    ("538.imagick_r", "imagick-filter", imagick_filter, 1),
    ("541.leela_r", "leela-mcts", leela_mcts, 1),
    ("557.xz_r", "xz-lzma", xz_lzma, 1),
    ("600.perlbench_s", "perl-interp", perl_interp, 2),
    ("602.gcc_s", "gcc-ir", gcc_ir, 2),
    ("605.mcf_s", "mcf-simplex", mcf_simplex, 2),
    ("619.lbm_s", "lbm-stencil", lbm_stencil, 2),
    ("620.omnetpp_s", "omnetpp-events", omnetpp_events, 2),
    ("623.xalancbmk_s", "xalanc-dom", xalanc_dom, 2),
    ("631.deepsjeng_s", "deepsjeng-search", deepsjeng_search, 2),
    ("638.imagick_s", "imagick-filter", imagick_filter, 2),
    ("641.leela_s", "leela-mcts", leela_mcts, 2),
    ("644.nab_s", "nab-min", nab_min, 2),
    ("657.xz_s", "xz-lzma", xz_lzma, 2),
];

/// Builds the full 24-row SPEC-like suite at the given scale factor
/// (`scale = 1` is a quick run; the harness's `--full` uses larger values).
///
/// # Example
///
/// ```
/// let suite = giantsan_workloads::spec_suite(1);
/// assert_eq!(suite.len(), 24);
/// assert!(suite.iter().any(|w| w.id == "519.lbm_r"));
/// ```
pub fn spec_suite(scale: u64) -> Vec<Workload> {
    ROWS.iter()
        .map(|(id, kernel, gen, mult)| {
            let (program, inputs) = gen(scale * mult);
            Workload {
                id: (*id).to_string(),
                kernel,
                program,
                inputs,
            }
        })
        .collect()
}

/// Builds one workload by row id, at the given scale.
pub fn spec_workload(id: &str, scale: u64) -> Option<Workload> {
    ROWS.iter()
        .find(|(rid, ..)| *rid == id)
        .map(|(id, kernel, gen, mult)| {
            let (program, inputs) = gen(scale * mult);
            Workload {
                id: (*id).to_string(),
                kernel,
                program,
                inputs,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::{run, CheckPlan, ExecConfig, Termination};
    use giantsan_runtime::{NullSanitizer, RuntimeConfig};

    #[test]
    fn all_workloads_run_clean_natively() {
        for w in spec_suite(1) {
            let mut native = NullSanitizer::new(RuntimeConfig::default());
            let r = run(
                &w.program,
                &w.inputs,
                &mut native,
                &CheckPlan::none(&w.program),
                &ExecConfig::default(),
            );
            assert_eq!(
                r.termination,
                Termination::Finished,
                "{} did not finish: {:?}",
                w.id,
                r.termination
            );
            assert!(r.native_work > 100, "{} too trivial", w.id);
        }
    }

    #[test]
    fn workloads_are_memory_safe_under_giantsan() {
        // SPEC-like kernels must be clean programs: zero reports.
        for w in spec_suite(1) {
            let mut san = giantsan_core::GiantSan::new(RuntimeConfig::default());
            let analysis =
                giantsan_analysis::analyze(&w.program, &giantsan_analysis::ToolProfile::giantsan());
            let r = run(
                &w.program,
                &w.inputs,
                &mut san,
                &analysis.plan,
                &ExecConfig::default(),
            );
            assert_eq!(r.termination, Termination::Finished, "{}", w.id);
            assert!(
                r.reports.is_empty(),
                "{} raised false reports: {:?}",
                w.id,
                &r.reports[..r.reports.len().min(3)]
            );
        }
    }

    #[test]
    fn workloads_are_memory_safe_under_asan() {
        for w in spec_suite(1) {
            let mut san = giantsan_baselines::Asan::new(RuntimeConfig::default());
            let r = run(
                &w.program,
                &w.inputs,
                &mut san,
                &CheckPlan::all_direct(&w.program),
                &ExecConfig::default(),
            );
            assert_eq!(r.termination, Termination::Finished, "{}", w.id);
            assert!(
                r.reports.is_empty(),
                "{} raised: {:?}",
                w.id,
                r.reports.first()
            );
        }
    }

    #[test]
    fn checksums_match_between_native_and_sanitized() {
        for w in spec_suite(1).into_iter().take(6) {
            let mut native = NullSanitizer::new(RuntimeConfig::default());
            let rn = run(
                &w.program,
                &w.inputs,
                &mut native,
                &CheckPlan::none(&w.program),
                &ExecConfig::default(),
            );
            let mut san = giantsan_core::GiantSan::new(RuntimeConfig::default());
            let analysis =
                giantsan_analysis::analyze(&w.program, &giantsan_analysis::ToolProfile::giantsan());
            let rs = run(
                &w.program,
                &w.inputs,
                &mut san,
                &analysis.plan,
                &ExecConfig::default(),
            );
            assert_eq!(rn.checksum, rs.checksum, "{} diverged", w.id);
        }
    }

    #[test]
    fn scale_increases_work() {
        let w1 = spec_workload("505.mcf_r", 1).unwrap();
        let w2 = spec_workload("505.mcf_r", 3).unwrap();
        let mut n1 = NullSanitizer::new(RuntimeConfig::default());
        let mut n2 = NullSanitizer::new(RuntimeConfig::default());
        let r1 = run(
            &w1.program,
            &w1.inputs,
            &mut n1,
            &CheckPlan::none(&w1.program),
            &ExecConfig::default(),
        );
        let r2 = run(
            &w2.program,
            &w2.inputs,
            &mut n2,
            &CheckPlan::none(&w2.program),
            &ExecConfig::default(),
        );
        assert!(r2.native_work > 2 * r1.native_work);
    }

    #[test]
    fn unknown_row_is_none() {
        assert!(spec_workload("999.nothing", 1).is_none());
    }

    #[test]
    fn suite_is_deterministic() {
        let a = spec_suite(1);
        let b = spec_suite(1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.inputs, y.inputs, "{}", x.id);
            assert_eq!(x.program, y.program, "{}", x.id);
        }
    }
}
