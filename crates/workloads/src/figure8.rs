//! The paper's Figure 8a worked example, as a reusable workload.
//!
//! Five potential checks in the source loop become three in Figure 8c:
//! `CI(x, x + 4N)` hoisted to the pre-header, a quasi-bound cached check for
//! the data-dependent `y[j]`, and a guardian-checked `memset` — the program
//! every planner walkthrough in the paper (and this repo's golden plan
//! snapshots) is anchored on.

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// Builds the Figure 8a program plus an input vector sized by `n` (the loop
/// trip count).
///
/// # Example
///
/// ```
/// use giantsan_analysis::{analyze, SiteFate, ToolProfile};
/// let (prog, inputs) = giantsan_workloads::figure8_program(100);
/// assert_eq!(inputs, vec![100]);
/// let a = analyze(&prog, &ToolProfile::giantsan());
/// assert_eq!(a.fates[0], SiteFate::Promoted);
/// assert_eq!(a.fates[1], SiteFate::Cached);
/// assert_eq!(a.fates[2], SiteFate::MemIntrinsic);
/// ```
pub fn figure8_program(n: i64) -> (Program, Vec<i64>) {
    let mut b = ProgramBuilder::new("figure8");
    let trip = b.input(0);
    // int *x = p[0]; int *y = p[1]; modelled as two buffers. y is padded so
    // the data-dependent store y[4j] stays in bounds for j read from x.
    let x = b.alloc_heap(Expr::input(0) * 4);
    let y = b.alloc_heap(Expr::input(0) * 4 + 1024);
    b.for_loop(0i64, trip, |b, i| {
        let j = b.load(x, Expr::var(i) * 4, 4); // site 0: x[i]
        b.store(y, Expr::var(j) * 4, 4, Expr::var(i)); // site 1: y[j]
    });
    b.memset(x, 0i64, Expr::input(0) * 4, 0i64); // site 2
    b.free(x);
    b.free(y);
    (b.build(), vec![n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_ir::{run, CheckPlan, ExecConfig, Termination};
    use giantsan_runtime::{NullSanitizer, RuntimeConfig};

    #[test]
    fn figure8_runs_clean_natively() {
        let (prog, inputs) = figure8_program(64);
        let mut nul = NullSanitizer::new(RuntimeConfig::small());
        let r = run(
            &prog,
            &inputs,
            &mut nul,
            &CheckPlan::none(&prog),
            &ExecConfig::default(),
        );
        assert_eq!(r.termination, Termination::Finished);
        assert!(r.reports.is_empty());
    }
}
