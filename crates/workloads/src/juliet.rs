//! Juliet-Test-Suite-like detection cases (Table 3 of the paper).
//!
//! The real Juliet 1.3 suite cannot ship here; this module generates case
//! families with the same *error geometry* per CWE — buffer sizes, overflow
//! distances, stack vs heap placement, temporal ordering — because geometry
//! alone determines each tool's verdict:
//!
//! * small overflows within LFP's size-class rounding slack are invisible to
//!   LFP but land in redzones / unallocated shadow for the location tools;
//! * stack overflows are invisible to LFP (incomplete stack protection)
//!   unless they are large enough to fault;
//! * a handful of cases have the faulty access guarded by a false condition
//!   ("potential overflow caused by uninitialized values", §5.3) — nobody
//!   reports those;
//! * every case also has a *safe* input vector; all tools must stay silent
//!   on it (Juliet's non-buggy twins).
//!
//! Counts per CWE match the paper's Table 3 totals exactly.

use giantsan_ir::{Expr, Program, ProgramBuilder};

/// One Juliet-like case: a template program plus buggy and safe inputs.
#[derive(Debug, Clone)]
pub struct JulietCase {
    /// CWE number (121, 122, 124, 126, 127, 416, 476, 761).
    pub cwe: u32,
    /// Case index within its CWE family.
    pub index: u32,
    /// Index into [`JulietSuite::templates`].
    pub template: usize,
    /// Inputs that trigger the bug (or, for non-triggering cases, leave the
    /// guarded bad access dormant).
    pub buggy_inputs: Vec<i64>,
    /// Inputs for the safe twin: same program, in-bounds behaviour.
    pub safe_inputs: Vec<i64>,
    /// Whether the bug actually fires at runtime (a few Juliet cases have
    /// latent bugs that the inputs never trigger).
    pub triggering: bool,
}

/// The generated suite: shared template programs plus all cases.
#[derive(Debug, Clone)]
pub struct JulietSuite {
    /// Template programs, indexed by [`JulietCase::template`].
    pub templates: Vec<Program>,
    /// All cases, grouped by CWE in ascending order.
    pub cases: Vec<JulietCase>,
}

/// Template indexes (public so the harness can label results).
pub mod templates {
    /// Heap buffer, single 1-byte store at `in1` into an `in0`-byte object.
    pub const HEAP_WRITE: usize = 0;
    /// Heap buffer, single 1-byte load.
    pub const HEAP_READ: usize = 1;
    /// Stack buffer, single 1-byte store.
    pub const STACK_WRITE: usize = 2;
    /// Stack buffer, single 1-byte load.
    pub const STACK_READ: usize = 3;
    /// `memcpy` of `in2` bytes from an `in1`-byte heap source into an
    /// `in0`-byte stack buffer.
    pub const STACK_MEMCPY: usize = 4;
    /// Heap buffer written in a loop of `in1` 1-byte stores.
    pub const HEAP_WRITE_LOOP: usize = 5;
    /// Use-after-free: free then 8-byte load at `in1`.
    pub const UAF_READ: usize = 6;
    /// Null dereference: load through a never-assigned pointer.
    pub const NULL_READ: usize = 7;
    /// `free(p + in1)`.
    pub const INVALID_FREE: usize = 8;
    /// Heap store at `in1` guarded by `if (in2)`.
    pub const COND_HEAP_WRITE: usize = 9;
    /// Stack store at `in1` guarded by `if (in2)`.
    pub const COND_STACK_WRITE: usize = 10;
    /// Heap load at `in1` guarded by `if (in2)`.
    pub const COND_HEAP_READ: usize = 11;
    /// Heap `memcpy` of `in2` bytes into an `in0`-byte destination.
    pub const HEAP_MEMCPY: usize = 12;
    /// `strcpy` of an `in1`-character heap string into an `in0`-byte stack
    /// buffer (the classic CWE-121 shape, checked by the runtime guardian).
    pub const STACK_STRCPY: usize = 13;
}

fn build_templates() -> Vec<Program> {
    let mut out = Vec::new();

    // 0: HEAP_WRITE
    let mut b = ProgramBuilder::new("juliet-heap-write");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, Expr::input(1), 1, 42i64);
    b.free(p);
    out.push(b.build());

    // 1: HEAP_READ
    let mut b = ProgramBuilder::new("juliet-heap-read");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, 0i64, 1, 7i64);
    b.load_discard(p, Expr::input(1), 1);
    b.free(p);
    out.push(b.build());

    // 2: STACK_WRITE
    let mut b = ProgramBuilder::new("juliet-stack-write");
    let size = b.input(0);
    b.frame(|b| {
        let s = b.alloc_stack(size.clone());
        b.store(s, Expr::input(1), 1, 42i64);
    });
    out.push(b.build());

    // 3: STACK_READ
    let mut b = ProgramBuilder::new("juliet-stack-read");
    let size = b.input(0);
    b.frame(|b| {
        let s = b.alloc_stack(size.clone());
        b.store(s, 0i64, 1, 7i64);
        b.load_discard(s, Expr::input(1), 1);
    });
    out.push(b.build());

    // 4: STACK_MEMCPY
    let mut b = ProgramBuilder::new("juliet-stack-memcpy");
    let size = b.input(0);
    let srclen = b.input(1);
    let cpy = b.input(2);
    b.frame(|b| {
        let s = b.alloc_stack(size.clone());
        let src = b.alloc_heap(srclen.clone());
        b.memcpy(s, 0i64, src, 0i64, cpy.clone());
        b.free(src);
    });
    out.push(b.build());

    // 5: HEAP_WRITE_LOOP
    let mut b = ProgramBuilder::new("juliet-heap-write-loop");
    let size = b.input(0);
    let n = b.input(1);
    let p = b.alloc_heap(size);
    b.for_loop(0i64, n, |b, i| {
        b.store(p, Expr::var(i), 1, Expr::var(i));
    });
    b.free(p);
    out.push(b.build());

    // 6: UAF_READ — `in2` selects free-then-read (buggy) or read-then-free.
    let mut b = ProgramBuilder::new("juliet-uaf-read");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, 0i64, 8, 7i64);
    b.if_else(
        Expr::input(2),
        |b| {
            b.free(p);
            b.load_discard(p, Expr::input(1), 8);
        },
        |b| {
            b.load_discard(p, Expr::input(1), 8);
            b.free(p);
        },
    );
    out.push(b.build());

    // 7: NULL_READ — `in1` selects dereferencing the null pointer (buggy)
    // or a valid buffer.
    let mut b = ProgramBuilder::new("juliet-null-read");
    let _ = b.input(0);
    let valid = b.alloc_heap(64);
    let p = b.null_ptr();
    b.if_else(
        Expr::input(1),
        |b| b.load_discard(p, Expr::input(0), 8),
        |b| b.load_discard(valid, 0i64, 8),
    );
    b.free(valid);
    out.push(b.build());

    // 8: INVALID_FREE
    let mut b = ProgramBuilder::new("juliet-invalid-free");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.free_at(p, Expr::input(1));
    out.push(b.build());

    // 9: COND_HEAP_WRITE
    let mut b = ProgramBuilder::new("juliet-cond-heap-write");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.if_else(
        Expr::input(2),
        |b| b.store(p, Expr::input(1), 1, 42i64),
        |b| b.store(p, 0i64, 1, 42i64),
    );
    b.free(p);
    out.push(b.build());

    // 10: COND_STACK_WRITE
    let mut b = ProgramBuilder::new("juliet-cond-stack-write");
    let size = b.input(0);
    b.frame(|b| {
        let s = b.alloc_stack(size.clone());
        b.if_else(
            Expr::input(2),
            |b| b.store(s, Expr::input(1), 1, 42i64),
            |b| b.store(s, 0i64, 1, 42i64),
        );
    });
    out.push(b.build());

    // 11: COND_HEAP_READ
    let mut b = ProgramBuilder::new("juliet-cond-heap-read");
    let size = b.input(0);
    let p = b.alloc_heap(size);
    b.store(p, 0i64, 1, 7i64);
    b.if_else(
        Expr::input(2),
        |b| b.load_discard(p, Expr::input(1), 1),
        |b| b.load_discard(p, 0i64, 1),
    );
    b.free(p);
    out.push(b.build());

    // 12: HEAP_MEMCPY
    let mut b = ProgramBuilder::new("juliet-heap-memcpy");
    let size = b.input(0);
    let srclen = b.input(1);
    let cpy = b.input(2);
    let dst = b.alloc_heap(size);
    let src = b.alloc_heap(srclen);
    b.memcpy(dst, 0i64, src, 0i64, cpy);
    b.free(src);
    b.free(dst);
    out.push(b.build());

    // 13: STACK_STRCPY
    let mut b = ProgramBuilder::new("juliet-stack-strcpy");
    let size = b.input(0);
    let strlen = b.input(1);
    let src = b.alloc_heap(strlen.clone() + 1);
    b.memset(src, 0i64, strlen.clone(), 65i64);
    b.store(src, strlen, 1, 0i64);
    b.frame(|b| {
        let s = b.alloc_stack(size.clone());
        b.strcpy(s, 0i64, src, 0i64);
    });
    b.free(src);
    out.push(b.build());

    out
}

/// Juliet-like buffer sizes. All have at least 4 bytes of LFP size-class
/// rounding slack (`class_for(s) − s ≥ 4`), so small overflows are invisible
/// to rounded-up-bound tools.
const SLACK_SIZES: &[i64] = &[10, 17, 26, 40, 70, 100, 130, 200, 300, 700, 1000, 1500];

/// Sizes that are exactly LFP size classes (no slack at all).
const CLASS_SIZES: &[i64] = &[16, 32, 64, 128];

/// Small overflow distances (stay within redzones / rounding slack).
const SMALL_DELTAS: &[i64] = &[1, 2, 3, 4];

/// Large overread distances (escape any size-class slot).
const LARGE_DELTAS: &[i64] = &[512, 700, 1200, 2048];

fn pick(list: &[i64], i: u32) -> i64 {
    list[(i as usize) % list.len()]
}

/// Builds the full suite with the paper's Table 3 case counts
/// (121: 1439, 122: 1504, 124: 767, 126: 449, 127: 916, 416: 393, 476: 288,
/// 761: 192).
///
/// # Example
///
/// The per-CWE counts sum to 5948. (The paper's Table 3 prints 5075 in its
/// "Total" row, which does not equal the sum of its own per-CWE rows; this
/// reproduction matches the per-CWE rows, the numbers the study actually
/// compares.)
///
/// ```
/// let suite = giantsan_workloads::juliet_suite();
/// assert_eq!(suite.cases.len(), 5948);
/// assert_eq!(suite.cases.iter().filter(|c| c.cwe == 122).count(), 1504);
/// ```
pub fn juliet_suite() -> JulietSuite {
    juliet_suite_scaled(1)
}

/// Builds a reduced suite keeping every `div`-th case of each family
/// (`div = 1` is the full suite); proportions between sub-families are
/// preserved because membership is interleaved.
pub fn juliet_suite_scaled(div: u32) -> JulietSuite {
    let div = div.max(1);
    let mut cases = Vec::new();
    let mut gen = |cwe: u32, count: u32, f: &dyn Fn(u32) -> JulietCase| {
        for i in (0..count).step_by(div as usize) {
            cases.push(f(i));
        }
        let _ = cwe;
    };

    // CWE-121: stack buffer overflow. 1386 plain (LFP-blind), 49 faulting
    // (detected by everyone including LFP), 4 non-triggering.
    gen(121, 1439, &|i| {
        if i >= 1435 {
            // Non-triggering: guarded store, condition false at runtime.
            let s = pick(SLACK_SIZES, i);
            JulietCase {
                cwe: 121,
                index: i,
                template: templates::COND_STACK_WRITE,
                buggy_inputs: vec![s, s + pick(SMALL_DELTAS, i), 0],
                safe_inputs: vec![s, s - 1, 1],
                triggering: false,
            }
        } else if i >= 1386 {
            // Huge memcpy through the stack guard: faults for every tool.
            let s = pick(SLACK_SIZES, i).min(256);
            JulietCase {
                cwe: 121,
                index: i,
                template: templates::STACK_MEMCPY,
                buggy_inputs: vec![s, 256 << 10, 192 << 10],
                safe_inputs: vec![s, 256 << 10, s],
                triggering: true,
            }
        } else {
            let s = pick(SLACK_SIZES, i);
            let delta = pick(SMALL_DELTAS, i) + (i as i64 % 48);
            match i % 3 {
                0 => JulietCase {
                    cwe: 121,
                    index: i,
                    template: templates::STACK_READ,
                    buggy_inputs: vec![s, s + delta],
                    safe_inputs: vec![s, s - 1],
                    triggering: true,
                },
                1 => JulietCase {
                    cwe: 121,
                    index: i,
                    template: templates::STACK_WRITE,
                    buggy_inputs: vec![s, s + delta],
                    safe_inputs: vec![s, s - 1],
                    triggering: true,
                },
                // The strcpy shape: an (s + delta)-character string into an
                // s-byte stack buffer.
                _ => JulietCase {
                    cwe: 121,
                    index: i,
                    template: templates::STACK_STRCPY,
                    buggy_inputs: vec![s, s + delta],
                    safe_inputs: vec![s, s - 1],
                    triggering: true,
                },
            }
        }
    });

    // CWE-122: heap buffer overflow. 1500 within LFP rounding slack, 4 at
    // exact class sizes (LFP's only detections).
    gen(122, 1504, &|i| {
        if i >= 1500 {
            let s = pick(CLASS_SIZES, i);
            JulietCase {
                cwe: 122,
                index: i,
                template: templates::HEAP_WRITE,
                buggy_inputs: vec![s, s + 2],
                safe_inputs: vec![s, s - 1],
                triggering: true,
            }
        } else {
            let s = pick(SLACK_SIZES, i);
            let delta = pick(SMALL_DELTAS, i);
            match i % 3 {
                0 => JulietCase {
                    cwe: 122,
                    index: i,
                    template: templates::HEAP_WRITE_LOOP,
                    buggy_inputs: vec![s, s + delta],
                    safe_inputs: vec![s, s],
                    triggering: true,
                },
                1 => JulietCase {
                    cwe: 122,
                    index: i,
                    template: templates::HEAP_MEMCPY,
                    buggy_inputs: vec![s, s + 8, s + delta],
                    safe_inputs: vec![s, s + 8, s],
                    triggering: true,
                },
                _ => JulietCase {
                    cwe: 122,
                    index: i,
                    template: templates::HEAP_WRITE,
                    buggy_inputs: vec![s, s + delta - 1],
                    safe_inputs: vec![s, s - 1],
                    triggering: true,
                },
            }
        }
    });

    // CWE-124: buffer underwrite — negative heap offsets; every tool
    // detects them (LFP via the source-pointer bound).
    gen(124, 767, &|i| {
        let s = pick(SLACK_SIZES, i);
        let delta = pick(SMALL_DELTAS, i) + (i as i64 % 12);
        JulietCase {
            cwe: 124,
            index: i,
            template: templates::HEAP_WRITE,
            buggy_inputs: vec![s, -delta],
            safe_inputs: vec![s, 0],
            triggering: true,
        }
    });

    // CWE-126: buffer overread. 352 past the size-class slot (LFP sees
    // them), 89 within slack (LFP-blind), 8 non-triggering.
    gen(126, 449, &|i| {
        if i >= 441 {
            let s = pick(SLACK_SIZES, i);
            JulietCase {
                cwe: 126,
                index: i,
                template: templates::COND_HEAP_READ,
                buggy_inputs: vec![s, s + pick(SMALL_DELTAS, i), 0],
                safe_inputs: vec![s, s - 1, 1],
                triggering: false,
            }
        } else if i >= 352 {
            let s = pick(SLACK_SIZES, i);
            JulietCase {
                cwe: 126,
                index: i,
                template: templates::HEAP_READ,
                buggy_inputs: vec![s, s + pick(SMALL_DELTAS, i)],
                safe_inputs: vec![s, s - 1],
                triggering: true,
            }
        } else {
            let s = pick(SLACK_SIZES, i);
            JulietCase {
                cwe: 126,
                index: i,
                template: templates::HEAP_READ,
                buggy_inputs: vec![s, s + pick(LARGE_DELTAS, i)],
                safe_inputs: vec![s, s - 1],
                triggering: true,
            }
        }
    });

    // CWE-127: buffer underread — negative heap offsets, everyone detects.
    gen(127, 916, &|i| {
        let s = pick(SLACK_SIZES, i);
        let delta = pick(SMALL_DELTAS, i) + (i as i64 % 24);
        JulietCase {
            cwe: 127,
            index: i,
            template: templates::HEAP_READ,
            buggy_inputs: vec![s, -delta],
            safe_inputs: vec![s, 0],
            triggering: true,
        }
    });

    // CWE-416: use after free, no intervening reallocation.
    gen(416, 393, &|i| {
        let s = pick(SLACK_SIZES, i);
        JulietCase {
            cwe: 416,
            index: i,
            template: templates::UAF_READ,
            buggy_inputs: vec![s, (i as i64 % 2) * 8, 1],
            safe_inputs: vec![s, 0, 0],
            triggering: true,
        }
    });

    // CWE-476: null dereference — faults for every tool.
    gen(476, 288, &|i| JulietCase {
        cwe: 476,
        index: i,
        template: templates::NULL_READ,
        buggy_inputs: vec![(i as i64 % 64) * 8, 1],
        safe_inputs: vec![(i as i64 % 64) * 8, 0],
        triggering: true,
    });

    // CWE-761: free pointer not at start of buffer.
    gen(761, 192, &|i| {
        let s = pick(SLACK_SIZES, i).max(16);
        JulietCase {
            cwe: 761,
            index: i,
            template: templates::INVALID_FREE,
            buggy_inputs: vec![s, 8 * (1 + i as i64 % ((s / 8).max(1)))],
            safe_inputs: vec![s, 0],
            triggering: true,
        }
    });

    JulietSuite {
        templates: build_templates(),
        cases,
    }
}

/// The paper's Table 3 "Total" column per CWE.
pub fn paper_totals() -> &'static [(u32, u32)] {
    &[
        (121, 1439),
        (122, 1504),
        (124, 767),
        (126, 449),
        (127, 916),
        (416, 393),
        (476, 288),
        (761, 192),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_baselines::{Asan, Lfp};
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, CheckPlan, ExecConfig};
    use giantsan_runtime::{RuntimeConfig, Sanitizer};

    fn exec(
        suite: &JulietSuite,
        case: &JulietCase,
        san: &mut dyn Sanitizer,
        plan: &CheckPlan,
        buggy: bool,
    ) -> bool {
        let inputs = if buggy {
            &case.buggy_inputs
        } else {
            &case.safe_inputs
        };
        let r = run(
            &suite.templates[case.template],
            inputs,
            san,
            plan,
            &ExecConfig::default(),
        );
        r.detected()
    }

    #[test]
    fn counts_match_paper_totals() {
        let suite = juliet_suite();
        for &(cwe, total) in paper_totals() {
            let n = suite.cases.iter().filter(|c| c.cwe == cwe).count();
            assert_eq!(n as u32, total, "CWE-{cwe}");
        }
        assert_eq!(suite.cases.len(), 5948);
    }

    #[test]
    fn scaled_suite_preserves_families() {
        let suite = juliet_suite_scaled(25);
        for &(cwe, _) in paper_totals() {
            assert!(
                suite.cases.iter().any(|c| c.cwe == cwe),
                "CWE-{cwe} missing from scaled suite"
            );
        }
        assert!(suite.cases.len() < 300);
    }

    #[test]
    fn giantsan_detects_triggering_and_passes_safe() {
        let suite = juliet_suite_scaled(40);
        for case in &suite.cases {
            let plan = analyze(&suite.templates[case.template], &ToolProfile::giantsan()).plan;
            let mut san = GiantSan::new(RuntimeConfig::small());
            let detected = exec(&suite, case, &mut san, &plan, true);
            assert_eq!(
                detected, case.triggering,
                "GiantSan on CWE-{} #{} (template {})",
                case.cwe, case.index, case.template
            );
            let mut san = GiantSan::new(RuntimeConfig::small());
            let fp = exec(&suite, case, &mut san, &plan, false);
            assert!(!fp, "false positive on CWE-{} #{}", case.cwe, case.index);
        }
    }

    #[test]
    fn asan_matches_giantsan_verdicts() {
        let suite = juliet_suite_scaled(40);
        for case in &suite.cases {
            let plan = analyze(&suite.templates[case.template], &ToolProfile::asan()).plan;
            let mut san = Asan::new(RuntimeConfig::small());
            let detected = exec(&suite, case, &mut san, &plan, true);
            assert_eq!(
                detected, case.triggering,
                "ASan on CWE-{} #{}",
                case.cwe, case.index
            );
            let mut san = Asan::new(RuntimeConfig::small());
            assert!(!exec(&suite, case, &mut san, &plan, false));
        }
    }

    #[test]
    fn lfp_misses_rounding_and_stack_cases() {
        let suite = juliet_suite_scaled(40);
        let mut missed_121 = 0;
        let mut total_121 = 0;
        let mut missed_122 = 0;
        let mut total_122 = 0;
        for case in &suite.cases {
            let plan = analyze(&suite.templates[case.template], &ToolProfile::lfp()).plan;
            let mut san = Lfp::new(RuntimeConfig::small());
            let detected = exec(&suite, case, &mut san, &plan, true);
            match case.cwe {
                121 if case.triggering => {
                    total_121 += 1;
                    if !detected {
                        missed_121 += 1;
                    }
                }
                122 => {
                    total_122 += 1;
                    if !detected {
                        missed_122 += 1;
                    }
                }
                // Underflows, UAF, null, invalid free: LFP detects these.
                124 | 127 | 416 | 476 | 761 => {
                    assert!(detected, "LFP must detect CWE-{} #{}", case.cwe, case.index)
                }
                _ => {}
            }
            // Safe twins must stay silent for LFP too.
            let mut san = Lfp::new(RuntimeConfig::small());
            assert!(
                !exec(&suite, case, &mut san, &plan, false),
                "LFP FP on CWE-{} #{}",
                case.cwe,
                case.index
            );
        }
        assert!(
            missed_121 > total_121 / 2,
            "LFP should miss most stack overflows"
        );
        assert!(
            missed_122 > total_122 / 2,
            "LFP should miss most heap overflows"
        );
    }
}
