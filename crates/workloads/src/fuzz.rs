//! Random program generation for differential testing and fuzzing.
//!
//! Two generators with known ground truth:
//!
//! * [`safe_program`] — memory-safe by construction: every access stays
//!   inside a live object. Any report from any tool is a false positive;
//!   any data divergence from native execution is an instrumentation bug.
//! * [`buggy_program`] — a safe program with exactly one injected violation
//!   of a chosen [`InjectedBug`] geometry. Detection expectations per tool
//!   follow from the geometry (e.g. far overflows land inside a live
//!   neighbour and are invisible to instruction-level checks).
//!
//! The harness binary `fuzz` drives these across many seeds and reports a
//! per-tool false-negative/false-positive matrix; `tests/differential.rs`
//! and `tests/bug_injection.rs` assert the invariants per seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use giantsan_ir::{Expr, Program, ProgramBuilder, PtrId};

/// A generated program with its inputs.
#[derive(Debug, Clone)]
pub struct FuzzProgram {
    /// The program.
    pub program: Program,
    /// Runtime inputs.
    pub inputs: Vec<i64>,
}

/// The injected violation's geometry, which determines each tool's expected
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectedBug {
    /// 1–8 bytes past the end: lands in the redzone; every location-based
    /// tool sees it.
    OverflowNear,
    /// Far past the end, inside a live neighbour: the redzone bypass that
    /// only anchored (or huge-redzone) checks catch.
    OverflowFar,
    /// 1–8 bytes before the start.
    UnderflowNear,
    /// Read through a dangling pointer, no reallocation in between.
    UseAfterFree,
    /// An over-long `strcpy` into a short stack buffer.
    StackStrcpy,
}

impl InjectedBug {
    /// All injectable geometries.
    pub const ALL: [InjectedBug; 5] = [
        InjectedBug::OverflowNear,
        InjectedBug::OverflowFar,
        InjectedBug::UnderflowNear,
        InjectedBug::UseAfterFree,
        InjectedBug::StackStrcpy,
    ];

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            InjectedBug::OverflowNear => "overflow-near",
            InjectedBug::OverflowFar => "overflow-far",
            InjectedBug::UnderflowNear => "underflow-near",
            InjectedBug::UseAfterFree => "use-after-free",
            InjectedBug::StackStrcpy => "stack-strcpy",
        }
    }
}

/// Emits random benign traffic over the given live buffers.
fn benign_traffic(b: &mut ProgramBuilder, rng: &mut StdRng, live: &[(PtrId, i64)], stmts: usize) {
    for _ in 0..stmts {
        let (ptr, size) = live[rng.gen_range(0..live.len())];
        match rng.gen_range(0..8) {
            0 => {
                let off = rng.gen_range(0..size - 8);
                b.store(ptr, off, 8, rng.gen_range(0..size / 8));
            }
            1 => {
                let words = size / 8;
                let n = rng.gen_range(1..=words);
                b.for_loop(0i64, n, |b, i| {
                    b.store(ptr, Expr::var(i) * 8, 8, Expr::var(i));
                });
            }
            2 => {
                let words = size / 8;
                let n = rng.gen_range(1..=words);
                b.for_loop_opaque(0i64, n, |b, i| {
                    b.load_discard(ptr, Expr::var(i) * 8, 8);
                });
            }
            3 => {
                let words = size / 8;
                let n = rng.gen_range(1..=words);
                b.for_loop_rev_opaque(0i64, n, |b, i| {
                    b.load_discard(ptr, Expr::var(i) * 8, 8);
                });
            }
            4 => {
                let words = size / 8;
                b.store(ptr, 0i64, 8, rng.gen_range(0..words));
                let j = b.load(ptr, 0i64, 8);
                b.load_discard(ptr, Expr::var(j) * 8, 8);
            }
            5 => {
                let len = rng.gen_range(1..=size / 2);
                b.memset(ptr, 0i64, len, 0x5ai64);
                if size >= 32 {
                    b.memcpy(ptr, size / 2, ptr, 0i64, size / 2 - 8);
                }
            }
            6 => {
                b.frame(|b| {
                    let s = b.alloc_stack(64);
                    b.for_loop(0i64, 8i64, |b, i| {
                        b.store(s, Expr::var(i) * 8, 8, Expr::var(i));
                    });
                });
            }
            _ => {
                let t = b.alloc_heap(48);
                b.store(t, 0i64, 8, 1i64);
                b.store(t, 40i64, 8, 2i64);
                b.free(t);
            }
        }
    }
}

/// Generates a random memory-safe program (ground truth: zero violations).
pub fn safe_program(seed: u64) -> FuzzProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("fuzz-safe-{seed}"));
    let mut live: Vec<(PtrId, i64)> = Vec::new();
    for _ in 0..rng.gen_range(2..5) {
        let size = *[64i64, 128, 256, 512].get(rng.gen_range(0..4)).unwrap();
        live.push((b.alloc_heap(size), size));
    }
    let n = rng.gen_range(4..12);
    benign_traffic(&mut b, &mut rng, &live, n);
    for (ptr, _) in live {
        b.free(ptr);
    }
    FuzzProgram {
        program: b.build(),
        inputs: vec![],
    }
}

/// Generates a program with exactly one injected violation of `bug`'s
/// geometry (ground truth: exactly one violation, at the end).
pub fn buggy_program(seed: u64, bug: InjectedBug) -> FuzzProgram {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb06);
    let mut b = ProgramBuilder::new(format!("fuzz-{}-{seed}", bug.name()));
    // Neighbours around the victim so far overflows land in live memory.
    let before = b.alloc_heap(512);
    let size = *[64i64, 96, 160, 256].get(rng.gen_range(0..4)).unwrap();
    let victim = b.alloc_heap(size);
    let after = b.alloc_heap(512);
    let traffic = rng.gen_range(2..6);
    benign_traffic(
        &mut b,
        &mut rng,
        &[(before, 512), (victim, size), (after, 512)],
        traffic,
    );
    match bug {
        InjectedBug::OverflowNear => {
            b.store(victim, size + rng.gen_range(0..8), 1, 0x41i64);
        }
        InjectedBug::OverflowFar => {
            b.store(victim, size + 64 + rng.gen_range(0..256), 1, 0x41i64);
        }
        InjectedBug::UnderflowNear => {
            b.store(victim, -rng.gen_range(1..9), 1, 0x41i64);
        }
        InjectedBug::UseAfterFree => {
            b.free(victim);
            b.load_discard(victim, 0i64, 8);
        }
        InjectedBug::StackStrcpy => {
            let strlen = 48 + rng.gen_range(0..16);
            let src = b.alloc_heap(strlen + 1);
            b.memset(src, 0i64, strlen, 65i64);
            b.store(src, strlen, 1, 0i64);
            b.frame(|b| {
                let s = b.alloc_stack(16);
                b.strcpy(s, 0i64, src, 0i64);
            });
            b.free(src);
        }
    }
    if bug != InjectedBug::UseAfterFree {
        b.free(victim);
    }
    b.free(before);
    b.free(after);
    FuzzProgram {
        program: b.build(),
        inputs: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_analysis::{analyze, ToolProfile};
    use giantsan_core::GiantSan;
    use giantsan_ir::{run, ExecConfig, Termination};
    use giantsan_runtime::{NullSanitizer, RuntimeConfig};

    #[test]
    fn safe_programs_finish_cleanly() {
        for seed in 0..30 {
            let fp = safe_program(seed);
            let mut native = NullSanitizer::new(RuntimeConfig::small());
            let plan = giantsan_ir::CheckPlan::none(&fp.program);
            let r = run(
                &fp.program,
                &fp.inputs,
                &mut native,
                &plan,
                &ExecConfig::default(),
            );
            assert_eq!(r.termination, Termination::Finished, "seed {seed}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(safe_program(7).program, safe_program(7).program);
        assert_eq!(
            buggy_program(7, InjectedBug::OverflowFar).program,
            buggy_program(7, InjectedBug::OverflowFar).program
        );
    }

    #[test]
    fn every_bug_kind_is_detected_by_giantsan() {
        for seed in 0..10 {
            for bug in InjectedBug::ALL {
                let fp = buggy_program(seed, bug);
                let plan = analyze(&fp.program, &ToolProfile::giantsan()).plan;
                let mut san = GiantSan::new(RuntimeConfig::small());
                let r = run(
                    &fp.program,
                    &fp.inputs,
                    &mut san,
                    &plan,
                    &ExecConfig::default(),
                );
                assert!(r.detected(), "{} seed {seed}", bug.name());
            }
        }
    }
}
