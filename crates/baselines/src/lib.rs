#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Baseline sanitizers the GiantSan paper evaluates against.
//!
//! * [`Asan`] — AddressSanitizer: the classic low-density shadow encoding
//!   with instruction-level checks and a linear-time region guardian;
//! * [`AsanMinusMinus`] — ASan's runtime driven by an elimination-only
//!   instrumentation plan (the planner in `giantsan-analysis` carries the
//!   difference);
//! * [`Lfp`] — low-fat pointers: pointer-derived bounds over rounded-up size
//!   classes, cheap checks, rounding false negatives, weak stack coverage.
//!
//! Together with `giantsan_core::GiantSan` and
//! [`giantsan_runtime::NullSanitizer`] these are the five columns of the
//! paper's Table 2.
//!
//! # Example
//!
//! ```
//! use giantsan_baselines::{Asan, Lfp};
//! use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
//!
//! let mut asan = Asan::new(RuntimeConfig::small());
//! let a = asan.alloc(1024, Region::Heap).unwrap();
//! asan.check_region(a.base, a.base + 1024, AccessKind::Read).unwrap();
//! assert_eq!(asan.counters().shadow_loads, 128); // Θ(N) guardian
//!
//! let mut lfp = Lfp::new(RuntimeConfig::small());
//! let b = lfp.alloc(600, Region::Heap).unwrap();
//! // Rounded to the 768-byte class: a 100-byte overflow is invisible.
//! assert!(lfp.check_access(b.base + 700, 1, AccessKind::Read).is_ok());
//! ```

pub mod asan;
mod asan_mm;
pub mod lfp;

pub use asan::Asan;
pub use asan_mm::AsanMinusMinus;
pub use lfp::Lfp;
