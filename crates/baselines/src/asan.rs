//! AddressSanitizer baseline (Serebryany et al., ATC 2012; paper §2.2).
//!
//! ASan's shadow encoding has **low protection density**: one shadow byte
//! safeguards at most 8 application bytes, so checking an `S`-byte region
//! loads `⌈S/8⌉` shadow bytes. That linear guardian walk is precisely the
//! overhead GiantSan's folded segments eliminate; keeping it honest here is
//! what gives the benchmark comparisons their shape.

use giantsan_runtime::{
    AccessKind, Allocation, CheckResult, Counters, ErrorKind, ErrorReport, HeapError, ObjectInfo,
    Region, RuntimeConfig, Sanitizer, World,
};
use giantsan_shadow::{align_up, Addr, ShadowMemory, SEGMENT_SIZE};

/// ASan shadow state codes (the classic byte values).
pub mod codes {
    /// All 8 bytes of the segment are addressable.
    pub const GOOD: u8 = 0;
    /// Heap left redzone.
    pub const HEAP_LEFT: u8 = 0xfa;
    /// Heap right redzone.
    pub const HEAP_RIGHT: u8 = 0xfb;
    /// Freed heap region (quarantined).
    pub const FREED: u8 = 0xfd;
    /// Stack redzone / dead stack memory.
    pub const STACK: u8 = 0xf2;
    /// Global redzone.
    pub const GLOBAL: u8 = 0xf9;
    /// Memory the allocator never handed out.
    pub const UNALLOCATED: u8 = 0xff;

    /// Returns `true` for k-partial codes (1..=7).
    pub const fn is_partial(code: u8) -> bool {
        code >= 1 && code <= 7
    }
}

/// Classifies an ASan shadow code into a report kind.
pub fn classify(code: u8) -> ErrorKind {
    match code {
        codes::HEAP_RIGHT => ErrorKind::HeapBufferOverflow,
        codes::HEAP_LEFT => ErrorKind::HeapBufferUnderflow,
        codes::FREED => ErrorKind::UseAfterFree,
        codes::STACK => ErrorKind::StackBufferOverflow,
        codes::GLOBAL => ErrorKind::GlobalBufferOverflow,
        codes::UNALLOCATED => ErrorKind::Wild,
        c if codes::is_partial(c) => ErrorKind::HeapBufferOverflow,
        _ => ErrorKind::Unknown,
    }
}

/// The ASan baseline sanitizer.
///
/// # Example
///
/// ```
/// use giantsan_baselines::Asan;
/// use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
///
/// let mut san = Asan::new(RuntimeConfig::small());
/// let a = san.alloc(1024, Region::Heap).unwrap();
/// san.check_region(a.base, a.base + 1024, AccessKind::Write).unwrap();
/// // The linear guardian walk loaded one shadow byte per segment.
/// assert_eq!(san.counters().shadow_loads, 128);
/// ```
#[derive(Debug)]
pub struct Asan {
    world: World,
    shadow: ShadowMemory,
    counters: Counters,
    name: &'static str,
}

impl Asan {
    /// Creates an ASan instance over a fresh world.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_name(config, "ASan")
    }

    /// Creates an ASan runtime under a different display name; used by
    /// [`crate::AsanMinusMinus`], whose runtime is identical (the difference
    /// is which checks the instrumentation emits).
    pub fn with_name(config: RuntimeConfig, name: &'static str) -> Self {
        let world = World::new(config);
        let shadow = ShadowMemory::new(world.space(), codes::UNALLOCATED);
        Asan {
            world,
            shadow,
            counters: Counters::default(),
            name,
        }
    }

    /// Read-only view of the shadow (tests and diagnostics).
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }

    fn redzone_code(region: Region, left: bool) -> u8 {
        match (region, left) {
            (Region::Heap, true) => codes::HEAP_LEFT,
            (Region::Heap, false) => codes::HEAP_RIGHT,
            (Region::Stack, _) => codes::STACK,
            (Region::Global, _) => codes::GLOBAL,
        }
    }

    #[inline]
    fn load(&self, addr: Addr) -> u8 {
        match self.shadow.try_segment_of(addr) {
            Some(seg) => self.shadow.get(seg),
            None => codes::UNALLOCATED,
        }
    }

    /// Number of addressable bytes segment code `v` exposes within itself.
    #[inline]
    fn exposed(v: u8) -> u64 {
        if v == codes::GOOD {
            SEGMENT_SIZE
        } else if codes::is_partial(v) {
            v as u64
        } else {
            0
        }
    }

    fn poison_segments(&mut self, start: Addr, len: u64, code: u8) {
        if len == 0 {
            return;
        }
        let lo = self.shadow.segment_of(start);
        let hi = lo + len / SEGMENT_SIZE;
        self.shadow.set_range(lo, hi, code);
        self.counters.shadow_stores += hi - lo;
    }

    fn poison_allocation(&mut self, info: &ObjectInfo) {
        let rz = info.base - info.block_start;
        let user_len = align_up(info.size.max(1), SEGMENT_SIZE);
        self.poison_segments(info.block_start, rz, Self::redzone_code(info.region, true));
        // User region: zeros for whole segments, k for a trailing partial.
        let q = info.size / SEGMENT_SIZE;
        let rem = (info.size % SEGMENT_SIZE) as u8;
        self.poison_segments(info.base, q * SEGMENT_SIZE, codes::GOOD);
        if rem > 0 {
            let seg = self.shadow.segment_of(info.base) + q;
            self.shadow.set(seg, rem);
            self.counters.shadow_stores += 1;
        }
        let right_start = info.base + user_len;
        self.poison_segments(
            right_start,
            info.block_len - rz - user_len,
            Self::redzone_code(info.region, false),
        );
    }

    fn report(&mut self, addr: Addr, code: u8, len: u64, kind: AccessKind) -> ErrorReport {
        self.counters.reports += 1;
        let classified = if codes::is_partial(code) {
            // Partial violation: the following redzone identifies the region.
            let next = self.load(addr + SEGMENT_SIZE);
            if next > 7 {
                classify(next)
            } else {
                ErrorKind::HeapBufferOverflow
            }
        } else {
            classify(code)
        };
        ErrorReport::new(classified, addr, len).with_access(kind)
    }
}

impl Sanitizer for Asan {
    fn name(&self) -> &'static str {
        self.name
    }

    fn world(&self) -> &World {
        &self.world
    }

    fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        let a = self.world.alloc(size, region)?;
        self.counters.allocs += 1;
        if region == Region::Stack {
            self.counters.stack_allocs += 1;
        }
        let info = self
            .world
            .objects()
            .get(a.id)
            .expect("fresh allocation must be registered")
            .clone();
        self.poison_allocation(&info);
        Ok(a)
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.counters.frees += 1;
        match self.world.free(base) {
            Ok(outcome) => {
                let freed = outcome.freed.clone();
                self.poison_segments(freed.block_start, freed.block_len, codes::FREED);
                for info in outcome.recycled.clone() {
                    self.poison_segments(info.block_start, info.block_len, codes::UNALLOCATED);
                }
                Ok(())
            }
            Err(report) => {
                self.counters.reports += 1;
                Err(report)
            }
        }
    }

    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, ErrorReport> {
        match self.world.realloc(base, new_size) {
            Ok((a, outcome)) => {
                self.counters.allocs += 1;
                self.counters.frees += 1;
                let info = self
                    .world
                    .objects()
                    .get(a.id)
                    .expect("fresh allocation must be registered")
                    .clone();
                self.poison_allocation(&info);
                let freed = outcome.freed.clone();
                self.poison_segments(freed.block_start, freed.block_len, codes::FREED);
                for info in outcome.recycled.clone() {
                    self.poison_segments(info.block_start, info.block_len, codes::UNALLOCATED);
                }
                Ok(a)
            }
            Err(report) => {
                self.counters.reports += 1;
                Err(report)
            }
        }
    }

    fn push_frame(&mut self) {
        self.world.push_frame();
    }

    fn pop_frame(&mut self) {
        for info in self.world.pop_frame() {
            self.poison_segments(info.block_start, info.block_len, codes::STACK);
        }
    }

    #[inline]
    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult {
        // Example 1 of the paper: one load, compare against the partial code.
        debug_assert!(width <= 8);
        let off = addr.segment_offset();
        if off + width as u64 <= SEGMENT_SIZE {
            self.counters.shadow_loads += 1;
            self.counters.fast_checks += 1;
            let v = self.load(addr);
            if v != codes::GOOD && off + width as u64 > Self::exposed(v) {
                return Err(self.report(addr, v, width as u64, kind));
            }
            Ok(())
        } else {
            // Straddling access: ASan emits two checks.
            let split = SEGMENT_SIZE - off;
            self.check_access(addr, split as u32, kind)?;
            self.check_access(addr + split, width - split as u32, kind)
        }
    }

    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        // The guardian function: one shadow byte guards at most 8 bytes, so
        // the whole range must be swept — the `Θ(N)` cost column of Table 1.
        // The sweep runs word-wide (eight guardians per `u64` step, like
        // production ASan's `mem_is_zero`), while `shadow_loads` still counts
        // one load per segment *semantically* walked, exactly as the
        // byte-at-a-time reference does: the encoding's cost model is the
        // experiment, the scan width is plumbing.
        if lo >= hi {
            return Ok(());
        }
        self.counters.slow_checks += 1;
        if self.shadow.try_segment_of(lo).is_none() && lo < self.shadow.segment_base(0) {
            // Below the shadowed space: unallocated from the first byte.
            self.counters.shadow_loads += 1;
            return Err(self.report(lo, codes::UNALLOCATED, hi - lo, kind));
        }
        let lo_seg = self.shadow.segment_of(lo);
        let last_seg = lo_seg + (Addr::new(hi.raw() - 1).segment() - lo.segment());
        match self.shadow.first_ne(lo_seg, last_seg + 1, codes::GOOD) {
            None => {
                // Every guardian is GOOD: the walk visits each one and passes.
                self.counters.shadow_loads += last_seg - lo_seg + 1;
                Ok(())
            }
            Some(s) => {
                // The walk stops at the first non-GOOD guardian.
                self.counters.shadow_loads += s - lo_seg + 1;
                let v = self.shadow.get(s);
                let exposed = Self::exposed(v);
                let seg_base = self.shadow.segment_base(s);
                let first = if s == lo_seg { lo } else { seg_base };
                if first - seg_base >= exposed {
                    return Err(self.report(first, v, hi - lo, kind));
                }
                let covered_end = seg_base + exposed;
                if covered_end >= hi {
                    return Ok(());
                }
                // Partial guardian inside the region: the next byte is bad.
                Err(self.report(covered_end, v, hi - lo, kind))
            }
        }
    }

    fn contain(&mut self, report: &ErrorReport) {
        // Heal the flat shadow from the ground-truth object table, mirroring
        // GiantSan's containment so recover-mode comparisons stay fair.
        let addr = report.addr;
        if let Some(info) = self.world.objects().live_block_containing(addr).cloned() {
            self.poison_allocation(&info);
        } else if let Some(info) = self.world.objects().dead_block_containing(addr).cloned() {
            self.poison_segments(info.block_start, info.block_len, codes::FREED);
        } else if let Some(seg) = self.shadow.try_segment_of(addr) {
            self.shadow.set(seg, codes::UNALLOCATED);
            self.counters.shadow_stores += 1;
        }
    }

    fn inject_metadata_fault(
        &mut self,
        addr: Addr,
        fault: giantsan_runtime::MetadataFault,
    ) -> bool {
        let Some(seg) = self.shadow.try_segment_of(addr) else {
            return false;
        };
        match fault {
            giantsan_runtime::MetadataFault::BitFlip { bit } => {
                let cur = self.shadow.get(seg);
                self.shadow.set(seg, cur ^ (1 << (bit & 7)));
                true
            }
            // ASan's flat encoding has no folded codes to downgrade.
            giantsan_runtime::MetadataFault::FoldDowngrade => false,
        }
    }

    fn shadow_probe(&self, addr: Addr) -> Option<u8> {
        // Read-only telemetry peek; never counts as a shadow load.
        self.shadow.try_segment_of(addr).map(|s| self.shadow.get(s))
    }
}

impl Asan {
    /// Byte-at-a-time reference for [`Sanitizer::check_region`]: the
    /// pre-scanner guardian walk, kept as the differential-testing baseline
    /// and the "before" side of the hot-path benchmarks. Updates the same
    /// counters the same way, so differential tests can compare full
    /// counter state, not just verdicts.
    pub fn check_region_reference(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        if lo >= hi {
            return Ok(());
        }
        self.counters.slow_checks += 1;
        let mut a = lo;
        while a < hi {
            self.counters.shadow_loads += 1;
            let v = self.load(a);
            let exposed = Self::exposed(v);
            let off = a.segment_offset();
            if off >= exposed {
                return Err(self.report(a, v, hi - lo, kind));
            }
            let seg_base = Addr::new(a.raw() & !(SEGMENT_SIZE - 1));
            let covered_end = seg_base + exposed;
            if covered_end >= hi {
                return Ok(());
            }
            if exposed < SEGMENT_SIZE {
                // Partial segment inside the region: the next byte is bad.
                return Err(self.report(covered_end, v, hi - lo, kind));
            }
            a = seg_base + SEGMENT_SIZE;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Asan {
        Asan::new(RuntimeConfig::small())
    }

    #[test]
    fn shadow_poisoning_matches_asan_layout() {
        let mut s = san();
        let a = s.alloc(20, Region::Heap).unwrap();
        let seg = s.shadow.segment_of(a.base);
        assert_eq!(s.shadow.get(seg - 1), codes::HEAP_LEFT);
        assert_eq!(s.shadow.get(seg), 0);
        assert_eq!(s.shadow.get(seg + 1), 0);
        assert_eq!(s.shadow.get(seg + 2), 4); // 20 = 2*8 + 4
        assert_eq!(s.shadow.get(seg + 3), codes::HEAP_RIGHT);
    }

    #[test]
    fn instruction_check_matches_example_1() {
        let mut s = san();
        let a = s.alloc(12, Region::Heap).unwrap();
        assert!(s.check_access(a.base, 8, AccessKind::Read).is_ok());
        assert!(s.check_access(a.base + 8, 4, AccessKind::Read).is_ok());
        assert!(s.check_access(a.base + 9, 4, AccessKind::Read).is_err());
        assert!(s.check_access(a.base + 12, 1, AccessKind::Read).is_err());
        assert!(s.check_access(a.base - 1, 1, AccessKind::Read).is_err());
    }

    #[test]
    fn region_check_is_linear_in_size() {
        let mut s = san();
        let a = s.alloc(4096, Region::Heap).unwrap();
        s.counters_mut().reset();
        s.check_region(a.base, a.base + 4096, AccessKind::Write)
            .unwrap();
        assert_eq!(s.counters().shadow_loads, 512, "one load per segment");
    }

    #[test]
    fn region_check_detects_overflow_and_stops() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        let err = s
            .check_region(a.base, a.base + 80, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::HeapBufferOverflow);
        // Walks 8 good segments + 1 redzone segment, then stops.
        assert_eq!(s.counters().shadow_loads, 9);
    }

    #[test]
    fn scan_walk_matches_reference_exactly() {
        // The word-wide walk must be observationally identical to the
        // byte-at-a-time reference: same verdict (including the reported
        // address and kind) AND the same counter state, on every region over
        // a layout that exercises good runs, partial tails, redzones, freed
        // blocks, and out-of-space addresses.
        let setup = || {
            let mut s = san();
            let a = s.alloc(96, Region::Heap).unwrap();
            let b = s.alloc(20, Region::Heap).unwrap();
            let c = s.alloc(64, Region::Heap).unwrap();
            s.free(b.base).unwrap();
            (
                s,
                [a.base, b.base, c.base, Addr::new(8), Addr::new(1 << 40)],
            )
        };
        let (mut fast, bases) = setup();
        let (mut slow, _) = setup();
        for base in bases {
            for lo_off in 0..24u64 {
                for len in 0..130u64 {
                    let (lo, hi) = (base + lo_off, base + lo_off + len);
                    fast.counters_mut().reset();
                    slow.counters_mut().reset();
                    let got = fast.check_region(lo, hi, AccessKind::Read);
                    let want = slow.check_region_reference(lo, hi, AccessKind::Read);
                    assert_eq!(
                        got.as_ref().map_err(|e| (e.addr, e.kind)),
                        want.as_ref().map_err(|e| (e.addr, e.kind)),
                        "verdict diverged on [{lo}, {hi})"
                    );
                    assert_eq!(
                        fast.counters(),
                        slow.counters(),
                        "counters diverged on [{lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn region_check_partial_tail() {
        let mut s = san();
        let a = s.alloc(20, Region::Heap).unwrap();
        assert!(s
            .check_region(a.base, a.base + 20, AccessKind::Read)
            .is_ok());
        assert!(s
            .check_region(a.base, a.base + 21, AccessKind::Read)
            .is_err());
        assert!(s
            .check_region(a.base + 4, a.base + 20, AccessKind::Read)
            .is_ok());
    }

    #[test]
    fn straddling_access_splits() {
        let mut s = san();
        let a = s.alloc(16, Region::Heap).unwrap();
        assert!(s.check_access(a.base + 4, 8, AccessKind::Read).is_ok());
        assert!(s.check_access(a.base + 12, 8, AccessKind::Read).is_err());
    }

    #[test]
    fn temporal_errors() {
        let mut s = san();
        let a = s.alloc(32, Region::Heap).unwrap();
        s.free(a.base).unwrap();
        let err = s.check_access(a.base, 8, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
        assert_eq!(s.free(a.base).unwrap_err().kind, ErrorKind::DoubleFree);
    }

    #[test]
    fn stack_slots_poisoned_after_pop() {
        let mut s = san();
        s.push_frame();
        let a = s.alloc(16, Region::Stack).unwrap();
        assert!(s.check_access(a.base, 8, AccessKind::Write).is_ok());
        s.pop_frame();
        let err = s.check_access(a.base, 8, AccessKind::Write).unwrap_err();
        assert_eq!(err.kind, ErrorKind::StackBufferOverflow);
    }

    #[test]
    fn redzone_bypass_is_a_false_negative() {
        // The instruction-level check only inspects the accessed bytes: a
        // large offset that lands in another object is missed (§4.4.1's
        // motivation, Table 5).
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        let victim = s.alloc(64, Region::Heap).unwrap();
        let off = victim.base - a.base;
        assert!(s
            .check_access(a.base.offset(off as i64), 8, AccessKind::Write)
            .is_ok());
    }

    #[test]
    fn wild_and_null_accesses_reported() {
        let mut s = san();
        let err = s.check_access(Addr::NULL, 8, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Wild);
    }

    #[test]
    fn region_check_with_unaligned_start() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        assert!(s
            .check_region(a.base + 3, a.base + 61, AccessKind::Read)
            .is_ok());
        assert!(s
            .check_region(a.base + 3, a.base + 65, AccessKind::Read)
            .is_err());
        // Starting inside the left redzone.
        assert!(s
            .check_region(a.base - 3, a.base + 8, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn realloc_maintains_asan_shadow() {
        let mut s = san();
        let a = s.alloc(48, Region::Heap).unwrap();
        s.world_mut().space_mut().write_u64(a.base, 77).unwrap();
        let b = s.realloc(a.base, 96).unwrap();
        assert_eq!(s.world().space().read_u64(b.base).unwrap(), 77);
        assert!(s
            .check_region(b.base, b.base + 96, AccessKind::Write)
            .is_ok());
        let err = s.check_access(a.base, 8, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
        assert_eq!(
            s.realloc(b.base + 8, 16).unwrap_err().kind,
            ErrorKind::InvalidFree
        );
    }

    #[test]
    fn classify_covers_all_codes() {
        assert_eq!(classify(codes::HEAP_RIGHT), ErrorKind::HeapBufferOverflow);
        assert_eq!(classify(codes::HEAP_LEFT), ErrorKind::HeapBufferUnderflow);
        assert_eq!(classify(codes::FREED), ErrorKind::UseAfterFree);
        assert_eq!(classify(codes::STACK), ErrorKind::StackBufferOverflow);
        assert_eq!(classify(codes::GLOBAL), ErrorKind::GlobalBufferOverflow);
        assert_eq!(classify(codes::UNALLOCATED), ErrorKind::Wild);
        assert_eq!(classify(3), ErrorKind::HeapBufferOverflow);
        assert_eq!(classify(0xee), ErrorKind::Unknown);
    }
}
