//! LFP baseline: low-fat-pointer bounds via rounded-up size classes
//! (Duck & Yap, CC 2016 / NDSS 2017; paper §2.1 and §6 "Rounded-Up Bound").
//!
//! LFP derives an object's bounds from the *pointer value alone*: the heap is
//! partitioned into per-size-class arenas, so `base = round_down(ptr,
//! class)` and `bound = base + class` are a handful of ALU instructions. The
//! price is that allocation sizes are rounded up to the nearest class, so an
//! overflow that stays inside the rounded slot is **invisible** — the paper's
//! `p[700]` on a 600-byte buffer example, and the mechanism behind LFP's
//! false-negative columns in Tables 3 and 4.
//!
//! The simulation derives the slot bound from the object table rather than
//! from address arithmetic (the outcome is identical because each slot holds
//! exactly one object) and charges [`giantsan_runtime::Counters::arith_checks`]
//! for each bounds computation. LFP's incomplete stack protection (it needs
//! high alignment real stacks don't provide, §5.2) is modelled faithfully:
//! stack objects get no bounds, only extra stack-simulation instructions.

use giantsan_runtime::{
    AccessKind, Allocation, CheckResult, Counters, ErrorKind, ErrorReport, HeapError, Region,
    RuntimeConfig, Sanitizer, World,
};
use giantsan_shadow::{align_up, Addr, SEGMENT_SIZE};

/// LFP size classes: powers of two and 1.5× intermediates from 16 bytes up,
/// mirroring the low-fat allocator's class table.
pub fn size_classes() -> &'static [u64] {
    const CLASSES: &[u64] = &{
        let mut c = [0u64; 54];
        let mut i = 0;
        let mut p = 16u64;
        while i < 54 {
            c[i] = p;
            if i + 1 < 54 {
                c[i + 1] = p + p / 2;
            }
            p *= 2;
            i += 2;
        }
        c
    };
    CLASSES
}

/// Smallest size class that fits `size` bytes.
///
/// # Example
///
/// ```
/// use giantsan_baselines::lfp::class_for;
/// assert_eq!(class_for(1), 16);
/// assert_eq!(class_for(17), 24);
/// assert_eq!(class_for(600), 768);
/// assert_eq!(class_for(768), 768);
/// assert_eq!(class_for(769), 1024);
/// ```
pub fn class_for(size: u64) -> u64 {
    let size = size.max(1);
    for &c in size_classes() {
        if c >= size {
            return c;
        }
    }
    align_up(size, SEGMENT_SIZE)
}

/// The LFP baseline sanitizer.
///
/// # Example
///
/// ```
/// use giantsan_baselines::Lfp;
/// use giantsan_runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
///
/// let mut san = Lfp::new(RuntimeConfig::small());
/// let a = san.alloc(600, Region::Heap).unwrap();
/// // `p[700]` on a 600-byte buffer: inside the 768-byte class slot, missed.
/// assert!(san.check_access(a.base + 700, 1, AccessKind::Read).is_ok());
/// // Past the slot: detected.
/// assert!(san.check_access(a.base + 800, 1, AccessKind::Read).is_err());
/// ```
#[derive(Debug)]
pub struct Lfp {
    world: World,
    counters: Counters,
}

impl Lfp {
    /// Creates an LFP instance over a fresh world (no redzones, no
    /// quarantine — LFP has neither).
    pub fn new(config: RuntimeConfig) -> Self {
        let cfg = config.to_builder().redzone(0).quarantine_cap(0).build();
        Lfp {
            world: World::new(cfg),
            counters: Counters::default(),
        }
    }

    /// The low-fat bounds of the slot containing `anchor`, when the pointer
    /// is *low-fat* (a live heap or global object). Stack objects are not
    /// low-fat: the check degrades to "always pass" plus simulation cost.
    fn slot_bounds(&self, anchor: Addr) -> SlotLookup {
        if let Some(obj) = self.world.objects().live_block_containing(anchor) {
            if obj.region == Region::Stack {
                return SlotLookup::Unprotected;
            }
            return SlotLookup::Bounds {
                lo: obj.block_start,
                hi: obj.block_start + obj.block_len,
            };
        }
        // Not in a live object: distinguish freed-but-unreused slots (the
        // access faults on the unmapped slot → detected) from wild pointers.
        if let Some(dead) = self.world.objects().dead_block_containing(anchor) {
            let reused = self
                .world
                .objects()
                .live_containing(dead.block_start)
                .is_some();
            if reused {
                // Slot reallocated to a new object: the dangling access
                // aliases it and LFP cannot tell — false negative (the
                // libzip CVE row of Table 4).
                return SlotLookup::Unprotected;
            }
            return SlotLookup::Freed;
        }
        // Pointers into the stack arena are never low-fat: no protection.
        if anchor >= self.world.stack().lo() && anchor < self.world.stack().hi() {
            return SlotLookup::Unprotected;
        }
        SlotLookup::Wild
    }

    fn bounds_check(&mut self, anchor: Addr, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        self.counters.arith_checks += 1;
        match self.slot_bounds(anchor) {
            SlotLookup::Bounds { lo: slo, hi: shi } => {
                if lo >= slo && hi <= shi {
                    Ok(())
                } else {
                    self.counters.reports += 1;
                    let kind_err = if lo < slo {
                        ErrorKind::HeapBufferUnderflow
                    } else {
                        ErrorKind::HeapBufferOverflow
                    };
                    Err(ErrorReport::new(kind_err, lo, hi - lo).with_access(kind))
                }
            }
            SlotLookup::Unprotected => {
                self.counters.stack_sim_ops += 1;
                Ok(())
            }
            SlotLookup::Freed => {
                self.counters.reports += 1;
                Err(ErrorReport::new(ErrorKind::UseAfterFree, lo, hi - lo).with_access(kind))
            }
            SlotLookup::Wild => {
                self.counters.reports += 1;
                Err(ErrorReport::new(ErrorKind::Wild, lo, hi - lo).with_access(kind))
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SlotLookup {
    Bounds { lo: Addr, hi: Addr },
    Unprotected,
    Freed,
    Wild,
}

impl Sanitizer for Lfp {
    fn name(&self) -> &'static str {
        "LFP"
    }

    fn world(&self) -> &World {
        &self.world
    }

    fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        self.counters.allocs += 1;
        match region {
            Region::Heap | Region::Global => {
                // Round the reservation up to the size class: the rounded-up
                // slot is exactly the protection granule.
                let class = class_for(size);
                self.world.alloc_reserved(size, class, region)
            }
            Region::Stack => {
                // LFP simulates a separate aligned stack with extra
                // instructions; slots themselves are unprotected.
                self.counters.stack_allocs += 1;
                self.counters.stack_sim_ops += 4;
                self.world
                    .alloc_reserved(size, align_up(size.max(1), 8), region)
            }
        }
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.counters.frees += 1;
        // LFP derives the slot base from the pointer, so frees of interior
        // or stale pointers are detectable (Table 3, CWE-761: 192/192).
        match self.world.free(base) {
            Ok(_) => Ok(()),
            Err(report) => {
                self.counters.reports += 1;
                Err(report)
            }
        }
    }

    fn realloc(&mut self, base: Addr, new_size: u64) -> Result<Allocation, ErrorReport> {
        // LFP's realloc allocates a class-rounded slot, copies, and frees
        // (no quarantine, so the old slot is immediately reusable).
        let old = match self.world.objects().live_at_base(base) {
            Some(o) if o.region == Region::Heap => o.clone(),
            _ => {
                let err = self
                    .world
                    .free(base)
                    .err()
                    .unwrap_or_else(|| ErrorReport::new(ErrorKind::Wild, base, 0));
                self.counters.reports += 1;
                return Err(err);
            }
        };
        let new = self
            .alloc(new_size, Region::Heap)
            .map_err(|_| ErrorReport::new(ErrorKind::Unknown, base, new_size))?;
        let copy_len = old.size.min(new_size);
        if copy_len > 0 {
            self.world
                .space_mut()
                .copy(new.base, old.base, copy_len)
                .expect("both objects mapped");
        }
        self.counters.frees += 1;
        self.world.free(base).expect("old object verified live");
        Ok(new)
    }

    fn push_frame(&mut self) {
        self.world.push_frame();
    }

    fn pop_frame(&mut self) {
        self.counters.stack_sim_ops += 2;
        let _ = self.world.pop_frame();
    }

    #[inline]
    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult {
        self.bounds_check(addr, addr, addr.offset(width as i64), kind)
    }

    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        self.bounds_check(lo, lo, hi, kind)
    }

    fn check_anchored(
        &mut self,
        anchor: Addr,
        access_lo: Addr,
        access_hi: Addr,
        kind: AccessKind,
    ) -> CheckResult {
        // The pointer-based check: bounds are derived from the source
        // pointer before arithmetic, so underflows below the anchor are
        // caught (unlike a pure location check).
        self.bounds_check(anchor, access_lo, access_hi, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> Lfp {
        Lfp::new(RuntimeConfig::small())
    }

    #[test]
    fn classes_are_sorted_and_start_at_16() {
        let c = size_classes();
        assert_eq!(c[0], 16);
        assert_eq!(c[1], 24);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn paper_example_p700_of_600() {
        // §2.1: BBC/LFP cannot detect p[700] for char p[600] — the 600-byte
        // buffer is rounded up to the 768-byte class.
        let mut s = san();
        let a = s.alloc(600, Region::Heap).unwrap();
        assert!(s
            .check_anchored(a.base, a.base + 700, a.base + 701, AccessKind::Read)
            .is_ok());
        assert!(s
            .check_anchored(a.base, a.base + 768, a.base + 769, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn exact_class_sizes_are_fully_protected() {
        let mut s = san();
        let a = s.alloc(768, Region::Heap).unwrap();
        assert!(s
            .check_anchored(a.base, a.base + 767, a.base + 768, AccessKind::Read)
            .is_ok());
        // One byte past the slot, checked against the source pointer's
        // bounds (LFP instruments the pointer arithmetic): detected.
        let err = s
            .check_anchored(a.base, a.base + 768, a.base + 769, AccessKind::Read)
            .unwrap_err();
        assert!(err.kind.is_spatial());
    }

    #[test]
    fn cross_slot_overflow_missed_without_anchor() {
        // A derived pointer that already escaped into the neighbouring slot
        // looks low-fat valid there: only the arithmetic-time (anchored)
        // check catches the escape.
        let mut s = san();
        let a = s.alloc(768, Region::Heap).unwrap();
        let b = s.alloc(768, Region::Heap).unwrap();
        assert_eq!(b.base, a.base + 768, "first fit packs slots");
        assert!(s.check_access(a.base + 768, 1, AccessKind::Read).is_ok());
        assert!(s
            .check_anchored(a.base, a.base + 768, a.base + 769, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn underflow_detected_via_anchor() {
        let mut s = san();
        let _pad = s.alloc(64, Region::Heap).unwrap();
        let a = s.alloc(64, Region::Heap).unwrap();
        let err = s
            .check_anchored(a.base, a.base - 8, a.base, AccessKind::Write)
            .unwrap_err();
        assert_eq!(err.kind, ErrorKind::HeapBufferUnderflow);
    }

    #[test]
    fn stack_objects_are_unprotected() {
        let mut s = san();
        s.push_frame();
        let _neighbour = s.alloc(64, Region::Stack).unwrap();
        let a = s.alloc(32, Region::Stack).unwrap();
        // A small stack overflow that corrupts the neighbouring slot passes:
        // LFP's stack protection is incomplete (§5.2).
        assert!(s.check_access(a.base + 40, 8, AccessKind::Write).is_ok());
        assert!(s
            .check_anchored(a.base, a.base + 40, a.base + 48, AccessKind::Write)
            .is_ok());
        assert!(s.counters().stack_sim_ops > 0);
    }

    #[test]
    fn freed_slot_detected_until_reuse() {
        let mut s = san();
        let a = s.alloc(32, Region::Heap).unwrap();
        s.free(a.base).unwrap();
        let err = s.check_access(a.base, 8, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UseAfterFree);
        // After the slot is reallocated the dangling pointer aliases the new
        // object: false negative.
        let b = s.alloc(32, Region::Heap).unwrap();
        assert_eq!(a.base, b.base);
        assert!(s.check_access(a.base, 8, AccessKind::Read).is_ok());
    }

    #[test]
    fn invalid_and_double_free_detected() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        assert_eq!(s.free(a.base + 8).unwrap_err().kind, ErrorKind::InvalidFree);
        s.free(a.base).unwrap();
        assert_eq!(s.free(a.base).unwrap_err().kind, ErrorKind::DoubleFree);
    }

    #[test]
    fn null_deref_reported() {
        let mut s = san();
        let err = s.check_access(Addr::NULL, 4, AccessKind::Read).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Wild);
    }

    #[test]
    fn ground_truth_keeps_requested_size() {
        // The oracle must see 600 bytes even though the slot is 768.
        let mut s = san();
        let a = s.alloc(600, Region::Heap).unwrap();
        assert!(s.world().objects().valid_access(a.base, 600));
        assert!(!s.world().objects().valid_access(a.base, 601));
    }

    #[test]
    fn realloc_rounds_to_the_new_class() {
        let mut s = san();
        let a = s.alloc(100, Region::Heap).unwrap(); // 128-byte slot
        s.world_mut().space_mut().write_u64(a.base, 42).unwrap();
        let b = s.realloc(a.base, 600).unwrap(); // 768-byte slot
        assert_eq!(s.world().space().read_u64(b.base).unwrap(), 42);
        let info = s.world().objects().get(b.id).unwrap();
        assert_eq!(info.block_len, 768, "reservation uses the new class");
        // Overflow within the new slot is (characteristically) missed.
        assert!(s
            .check_anchored(b.base, b.base + 700, b.base + 701, AccessKind::Read)
            .is_ok());
        assert!(s
            .check_anchored(b.base, b.base + 768, b.base + 769, AccessKind::Read)
            .is_err());
    }

    #[test]
    fn arith_checks_counted() {
        let mut s = san();
        let a = s.alloc(64, Region::Heap).unwrap();
        for i in 0..10 {
            s.check_access(a.base + i * 4, 4, AccessKind::Read).unwrap();
        }
        assert_eq!(s.counters().arith_checks, 10);
        assert_eq!(s.counters().shadow_loads, 0, "LFP loads no shadow");
    }
}
