//! ASan-- baseline (Zhang et al., USENIX Security 2022; paper §5).
//!
//! ASan-- "debloats" ASan: its runtime encoding and checks are ASan's, but a
//! static-analysis pass removes redundant checks (must-alias duplicates,
//! dominated checks, loop-invariant hoisting). In this reproduction the
//! *planner* (`giantsan-analysis`) carries that difference — it emits an
//! elimination-only instrumentation plan when targeting ASan-- — so the
//! runtime here is a thin identity wrapper that only changes the tool name.

use giantsan_runtime::{
    AccessKind, Allocation, CacheSlot, CheckResult, Counters, HeapError, Region, RuntimeConfig,
    Sanitizer, World,
};
use giantsan_shadow::Addr;

use crate::Asan;

/// The ASan-- baseline: ASan's runtime with check-elimination
/// instrumentation.
///
/// # Example
///
/// ```
/// use giantsan_baselines::AsanMinusMinus;
/// use giantsan_runtime::{RuntimeConfig, Sanitizer};
///
/// let san = AsanMinusMinus::new(RuntimeConfig::small());
/// assert_eq!(san.name(), "ASan--");
/// ```
#[derive(Debug)]
pub struct AsanMinusMinus {
    inner: Asan,
}

impl AsanMinusMinus {
    /// Creates an ASan-- instance over a fresh world.
    pub fn new(config: RuntimeConfig) -> Self {
        AsanMinusMinus {
            inner: Asan::with_name(config, "ASan--"),
        }
    }

    /// The wrapped ASan runtime.
    pub fn as_asan(&self) -> &Asan {
        &self.inner
    }
}

impl Sanitizer for AsanMinusMinus {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn world(&self) -> &World {
        self.inner.world()
    }

    fn world_mut(&mut self) -> &mut World {
        self.inner.world_mut()
    }

    fn counters(&self) -> &Counters {
        self.inner.counters()
    }

    fn counters_mut(&mut self) -> &mut Counters {
        self.inner.counters_mut()
    }

    fn alloc(&mut self, size: u64, region: Region) -> Result<Allocation, HeapError> {
        self.inner.alloc(size, region)
    }

    fn free(&mut self, base: Addr) -> CheckResult {
        self.inner.free(base)
    }

    fn realloc(
        &mut self,
        base: Addr,
        new_size: u64,
    ) -> Result<Allocation, giantsan_runtime::ErrorReport> {
        self.inner.realloc(base, new_size)
    }

    fn push_frame(&mut self) {
        self.inner.push_frame()
    }

    fn pop_frame(&mut self) {
        self.inner.pop_frame()
    }

    #[inline]
    fn check_access(&mut self, addr: Addr, width: u32, kind: AccessKind) -> CheckResult {
        self.inner.check_access(addr, width, kind)
    }

    fn check_region(&mut self, lo: Addr, hi: Addr, kind: AccessKind) -> CheckResult {
        self.inner.check_region(lo, hi, kind)
    }

    fn check_anchored(
        &mut self,
        anchor: Addr,
        access_lo: Addr,
        access_hi: Addr,
        kind: AccessKind,
    ) -> CheckResult {
        self.inner
            .check_anchored(anchor, access_lo, access_hi, kind)
    }

    fn cached_check(
        &mut self,
        slot: &mut CacheSlot,
        base: Addr,
        offset: i64,
        width: u32,
        kind: AccessKind,
    ) -> CheckResult {
        self.inner.cached_check(slot, base, offset, width, kind)
    }

    fn loop_final_check(&mut self, slot: &CacheSlot, base: Addr, kind: AccessKind) -> CheckResult {
        self.inner.loop_final_check(slot, base, kind)
    }

    fn contain(&mut self, report: &giantsan_runtime::ErrorReport) {
        self.inner.contain(report)
    }

    fn inject_metadata_fault(
        &mut self,
        addr: Addr,
        fault: giantsan_runtime::MetadataFault,
    ) -> bool {
        self.inner.inject_metadata_fault(addr, fault)
    }

    fn shadow_probe(&self, addr: Addr) -> Option<u8> {
        self.inner.shadow_probe(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use giantsan_runtime::ErrorKind;

    #[test]
    fn behaves_exactly_like_asan() {
        let mut mm = AsanMinusMinus::new(RuntimeConfig::small());
        let mut asan = Asan::new(RuntimeConfig::small());
        let a1 = mm.alloc(100, Region::Heap).unwrap();
        let a2 = asan.alloc(100, Region::Heap).unwrap();
        assert_eq!(a1.base, a2.base);
        for off in [-1i64, 0, 50, 99, 100, 200] {
            let r1 = mm.check_access(a1.base.offset(off), 1, AccessKind::Read);
            let r2 = asan.check_access(a2.base.offset(off), 1, AccessKind::Read);
            assert_eq!(r1.is_ok(), r2.is_ok(), "offset {off}");
        }
        assert_eq!(mm.counters().shadow_loads, asan.counters().shadow_loads);
    }

    #[test]
    fn detection_parity_on_temporal_errors() {
        let mut mm = AsanMinusMinus::new(RuntimeConfig::small());
        let a = mm.alloc(32, Region::Heap).unwrap();
        mm.free(a.base).unwrap();
        assert_eq!(
            mm.check_access(a.base, 8, AccessKind::Read)
                .unwrap_err()
                .kind,
            ErrorKind::UseAfterFree
        );
    }

    #[test]
    fn frame_hooks_delegate() {
        let mut mm = AsanMinusMinus::new(RuntimeConfig::small());
        mm.push_frame();
        let s = mm.alloc(16, Region::Stack).unwrap();
        mm.pop_frame();
        assert!(mm.check_access(s.base, 8, AccessKind::Read).is_err());
        assert!(!mm.supports_caching());
    }
}
