#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! Simulated address space and raw shadow memory substrate.
//!
//! The GiantSan paper ([Ling et al., ASPLOS 2024]) builds its sanitizer on a
//! process's real virtual memory plus a compact shadow mapping. This crate
//! provides the equivalent substrate for a *simulated* process: a flat
//! [`AddressSpace`] holding real bytes, and a [`ShadowMemory`] storing one
//! metadata byte per 8-byte *segment* of that space.
//!
//! The substitution preserves the behaviour that matters to the paper: shadow
//! encodings, poisoning, and region checks all operate on segment indexes and
//! shadow byte values, which are identical whether the underlying space is a
//! real `mmap` region or a `Vec<u8>`. Working in simulation additionally lets
//! the test suite use a ground-truth oracle (see `giantsan-runtime`).
//!
//! # Example
//!
//! ```
//! use giantsan_shadow::{AddressSpace, ShadowMemory, SEGMENT_SIZE};
//!
//! let space = AddressSpace::new(0x1_0000, 1 << 20);
//! let mut shadow = ShadowMemory::new(&space, 0xff);
//! let seg = shadow.segment_of(space.lo());
//! shadow.set(seg, 0);
//! assert_eq!(shadow.get(seg), 0);
//! assert_eq!(SEGMENT_SIZE, 8);
//! ```
//!
//! [Ling et al., ASPLOS 2024]: https://doi.org/10.1145/3620665.3640391

mod addr;
pub mod codes;
pub mod kernel;
mod scan;
mod shadow;
mod space;

pub use addr::{align_down, align_up, Addr, SEGMENT_SHIFT, SEGMENT_SIZE};
pub use kernel::{Backend, Kernels};
pub use scan::{slice_all_eq, slice_first_ge, slice_first_ne, SegmentView};
pub use shadow::{SegmentIndex, ShadowMemory};
pub use space::{AddressSpace, SpaceError};
