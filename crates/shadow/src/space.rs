//! A flat simulated address space holding real bytes.

use std::fmt;

use crate::{align_up, Addr, SEGMENT_SIZE};

/// Error raised when an operation touches bytes outside the space.
///
/// Corresponds to a hardware fault (SIGSEGV) in a real process: the simulated
/// interpreter treats it as a crash that every tool, including native
/// execution, observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpaceError {
    /// First address of the faulting range.
    pub addr: Addr,
    /// Length of the faulting access in bytes.
    pub len: u64,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "access of {} bytes at {} is outside the simulated address space",
            self.len, self.addr
        )
    }
}

impl std::error::Error for SpaceError {}

/// A contiguous range of simulated memory with real backing bytes.
///
/// The space starts at a non-zero base so that the null page is unmapped,
/// like a real process image. All loads and stores performed by the mini-IR
/// interpreter land here, which means out-of-bounds writes in buggy workloads
/// corrupt *simulated* data only, while remaining observable to sanitizers.
///
/// # Example
///
/// ```
/// use giantsan_shadow::AddressSpace;
/// let mut space = AddressSpace::new(0x1_0000, 4096);
/// let p = space.lo();
/// space.write_u64(p, 0xdead_beef)?;
/// assert_eq!(space.read_u64(p)?, 0xdead_beef);
/// # Ok::<(), giantsan_shadow::SpaceError>(())
/// ```
#[derive(Clone)]
pub struct AddressSpace {
    base: u64,
    bytes: Vec<u8>,
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("lo", &self.lo())
            .field("hi", &self.hi())
            .field("size", &self.bytes.len())
            .finish()
    }
}

impl AddressSpace {
    /// Creates a space of `size` bytes starting at `base`.
    ///
    /// Both are rounded up to segment alignment so that the shadow mapping has
    /// no ragged edges.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero (the null page must stay unmapped) or `size`
    /// is zero.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(base != 0, "address space must not contain the null page");
        assert!(size != 0, "address space must not be empty");
        let base = align_up(base, SEGMENT_SIZE);
        let size = align_up(size, SEGMENT_SIZE);
        AddressSpace {
            base,
            bytes: vec![0u8; size as usize],
        }
    }

    /// Lowest mapped address.
    pub fn lo(&self) -> Addr {
        Addr::new(self.base)
    }

    /// One past the highest mapped address.
    pub fn hi(&self) -> Addr {
        Addr::new(self.base + self.bytes.len() as u64)
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns `true` if the whole range `[addr, addr+len)` is mapped.
    pub fn contains_range(&self, addr: Addr, len: u64) -> bool {
        let a = addr.raw();
        a >= self.base && len <= self.size() && a - self.base <= self.size() - len
    }

    fn index(&self, addr: Addr, len: u64) -> Result<usize, SpaceError> {
        if self.contains_range(addr, len) {
            Ok((addr.raw() - self.base) as usize)
        } else {
            Err(SpaceError { addr, len })
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if any byte of the range is unmapped.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) -> Result<(), SpaceError> {
        let i = self.index(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.bytes[i..i + buf.len()]);
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if any byte of the range is unmapped.
    pub fn write(&mut self, addr: Addr, buf: &[u8]) -> Result<(), SpaceError> {
        let i = self.index(addr, buf.len() as u64)?;
        self.bytes[i..i + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads a little-endian integer of `width` bytes (1, 2, 4, or 8).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the range is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of 1, 2, 4, 8.
    pub fn read_uint(&self, addr: Addr, width: u32) -> Result<u64, SpaceError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..width as usize])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes the low `width` bytes of `value` little-endian.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the range is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of 1, 2, 4, 8.
    pub fn write_uint(&mut self, addr: Addr, value: u64, width: u32) -> Result<(), SpaceError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        let buf = value.to_le_bytes();
        self.write(addr, &buf[..width as usize])
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the range is unmapped.
    pub fn read_u64(&self, addr: Addr) -> Result<u64, SpaceError> {
        self.read_uint(addr, 8)
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the range is unmapped.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), SpaceError> {
        self.write_uint(addr, value, 8)
    }

    /// Fills `[addr, addr+len)` with `byte` (the simulated `memset`).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if the range is unmapped.
    pub fn fill(&mut self, addr: Addr, byte: u8, len: u64) -> Result<(), SpaceError> {
        let i = self.index(addr, len)?;
        self.bytes[i..i + len as usize].fill(byte);
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` (the simulated `memcpy`;
    /// non-overlapping semantics are not required — the copy behaves like
    /// `memmove`).
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError`] if either range is unmapped.
    pub fn copy(&mut self, dst: Addr, src: Addr, len: u64) -> Result<(), SpaceError> {
        let si = self.index(src, len)?;
        let di = self.index(dst, len)?;
        self.bytes.copy_within(si..si + len as usize, di);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(0x1_0000, 4096)
    }

    #[test]
    fn bounds_are_aligned() {
        let s = AddressSpace::new(0x1_0001, 4097);
        assert!(s.lo().is_segment_aligned());
        assert_eq!(s.size() % SEGMENT_SIZE, 0);
    }

    #[test]
    #[should_panic(expected = "null page")]
    fn zero_base_rejected() {
        let _ = AddressSpace::new(0, 4096);
    }

    #[test]
    fn round_trip_ints() {
        let mut s = space();
        let p = s.lo() + 16;
        for &w in &[1u32, 2, 4, 8] {
            let v = 0x1122_3344_5566_7788u64 & (u64::MAX >> (64 - 8 * w));
            s.write_uint(p, v, w).unwrap();
            assert_eq!(s.read_uint(p, w).unwrap(), v);
        }
    }

    #[test]
    fn out_of_range_faults() {
        let mut s = space();
        let past = s.hi();
        assert!(s.read_u64(past).is_err());
        assert!(s.write_u64(past - 4, 1).is_err());
        assert!(s.read_u64(Addr::new(0)).is_err());
        assert!(s.read_u64(s.lo() - 8).is_err());
        // Ranges straddling the top edge fault too.
        assert!(s.fill(s.hi() - 4, 0, 8).is_err());
    }

    #[test]
    fn contains_range_handles_overflowing_len() {
        let s = space();
        assert!(!s.contains_range(s.lo(), u64::MAX));
        assert!(s.contains_range(s.lo(), s.size()));
        assert!(!s.contains_range(s.lo() + 1, s.size()));
    }

    #[test]
    fn fill_and_copy() {
        let mut s = space();
        let a = s.lo();
        let b = s.lo() + 64;
        s.fill(a, 0xab, 32).unwrap();
        s.copy(b, a, 32).unwrap();
        assert_eq!(s.read_uint(b + 31, 1).unwrap(), 0xab);
        assert_eq!(s.read_uint(b + 24, 8).unwrap(), 0xabab_abab_abab_abab);
    }

    #[test]
    fn overlapping_copy_behaves_like_memmove() {
        let mut s = space();
        let a = s.lo();
        for i in 0..16u64 {
            s.write_uint(a + i, i, 1).unwrap();
        }
        s.copy(a + 4, a, 12).unwrap();
        for i in 0..12u64 {
            assert_eq!(s.read_uint(a + 4 + i, 1).unwrap(), i);
        }
    }

    #[test]
    fn fault_error_displays() {
        let s = space();
        let err = s.read_u64(Addr::new(8)).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("outside the simulated address space"));
    }
}
