//! Simulated virtual addresses and segment geometry.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size in bytes of one shadow segment.
///
/// Both ASan and GiantSan map each aligned 8-byte block of application memory
/// to one shadow byte (paper §4.1: "We choose the commonly used eight-byte
/// segment shadow memory as ASan").
pub const SEGMENT_SIZE: u64 = 8;

/// `log2(SEGMENT_SIZE)`; shifting an address right by this yields its segment
/// index, mirroring ASan's `addr >> 3` shadow address computation.
pub const SEGMENT_SHIFT: u32 = 3;

/// A simulated virtual address.
///
/// Addresses are plain 64-bit values inside one [`crate::AddressSpace`]. The
/// newtype keeps simulated addresses from being confused with sizes, offsets,
/// or segment indexes (all of which are also integers in this codebase).
///
/// # Example
///
/// ```
/// use giantsan_shadow::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!((a + 8) - a, 8);
/// assert!(a.is_segment_aligned());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address; dereferencing it is always invalid.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the index of the segment containing this address.
    pub const fn segment(self) -> u64 {
        self.0 >> SEGMENT_SHIFT
    }

    /// Returns the byte offset of this address within its segment (`addr & 7`).
    pub const fn segment_offset(self) -> u64 {
        self.0 & (SEGMENT_SIZE - 1)
    }

    /// Returns `true` if this address is aligned to a segment boundary.
    pub const fn is_segment_aligned(self) -> bool {
        self.segment_offset() == 0
    }

    /// Offsets the address by a signed byte delta, saturating at zero.
    ///
    /// Negative results clamp to [`Addr::NULL`], which is never a valid
    /// location, so underflowing arithmetic surfaces as an invalid access
    /// instead of wrapping around the 64-bit space.
    pub fn offset(self, delta: i64) -> Addr {
        if delta >= 0 {
            Addr(self.0.saturating_add(delta as u64))
        } else {
            Addr(self.0.saturating_sub(delta.unsigned_abs()))
        }
    }

    /// Returns the distance in bytes from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `other > self`.
    pub fn distance_from(self, other: Addr) -> u64 {
        debug_assert!(other <= self, "distance_from: {other:?} > {self:?}");
        self.0 - other.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;
    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0 - rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

/// Rounds `value` up to the next multiple of `align` (a power of two).
///
/// # Example
///
/// ```
/// assert_eq!(giantsan_shadow::align_up(13, 8), 16);
/// assert_eq!(giantsan_shadow::align_up(16, 8), 16);
/// ```
pub const fn align_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

/// Rounds `value` down to the previous multiple of `align` (a power of two).
///
/// # Example
///
/// ```
/// assert_eq!(giantsan_shadow::align_down(13, 8), 8);
/// ```
pub const fn align_down(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    value & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_math_matches_asan_shift() {
        let a = Addr::new(0x1234);
        assert_eq!(a.segment(), 0x1234 >> 3);
        assert_eq!(a.segment_offset(), 0x1234 & 7);
    }

    #[test]
    fn alignment_predicates() {
        assert!(Addr::new(0).is_segment_aligned());
        assert!(Addr::new(8).is_segment_aligned());
        assert!(!Addr::new(9).is_segment_aligned());
        assert!(!Addr::new(15).is_segment_aligned());
    }

    #[test]
    fn offset_saturates_below_zero() {
        let a = Addr::new(4);
        assert_eq!(a.offset(-16), Addr::NULL);
        assert_eq!(a.offset(4), Addr::new(8));
        assert_eq!(a.offset(-4), Addr::new(0));
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 16), 16);
        assert_eq!(align_down(15, 8), 8);
        assert_eq!(align_down(16, 8), 16);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Addr::new(100);
        assert_eq!(a + 20, Addr::new(120));
        assert_eq!(a - 20, Addr::new(80));
        assert_eq!(Addr::new(120) - a, 20);
        assert_eq!(a.distance_from(Addr::new(40)), 60);
        let mut b = a;
        b += 4;
        assert_eq!(b, Addr::new(104));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let a = Addr::new(0xdead);
        assert_eq!(format!("{a}"), "0xdead");
        assert_eq!(format!("{a:?}"), "Addr(0xdead)");
        assert_eq!(format!("{a:x}"), "dead");
    }

    #[test]
    fn conversions() {
        let a: Addr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
