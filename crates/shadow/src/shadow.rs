//! Raw shadow memory: one metadata byte per 8-byte segment.
//!
//! This module is deliberately encoding-agnostic. ASan and GiantSan interpret
//! the shadow bytes differently (`giantsan-baselines` vs `giantsan-core`);
//! what they share — and what lives here — is the *mapping* from application
//! addresses to shadow bytes and bulk get/set operations over it.

use std::fmt;

use crate::{kernel, Addr, AddressSpace, SEGMENT_SIZE};

/// Index of a segment within a [`ShadowMemory`].
///
/// A `SegmentIndex` is relative to the shadow array, not an absolute
/// `addr >> 3` value: the shadow only spans the simulated address space, so
/// the base segment is subtracted once on entry. This mirrors ASan's
/// `(addr >> 3) + offset` shadow address computation with the offset folded in.
pub type SegmentIndex = u64;

/// Shadow memory for an [`AddressSpace`]: one byte per 8-byte segment.
///
/// # Example
///
/// ```
/// use giantsan_shadow::{AddressSpace, ShadowMemory};
/// let space = AddressSpace::new(0x1_0000, 1 << 16);
/// let mut shadow = ShadowMemory::new(&space, 0xff);
/// let s = shadow.segment_of(space.lo() + 64);
/// shadow.set_range(s, s + 4, 0);
/// assert_eq!(shadow.get(s + 3), 0);
/// assert_eq!(shadow.get(s + 4), 0xff);
/// ```
#[derive(Clone)]
pub struct ShadowMemory {
    /// Segment index of the first mapped segment (absolute `addr >> 3`).
    base_segment: u64,
    bytes: Vec<u8>,
    fill: u8,
}

impl fmt::Debug for ShadowMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("segments", &self.bytes.len())
            .field("base_segment", &self.base_segment)
            .field("fill", &self.fill)
            .finish()
    }
}

impl ShadowMemory {
    /// Creates a shadow for `space`, with every segment set to `fill`.
    ///
    /// `fill` is the encoding-specific "unallocated" state code.
    pub fn new(space: &AddressSpace, fill: u8) -> Self {
        let segments = space.size() / SEGMENT_SIZE;
        ShadowMemory {
            base_segment: space.lo().segment(),
            bytes: vec![fill; segments as usize],
            fill,
        }
    }

    /// Number of segments covered.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Returns `true` if the shadow covers no segments (never true for a
    /// shadow built from a non-empty space).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The encoding-specific fill byte used for unmapped / unallocated
    /// segments.
    pub fn fill_byte(&self) -> u8 {
        self.fill
    }

    /// Maps an application address to its segment index.
    ///
    /// Addresses below the space clamp to segment 0 only in debug-panic
    /// fashion; callers are expected to pass mapped addresses (checkers call
    /// [`ShadowMemory::try_segment_of`] for possibly-wild pointers).
    pub fn segment_of(&self, addr: Addr) -> SegmentIndex {
        debug_assert!(
            addr.segment() >= self.base_segment,
            "address below shadowed space"
        );
        addr.segment() - self.base_segment
    }

    /// Maps an application address to its segment index, or `None` if the
    /// address lies outside the shadowed space.
    pub fn try_segment_of(&self, addr: Addr) -> Option<SegmentIndex> {
        let seg = addr.segment();
        if seg < self.base_segment {
            return None;
        }
        let rel = seg - self.base_segment;
        (rel < self.len()).then_some(rel)
    }

    /// Returns the first application address of segment `seg`.
    pub fn segment_base(&self, seg: SegmentIndex) -> Addr {
        Addr::new((self.base_segment + seg) * SEGMENT_SIZE)
    }

    /// Reads the shadow byte of segment `seg`.
    ///
    /// Out-of-range indexes read as the fill byte, so checks against wild
    /// pointers see "unallocated" rather than panicking.
    pub fn get(&self, seg: SegmentIndex) -> u8 {
        self.bytes.get(seg as usize).copied().unwrap_or(self.fill)
    }

    /// Writes the shadow byte of segment `seg`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of range: poisoning, unlike checking, only ever
    /// targets memory the allocator owns.
    pub fn set(&mut self, seg: SegmentIndex, value: u8) {
        self.bytes[seg as usize] = value;
    }

    /// Sets every segment in `[lo, hi)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn set_range(&mut self, lo: SegmentIndex, hi: SegmentIndex, value: u8) {
        kernel::active().fill(&mut self.bytes[lo as usize..hi as usize], value);
    }

    /// Returns a slice of the shadow bytes in `[lo, hi)` for bulk inspection.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, lo: SegmentIndex, hi: SegmentIndex) -> &[u8] {
        &self.bytes[lo as usize..hi as usize]
    }

    /// Returns a mutable slice of the shadow bytes in `[lo, hi)`; used by the
    /// linear-time poisoners.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_mut(&mut self, lo: SegmentIndex, hi: SegmentIndex) -> &mut [u8] {
        &mut self.bytes[lo as usize..hi as usize]
    }

    /// Tiles `pattern` repeatedly over the segments in `[lo, hi)` — the
    /// block-granular poison entry point: a size-class block whose slots all
    /// share one shadow image is stamped with that image in a single call
    /// instead of one write sequence per slot.
    ///
    /// The range length must be a multiple of the pattern length; a
    /// single-byte pattern degenerates to [`ShadowMemory::set_range`]'s
    /// kernel fill.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed, if `pattern` is
    /// empty, or if the range length is not a multiple of `pattern.len()`.
    pub fn tile_pattern(&mut self, lo: SegmentIndex, hi: SegmentIndex, pattern: &[u8]) {
        assert!(!pattern.is_empty(), "empty tile pattern");
        let dst = &mut self.bytes[lo as usize..hi as usize];
        if let [byte] = pattern {
            kernel::active().fill(dst, *byte);
            return;
        }
        assert_eq!(
            dst.len() % pattern.len(),
            0,
            "range must hold whole pattern repetitions"
        );
        for chunk in dst.chunks_exact_mut(pattern.len()) {
            chunk.copy_from_slice(pattern);
        }
    }

    /// Resets the whole shadow to the fill byte.
    pub fn clear(&mut self) {
        let fill = self.fill;
        kernel::active().fill(&mut self.bytes, fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow() -> (AddressSpace, ShadowMemory) {
        let space = AddressSpace::new(0x1_0000, 1 << 12);
        let shadow = ShadowMemory::new(&space, 0xfe);
        (space, shadow)
    }

    #[test]
    fn geometry() {
        let (space, shadow) = shadow();
        assert_eq!(shadow.len(), space.size() / SEGMENT_SIZE);
        assert!(!shadow.is_empty());
        assert_eq!(shadow.segment_of(space.lo()), 0);
        assert_eq!(shadow.segment_of(space.lo() + 8), 1);
        assert_eq!(shadow.segment_of(space.lo() + 15), 1);
        assert_eq!(shadow.segment_base(2), space.lo() + 16);
    }

    #[test]
    fn try_segment_rejects_wild_addresses() {
        let (space, shadow) = shadow();
        assert_eq!(shadow.try_segment_of(Addr::new(0)), None);
        assert_eq!(shadow.try_segment_of(space.hi()), None);
        assert_eq!(
            shadow.try_segment_of(space.hi() - 1),
            Some(shadow.len() - 1)
        );
        assert_eq!(shadow.try_segment_of(space.lo()), Some(0));
    }

    #[test]
    fn get_set_roundtrip() {
        let (_, mut shadow) = shadow();
        shadow.set(5, 0x40);
        assert_eq!(shadow.get(5), 0x40);
        assert_eq!(shadow.get(6), 0xfe);
    }

    #[test]
    fn out_of_range_get_reads_fill() {
        let (_, shadow) = shadow();
        assert_eq!(shadow.get(shadow.len() + 100), 0xfe);
    }

    #[test]
    fn range_ops() {
        let (_, mut shadow) = shadow();
        shadow.set_range(10, 20, 0);
        assert_eq!(shadow.slice(10, 20), &[0u8; 10][..]);
        assert_eq!(shadow.get(9), 0xfe);
        assert_eq!(shadow.get(20), 0xfe);
        shadow.slice_mut(10, 12).copy_from_slice(&[1, 2]);
        assert_eq!(shadow.get(10), 1);
        assert_eq!(shadow.get(11), 2);
        shadow.clear();
        assert_eq!(shadow.get(10), 0xfe);
    }

    #[test]
    fn tile_pattern_stamps_whole_range() {
        let (_, mut shadow) = shadow();
        shadow.tile_pattern(8, 20, &[1, 2, 3]);
        assert_eq!(shadow.slice(8, 14), &[1, 2, 3, 1, 2, 3]);
        assert_eq!(shadow.get(19), 3);
        assert_eq!(shadow.get(7), 0xfe);
        assert_eq!(shadow.get(20), 0xfe);
        // Single-byte pattern takes the kernel fill path.
        shadow.tile_pattern(8, 20, &[9]);
        assert_eq!(shadow.slice(8, 20), &[9u8; 12][..]);
    }

    #[test]
    #[should_panic(expected = "whole pattern repetitions")]
    fn tile_pattern_rejects_ragged_range() {
        let (_, mut shadow) = shadow();
        shadow.tile_pattern(0, 10, &[1, 2, 3]);
    }

    #[test]
    fn debug_output_nonempty() {
        let (_, shadow) = shadow();
        assert!(format!("{shadow:?}").contains("ShadowMemory"));
    }
}
