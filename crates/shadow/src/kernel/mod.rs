//! Shadow kernels: the byte-granular scan and bulk-write loops every check
//! and every poisoning operation bottoms out in, with three selectable
//! backends behind one dispatch table.
//!
//! Segment folding makes region *checks* O(log n), but each folded check —
//! and every blame scan, validator sweep, ASan guardian walk, and
//! alloc/free poison — still ends in a loop over raw shadow bytes. This
//! module owns those loops:
//!
//! * [`Kernels::first_ne`] / [`Kernels::first_ge`] / [`Kernels::all_eq`] —
//!   the scan surface (region checks, blame scans, shadow validation);
//! * [`Kernels::fill`] / [`Kernels::write_folded_run`] — the bulk-write
//!   surface (redzone/freed poisoning and the §4.1 folding pattern written
//!   on every allocation).
//!
//! # Backends
//!
//! | backend  | step width | notes |
//! |----------|------------|-------|
//! | `scalar` | 1 byte     | the reference the others are tested against |
//! | `swar`   | 8 bytes    | SIMD-within-a-register `u64` predicates (PR 1) |
//! | `simd`   | 16/32 bytes| explicit `core::arch` SSE2/AVX2 kernels, portable fallback elsewhere |
//!
//! # Dispatch
//!
//! The active backend is resolved **once**, on first use: the
//! `GIANTSAN_KERNEL` environment variable (`scalar`, `swar`, or `simd`,
//! case-insensitive) wins if set to a valid name; otherwise a `OnceLock`'d
//! CPUID probe picks the widest `simd` variant the host supports (AVX2 →
//! SSE2 → portable fallback, which reuses the SWAR loops). The resolved
//! [`Kernels`] is a table of plain function pointers — no trait objects —
//! so every hot-path call is one predictable indirect call, and the
//! functions behind it are monomorphic and fully optimised.
//!
//! # The digest-invariance contract
//!
//! Backends may differ in *speed only*. For every input, all three return
//! byte-identical answers: the same `Option<usize>` from the scanners, the
//! same bytes from the writers. Counters never observe the scan width
//! (semantic loads are counted by the checkers, not the kernels), so
//! interpreter digests, golden plans, and campaign digests are identical
//! under every backend — CI runs the tier-1 suite and diffs the figure8 and
//! fault-campaign digests under all three to enforce it.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::codes;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod simd;
mod swar;

pub use swar::has_byte_gt;

/// A selectable kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Byte-at-a-time reference loops.
    Scalar,
    /// `u64` SIMD-within-a-register loops (eight bytes per step).
    Swar,
    /// Explicit SSE2/AVX2 kernels where the host supports them, otherwise a
    /// portable fallback equivalent to [`Backend::Swar`].
    Simd,
}

impl Backend {
    /// Every backend, in reference-to-widest order.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Swar, Backend::Simd];

    /// The `GIANTSAN_KERNEL` spelling of this backend.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Swar => "swar",
            Backend::Simd => "simd",
        }
    }

    /// Parses a `GIANTSAN_KERNEL` value, case-insensitively.
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL
            .into_iter()
            .find(|b| b.label().eq_ignore_ascii_case(s.trim()))
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The kernel dispatch table: one function pointer per hot loop, resolved
/// once at startup (see the module docs) so the hot path never re-probes.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    name: &'static str,
    backend: Backend,
    first_ne: fn(&[u8], u8) -> Option<usize>,
    first_ge: fn(&[u8], u8) -> Option<usize>,
    all_eq: fn(&[u8], u8) -> bool,
    fill: fn(&mut [u8], u8),
    write_folded_run: fn(&mut [u8]),
}

impl Kernels {
    /// Identity label for telemetry (`scalar`, `swar`, `simd-avx2`,
    /// `simd-sse2`, or `simd-portable`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The backend this table belongs to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Index of the first byte of `s` not equal to `byte`.
    #[inline]
    pub fn first_ne(&self, s: &[u8], byte: u8) -> Option<usize> {
        (self.first_ne)(s, byte)
    }

    /// Index of the first byte of `s` that is `>= threshold` (unsigned).
    ///
    /// Exact for *every* threshold, including `>= 128`: the SWAR backend
    /// routes word predicates whose `n > 127` precondition would be violated
    /// to a byte loop, and the SIMD backends use an unsigned-max compare
    /// that has no threshold restriction.
    #[inline]
    pub fn first_ge(&self, s: &[u8], threshold: u8) -> Option<usize> {
        (self.first_ge)(s, threshold)
    }

    /// Whether every byte of `s` equals `byte` (true for the empty slice).
    #[inline]
    pub fn all_eq(&self, s: &[u8], byte: u8) -> bool {
        (self.all_eq)(s, byte)
    }

    /// Sets every byte of `dst` to `byte` (redzone / freed / unallocated
    /// poisoning, shadow clears).
    #[inline]
    pub fn fill(&self, dst: &mut [u8], byte: u8) {
        (self.fill)(dst, byte)
    }

    /// Writes the canonical §4.1 folding pattern for `dst.len()` full
    /// segments into `dst`: segment `j` receives `folded(⌊log2(q − j)⌋)`
    /// with the degree capped at [`codes::MAX_DEGREE`].
    #[inline]
    pub fn write_folded_run(&self, dst: &mut [u8]) {
        (self.write_folded_run)(dst)
    }
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    backend: Backend::Scalar,
    first_ne: scalar::first_ne,
    first_ge: scalar::first_ge,
    all_eq: scalar::all_eq,
    fill: scalar::fill,
    write_folded_run: scalar::write_folded_run,
};

static SWAR: Kernels = Kernels {
    name: "swar",
    backend: Backend::Swar,
    first_ne: swar::first_ne,
    first_ge: swar::first_ge,
    all_eq: swar::all_eq,
    fill: swar::fill,
    write_folded_run: swar::write_folded_run,
};

/// Fallback `simd` table for hosts with no supported vector extension: the
/// SWAR loops under the `simd` identity, so `GIANTSAN_KERNEL=simd` is valid
/// (and honest) everywhere.
static SIMD_PORTABLE: Kernels = Kernels {
    name: "simd-portable",
    backend: Backend::Simd,
    first_ne: swar::first_ne,
    first_ge: swar::first_ge,
    all_eq: swar::all_eq,
    fill: swar::fill,
    write_folded_run: swar::write_folded_run,
};

/// Resolves the `simd` backend for this host, once: the CPUID probe behind
/// the module-level dispatch rules.
fn simd_resolved() -> &'static Kernels {
    static RESOLVED: OnceLock<&'static Kernels> = OnceLock::new();
    RESOLVED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return &simd::AVX2;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                return &simd::SSE2;
            }
        }
        &SIMD_PORTABLE
    })
}

/// Returns the kernel table of an explicit backend, independent of the
/// process-wide selection. `Backend::Simd` resolves to the widest variant
/// the host supports. Differential tests and the kernel-sweep benchmarks
/// compare backends through this without touching global state.
pub fn select(backend: Backend) -> &'static Kernels {
    match backend {
        Backend::Scalar => &SCALAR,
        Backend::Swar => &SWAR,
        Backend::Simd => simd_resolved(),
    }
}

/// Backend index held by [`ACTIVE`]; `UNRESOLVED` forces the one-time probe.
const UNRESOLVED: u8 = u8::MAX;
static ACTIVE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// The process-wide active kernel table.
///
/// First call resolves the backend (env override, then CPUID probe — see
/// the module docs) and caches it; subsequent calls are one relaxed atomic
/// load plus a table lookup.
#[inline]
pub fn active() -> &'static Kernels {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => &SCALAR,
        1 => &SWAR,
        2 => simd_resolved(),
        _ => resolve_active(),
    }
}

#[cold]
fn resolve_active() -> &'static Kernels {
    let backend = std::env::var("GIANTSAN_KERNEL")
        .ok()
        .as_deref()
        .and_then(Backend::parse)
        .unwrap_or(Backend::Simd);
    ACTIVE.store(backend as u8, Ordering::Relaxed);
    select(backend)
}

/// Forces the process-wide backend, overriding the env/CPUID resolution.
///
/// A testing and benchmarking hook: the digest-invariance contract makes
/// switching benign (all backends return identical answers), but production
/// code should let the startup resolution stand. Takes effect for every
/// subsequent [`active`] call in the process.
pub fn force(backend: Backend) {
    ACTIVE.store(backend as u8, Ordering::Relaxed);
}

/// Decomposes the §4.1 folding pattern for `q` full segments into its
/// constant-code runs, highest degree first: segment `j` has degree
/// `⌊log2(q − j)⌋` (capped), so the degree-`d` segments are exactly those
/// with `q − j ∈ [2^d, 2^{d+1})` — a contiguous run. Shared by every
/// backend's [`Kernels::write_folded_run`]; only the fill width differs.
fn folded_runs(q: u64, mut emit: impl FnMut(u64, u64, u8)) {
    if q == 0 {
        return;
    }
    let t = codes::degree_at(q, 0);
    let mut d = t;
    loop {
        // Degrees are capped at MAX_DEGREE, so the top run may span several
        // powers of two.
        let hi_remaining = if d == t { q } else { (2u64 << d) - 1 };
        let lo_remaining = 1u64 << d;
        let j_lo = q - hi_remaining.min(q);
        let j_hi = q - lo_remaining + 1; // exclusive: j with remaining >= 2^d
        emit(j_lo, j_hi, codes::folded(d));
        if d == 0 {
            break;
        }
        d -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parse_roundtrips() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.label()), Some(b));
            assert_eq!(Backend::parse(&b.label().to_uppercase()), Some(b));
            assert_eq!(format!("{b}"), b.label());
        }
        assert_eq!(Backend::parse(" swar "), Some(Backend::Swar));
        assert_eq!(Backend::parse("avx2"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn select_returns_the_requested_backend() {
        for b in Backend::ALL {
            let k = select(b);
            assert_eq!(k.backend(), b, "{}", k.name());
        }
        assert_eq!(select(Backend::Scalar).name(), "scalar");
        assert_eq!(select(Backend::Swar).name(), "swar");
        assert!(select(Backend::Simd).name().starts_with("simd"));
    }

    #[test]
    fn active_is_stable_and_forceable() {
        let first = active().name();
        assert_eq!(active().name(), first, "resolution must be sticky");
        // force() is process-global; restore the resolved default so other
        // tests in this binary observe the startup selection. All backends
        // return identical answers, so the window is benign regardless.
        let restore = active().backend();
        for b in Backend::ALL {
            force(b);
            assert_eq!(active().backend(), b);
        }
        force(restore);
    }

    #[test]
    fn every_backend_agrees_on_dense_patterns() {
        // Cross-backend parity on deliberately adversarial shapes: hits at
        // every lane offset of the widest (32-byte) step, lengths around
        // every width boundary, thresholds on both sides of 128.
        let kernels: Vec<_> = Backend::ALL.iter().map(|&b| select(b)).collect();
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100] {
            for hit in 0..len {
                let mut v = vec![0x40u8; len];
                v[hit] = 0xfe;
                for k in &kernels {
                    assert_eq!(k.first_ne(&v, 0x40), Some(hit), "{} len={len}", k.name());
                    assert_eq!(k.first_ge(&v, 0x41), Some(hit), "{} len={len}", k.name());
                    assert_eq!(k.first_ge(&v, 0xfe), Some(hit), "{} len={len}", k.name());
                    assert_eq!(k.first_ge(&v, 0xff), None, "{} len={len}", k.name());
                    assert!(!k.all_eq(&v, 0x40), "{} len={len}", k.name());
                }
            }
            let v = vec![0x40u8; len];
            for k in &kernels {
                assert_eq!(k.first_ne(&v, 0x40), None, "{}", k.name());
                assert_eq!(k.first_ge(&v, 0x41), None, "{}", k.name());
                assert!(k.all_eq(&v, 0x40), "{}", k.name());
                assert_eq!(
                    k.first_ge(&v, 0),
                    if len == 0 { None } else { Some(0) },
                    "{}: threshold 0 admits every byte",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn every_backend_writes_identical_patterns() {
        for q in [0usize, 1, 2, 3, 7, 8, 9, 31, 32, 68, 127, 128, 1000] {
            let mut reference = vec![0u8; q];
            SCALAR.write_folded_run(&mut reference);
            for b in [Backend::Swar, Backend::Simd] {
                let mut out = vec![0u8; q];
                select(b).write_folded_run(&mut out);
                assert_eq!(out, reference, "{b} q={q}");
            }
            for b in Backend::ALL {
                let mut out = vec![0u8; q];
                select(b).fill(&mut out, 0x4e);
                assert!(out.iter().all(|&x| x == 0x4e), "{b} fill q={q}");
            }
        }
    }

    #[test]
    fn folded_runs_cover_exactly_once_in_descending_degree() {
        for q in 1..=600u64 {
            let mut covered = vec![0u32; q as usize];
            let mut last_code = 0u8;
            folded_runs(q, |lo, hi, code| {
                assert!(lo < hi, "q={q}: empty run");
                assert!(code >= last_code, "q={q}: runs must descend in degree");
                last_code = code;
                for j in lo..hi {
                    covered[j as usize] += 1;
                    assert_eq!(code, codes::folded(codes::degree_at(q, j)), "q={q} j={j}");
                }
            });
            assert!(covered.iter().all(|&c| c == 1), "q={q}: not a partition");
        }
    }
}
