//! The `scalar` backend: one byte per step, no cleverness.
//!
//! These loops are the semantic reference the `swar` and `simd` backends are
//! differential-tested against — kept deliberately close to a transcription
//! of each kernel's contract, at the cost of speed.

use crate::codes;

use super::folded_runs;

pub(super) fn first_ne(s: &[u8], byte: u8) -> Option<usize> {
    s.iter().position(|&b| b != byte)
}

pub(super) fn first_ge(s: &[u8], threshold: u8) -> Option<usize> {
    s.iter().position(|&b| b >= threshold)
}

pub(super) fn all_eq(s: &[u8], byte: u8) -> bool {
    s.iter().all(|&b| b == byte)
}

pub(super) fn fill(dst: &mut [u8], byte: u8) {
    for b in dst.iter_mut() {
        *b = byte;
    }
}

pub(super) fn write_folded_run(dst: &mut [u8]) {
    // Per-segment, straight from Definition 1 — ignoring the run structure
    // the other backends exploit.
    let q = dst.len() as u64;
    for (j, b) in dst.iter_mut().enumerate() {
        *b = codes::folded(codes::degree_at(q, j as u64));
    }
    // The run decomposition must agree; debug builds cross-check it here so
    // a folded_runs bug cannot hide behind backend agreement.
    if cfg!(debug_assertions) {
        folded_runs(q, |lo, hi, code| {
            debug_assert!(dst[lo as usize..hi as usize].iter().all(|&b| b == code));
        });
    }
}
