//! The `simd` backend: explicit x86-64 vector kernels, 16 (SSE2) or 32
//! (AVX2) bytes per step.
//!
//! Both widths share one shape per kernel: compare a full vector, extract a
//! per-lane bitmask with `movemask`, and let `trailing_zeros` name the first
//! hit lane — the vector analogue of the SWAR word-then-byte split, except
//! the mask is already byte-precise so no re-scan is needed. Unsigned `>=`
//! (which has no direct SSE/AVX compare) uses the max identity:
//! `b >= t ⇔ max_epu8(b, t) == b`, exact for **every** threshold including
//! `>= 128` — no sign-flip trick, no over-approximation.
//!
//! Tails shorter than a vector fall through to the `swar` loops, so the two
//! backends trivially agree there.
//!
//! # Safety
//!
//! The AVX2 functions are `#[target_feature]` and reached only through the
//! [`AVX2`] table, which [`super::simd_resolved`] installs strictly after
//! `is_x86_feature_detected!("avx2")` succeeds. SSE2 is part of the x86-64
//! baseline, so [`SSE2`] needs no gate beyond the architecture itself. The
//! remaining `unsafe` is the unaligned vector loads/stores, which are valid
//! for any `len >= width` slice region.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_max_epu8, _mm256_movemask_epi8,
    _mm256_set1_epi8, _mm256_storeu_si256, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_max_epu8,
    _mm_movemask_epi8, _mm_set1_epi8, _mm_storeu_si128,
};

use super::{folded_runs, swar, Backend, Kernels};

/// Kernel table installed on AVX2-capable hosts.
pub(super) static AVX2: Kernels = Kernels {
    name: "simd-avx2",
    backend: Backend::Simd,
    first_ne: first_ne_avx2,
    first_ge: first_ge_avx2,
    all_eq: all_eq_avx2,
    fill: fill_avx2,
    write_folded_run: write_folded_run_avx2,
};

/// Kernel table installed on SSE2-only hosts.
pub(super) static SSE2: Kernels = Kernels {
    name: "simd-sse2",
    backend: Backend::Simd,
    first_ne: first_ne_sse2,
    first_ge: first_ge_sse2,
    all_eq: all_eq_sse2,
    fill: fill_sse2,
    write_folded_run: write_folded_run_sse2,
};

// ---------------------------------------------------------------- AVX2 ----

fn first_ne_avx2(s: &[u8], byte: u8) -> Option<usize> {
    // SAFETY: this table is only installed after the AVX2 CPUID probe.
    unsafe { first_ne_avx2_impl(s, byte) }
}

#[target_feature(enable = "avx2")]
unsafe fn first_ne_avx2_impl(s: &[u8], byte: u8) -> Option<usize> {
    unsafe {
        let pattern = _mm256_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 32 <= s.len() {
            let v = _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i);
            let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pattern)) as u32;
            if mask != u32::MAX {
                return Some(i + (!mask).trailing_zeros() as usize);
            }
            i += 32;
        }
        swar::first_ne(&s[i..], byte).map(|j| i + j)
    }
}

fn first_ge_avx2(s: &[u8], threshold: u8) -> Option<usize> {
    // SAFETY: this table is only installed after the AVX2 CPUID probe.
    unsafe { first_ge_avx2_impl(s, threshold) }
}

#[target_feature(enable = "avx2")]
unsafe fn first_ge_avx2_impl(s: &[u8], threshold: u8) -> Option<usize> {
    unsafe {
        let t = _mm256_set1_epi8(threshold as i8);
        let mut i = 0usize;
        while i + 32 <= s.len() {
            let v = _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i);
            // b >= t (unsigned) ⇔ max_epu8(b, t) == b.
            let ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, t), v);
            let mask = _mm256_movemask_epi8(ge) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 32;
        }
        swar::first_ge(&s[i..], threshold).map(|j| i + j)
    }
}

fn all_eq_avx2(s: &[u8], byte: u8) -> bool {
    // SAFETY: this table is only installed after the AVX2 CPUID probe.
    unsafe { all_eq_avx2_impl(s, byte) }
}

#[target_feature(enable = "avx2")]
unsafe fn all_eq_avx2_impl(s: &[u8], byte: u8) -> bool {
    unsafe {
        let pattern = _mm256_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 32 <= s.len() {
            let v = _mm256_loadu_si256(s.as_ptr().add(i) as *const __m256i);
            if _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, pattern)) as u32 != u32::MAX {
                return false;
            }
            i += 32;
        }
        swar::all_eq(&s[i..], byte)
    }
}

/// Above this many bytes the buffer no longer fits the fast cache levels and
/// libc memset's non-temporal stores win over a plain vector store loop;
/// below it the loop avoids memset's dispatch overhead.
const FILL_MEMSET_CUTOVER: usize = 32 * 1024;

fn fill_avx2(dst: &mut [u8], byte: u8) {
    if dst.len() >= FILL_MEMSET_CUTOVER {
        return swar::fill(dst, byte);
    }
    // SAFETY: this table is only installed after the AVX2 CPUID probe.
    unsafe { fill_avx2_impl(dst, byte) }
}

#[target_feature(enable = "avx2")]
unsafe fn fill_avx2_impl(dst: &mut [u8], byte: u8) {
    unsafe {
        let pattern = _mm256_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 32 <= dst.len() {
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, pattern);
            i += 32;
        }
        swar::fill(&mut dst[i..], byte);
    }
}

fn write_folded_run_avx2(dst: &mut [u8]) {
    // SAFETY: this table is only installed after the AVX2 CPUID probe.
    unsafe { write_folded_run_avx2_impl(dst) }
}

// One annotated frame for the whole decomposition: the per-run fills inline
// into it, instead of paying an AVX/SSE transition per run.
#[target_feature(enable = "avx2")]
unsafe fn write_folded_run_avx2_impl(dst: &mut [u8]) {
    folded_runs(dst.len() as u64, |lo, hi, code| {
        let run = &mut dst[lo as usize..hi as usize];
        if run.len() >= FILL_MEMSET_CUTOVER {
            swar::fill(run, code);
        } else {
            // SAFETY: in the enclosing AVX2 target-feature context.
            unsafe { fill_avx2_impl(run, code) }
        }
    });
}

// ---------------------------------------------------------------- SSE2 ----

fn first_ne_sse2(s: &[u8], byte: u8) -> Option<usize> {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { first_ne_sse2_impl(s, byte) }
}

#[target_feature(enable = "sse2")]
unsafe fn first_ne_sse2_impl(s: &[u8], byte: u8) -> Option<usize> {
    unsafe {
        let pattern = _mm_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 16 <= s.len() {
            let v = _mm_loadu_si128(s.as_ptr().add(i) as *const __m128i);
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, pattern)) as u32;
            if mask != 0xffff {
                return Some(i + (!mask & 0xffff).trailing_zeros() as usize);
            }
            i += 16;
        }
        swar::first_ne(&s[i..], byte).map(|j| i + j)
    }
}

fn first_ge_sse2(s: &[u8], threshold: u8) -> Option<usize> {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { first_ge_sse2_impl(s, threshold) }
}

#[target_feature(enable = "sse2")]
unsafe fn first_ge_sse2_impl(s: &[u8], threshold: u8) -> Option<usize> {
    unsafe {
        let t = _mm_set1_epi8(threshold as i8);
        let mut i = 0usize;
        while i + 16 <= s.len() {
            let v = _mm_loadu_si128(s.as_ptr().add(i) as *const __m128i);
            let ge = _mm_cmpeq_epi8(_mm_max_epu8(v, t), v);
            let mask = _mm_movemask_epi8(ge) as u32;
            if mask != 0 {
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += 16;
        }
        swar::first_ge(&s[i..], threshold).map(|j| i + j)
    }
}

fn all_eq_sse2(s: &[u8], byte: u8) -> bool {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { all_eq_sse2_impl(s, byte) }
}

#[target_feature(enable = "sse2")]
unsafe fn all_eq_sse2_impl(s: &[u8], byte: u8) -> bool {
    unsafe {
        let pattern = _mm_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 16 <= s.len() {
            let v = _mm_loadu_si128(s.as_ptr().add(i) as *const __m128i);
            if _mm_movemask_epi8(_mm_cmpeq_epi8(v, pattern)) as u32 != 0xffff {
                return false;
            }
            i += 16;
        }
        swar::all_eq(&s[i..], byte)
    }
}

fn fill_sse2(dst: &mut [u8], byte: u8) {
    if dst.len() >= FILL_MEMSET_CUTOVER {
        return swar::fill(dst, byte);
    }
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { fill_sse2_impl(dst, byte) }
}

#[target_feature(enable = "sse2")]
unsafe fn fill_sse2_impl(dst: &mut [u8], byte: u8) {
    unsafe {
        let pattern = _mm_set1_epi8(byte as i8);
        let mut i = 0usize;
        while i + 16 <= dst.len() {
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, pattern);
            i += 16;
        }
        swar::fill(&mut dst[i..], byte);
    }
}

fn write_folded_run_sse2(dst: &mut [u8]) {
    folded_runs(dst.len() as u64, |lo, hi, code| {
        fill_sse2(&mut dst[lo as usize..hi as usize], code);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises both width-specific tables directly (not just whichever one
    /// the probe picked), guarded per table by the feature check.
    #[test]
    fn both_widths_agree_with_swar_on_mask_edges() {
        let mut tables: Vec<&Kernels> = vec![&SSE2];
        if std::arch::is_x86_feature_detected!("avx2") {
            tables.push(&AVX2);
        }
        for k in tables {
            for len in [15usize, 16, 17, 31, 32, 33, 47, 48, 64, 96] {
                for hit in [0, 1, len / 2, len - 1] {
                    let mut v = vec![0x40u8; len];
                    v[hit] = 0x90; // sign bit set: exercises unsigned compare
                    assert_eq!(k.first_ne(&v, 0x40), Some(hit), "{} len={len}", k.name());
                    assert_eq!(
                        k.first_ge(&v, 0x90),
                        Some(hit),
                        "{} len={len} threshold above 128",
                        k.name()
                    );
                    assert_eq!(k.first_ge(&v, 0x91), None, "{} len={len}", k.name());
                    assert!(!k.all_eq(&v, 0x40), "{} len={len}", k.name());
                    let mut filled = v.clone();
                    k.fill(&mut filled, 0x4e);
                    assert!(filled.iter().all(|&b| b == 0x4e), "{} len={len}", k.name());
                }
            }
        }
    }
}
