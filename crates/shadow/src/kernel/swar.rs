//! The `swar` backend: SIMD-within-a-register, eight bytes per `u64` step.
//!
//! This is PR 1's scan discipline (the same as production ASan's
//! `mem_is_zero` word loop), now one backend among three. The word loops use
//! exact SWAR predicates from the classic bit-twiddling repertoire: each
//! predicate is a word-level boolean ("does this word contain a hit?"), and
//! the hit word is then re-scanned by byte to extract the exact index. That
//! split keeps the fast path branch-light without giving up byte-precise
//! answers, and sidesteps the borrow-propagation subtleties of per-byte SWAR
//! masks.
//!
//! Endianness: words are loaded with `from_le_bytes`, so `trailing_zeros`
//! maps to the lowest-indexed byte on any host.

use super::folded_runs;

/// `0x0101…01`: a 1 in every byte lane.
const LSB: u64 = u64::from_le_bytes([1; 8]);
/// `0x8080…80`: the sign bit of every byte lane.
const MSB: u64 = u64::from_le_bytes([0x80; 8]);

/// Loads a `u64` from an 8-byte chunk (little-endian lane order).
#[inline]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8) yields 8 bytes"))
}

/// Splats `byte` across all eight lanes.
#[inline]
fn splat(byte: u8) -> u64 {
    LSB * byte as u64
}

/// Exact word-level boolean: does `x` contain a byte strictly greater than
/// `n`?
///
/// The SWAR `hasmore` identity requires `n <= 127`; larger `n` routes to a
/// byte loop, so the predicate is exact for *every* `n` — release builds
/// included. (Earlier revisions only `debug_assert!`ed the precondition,
/// leaving release builds one unguarded call away from false negatives.)
#[inline]
pub fn has_byte_gt(x: u64, n: u8) -> bool {
    if n >= 128 {
        // wrapping_add(splat(127 - n)) underflows its precondition; fall
        // back to the exact byte comparison.
        return x.to_le_bytes().into_iter().any(|b| b > n);
    }
    (x.wrapping_add(splat(127 - n)) | x) & MSB != 0
}

pub(super) fn first_ne(s: &[u8], byte: u8) -> Option<usize> {
    let pattern = splat(byte);
    let mut chunks = s.chunks_exact(8);
    for (w, chunk) in chunks.by_ref().enumerate() {
        let x = word(chunk) ^ pattern;
        if x != 0 {
            return Some(w * 8 + x.trailing_zeros() as usize / 8);
        }
    }
    let base = s.len() & !7;
    chunks
        .remainder()
        .iter()
        .position(|&b| b != byte)
        .map(|i| base + i)
}

pub(super) fn all_eq(s: &[u8], byte: u8) -> bool {
    // A dedicated loop (rather than `first_ne(..).is_none()`) lets the
    // compiler drop the index bookkeeping entirely.
    let pattern = splat(byte);
    let mut chunks = s.chunks_exact(8);
    for chunk in chunks.by_ref() {
        if word(chunk) != pattern {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == byte)
}

pub(super) fn first_ge(s: &[u8], threshold: u8) -> Option<usize> {
    if threshold == 0 {
        // Every byte qualifies.
        return if s.is_empty() { None } else { Some(0) };
    }
    let mut chunks = s.chunks_exact(8);
    for (w, chunk) in chunks.by_ref().enumerate() {
        let x = word(chunk);
        // Word-level test, exact and false-negative-free in both arms:
        // * threshold <= 128: `b >= t` ⇔ `b > t-1`, and `has_byte_gt` is
        //   exact for n = t-1 <= 127;
        // * threshold > 128: only bytes with the sign bit set can qualify,
        //   so `x & MSB != 0` over-approximates and the byte re-scan settles
        //   it (false positives cost one 8-byte loop, never correctness).
        let hit = if threshold <= 128 {
            has_byte_gt(x, threshold - 1)
        } else {
            x & MSB != 0
        };
        if hit {
            if let Some(i) = chunk.iter().position(|&b| b >= threshold) {
                return Some(w * 8 + i);
            }
        }
    }
    let base = s.len() & !7;
    chunks
        .remainder()
        .iter()
        .position(|&b| b >= threshold)
        .map(|i| base + i)
}

pub(super) fn fill(dst: &mut [u8], byte: u8) {
    // `slice::fill` on `u8` lowers to `memset`, which is already word-wide
    // (or better); that IS the swar-tier bulk write.
    dst.fill(byte);
}

pub(super) fn write_folded_run(dst: &mut [u8]) {
    folded_runs(dst.len() as u64, |lo, hi, code| {
        dst[lo as usize..hi as usize].fill(code);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_byte_gt_is_exact_for_every_n() {
        // The regression the promoted guard pins: n >= 128 used to be a
        // debug_assert, so release builds silently computed garbage.
        let samples = [
            0u64,
            u64::MAX,
            word(&[0, 10, 127, 128, 200, 250, 255, 3]),
            word(&[128; 8]),
            word(&[127; 8]),
            word(&[0, 0, 0, 0, 0, 0, 0, 255]),
            word(&[129, 0, 0, 0, 0, 0, 0, 0]),
            0x8000_0000_0000_0000,
            0x0101_0101_0101_0101,
        ];
        for x in samples {
            for n in 0..=u8::MAX {
                let expect = x.to_le_bytes().into_iter().any(|b| b > n);
                assert_eq!(has_byte_gt(x, n), expect, "x={x:#018x} n={n}");
            }
        }
    }

    #[test]
    fn has_byte_gt_255_is_never_true() {
        assert!(!has_byte_gt(u64::MAX, 255));
        assert!(!has_byte_gt(0, 255));
    }
}
