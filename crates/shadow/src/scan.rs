//! Shadow scanning entry points, dispatching to the active [`crate::kernel`]
//! backend.
//!
//! Region checks, blame scans, and shadow validation all reduce to three
//! questions over a segment range: *is every shadow byte equal to X*, *where
//! is the first byte different from X*, and *where is the first byte ≥ X*.
//! Answering them through [`ShadowMemory::get`] costs a bounds check, an
//! `Option`, and a fill-byte fallback per segment. This module answers them
//! over borrowed slices — at whatever step width the resolved kernel backend
//! provides (1, 8, 16, or 32 bytes) — while preserving the fill-byte
//! semantics for ranges that run past the mapped shadow.
//!
//! The loops themselves live in [`crate::kernel`]; this module contributes
//! the [`SegmentView`] split of a requested range into mapped bytes plus a
//! virtual fill-valued tail, and the free-function wrappers the rest of the
//! workspace scans through.

use crate::kernel;
use crate::shadow::{SegmentIndex, ShadowMemory};

/// Index of the first byte of `s` not equal to `byte`, scanning at the
/// active kernel backend's step width.
#[inline]
pub fn slice_first_ne(s: &[u8], byte: u8) -> Option<usize> {
    kernel::active().first_ne(s, byte)
}

/// Whether every byte of `s` equals `byte` (true for the empty slice).
#[inline]
pub fn slice_all_eq(s: &[u8], byte: u8) -> bool {
    kernel::active().all_eq(s, byte)
}

/// Index of the first byte of `s` that is `>= threshold` (unsigned),
/// scanning at the active kernel backend's step width. Exact for every
/// threshold, including `>= 128`.
#[inline]
pub fn slice_first_ge(s: &[u8], threshold: u8) -> Option<usize> {
    kernel::active().first_ge(s, threshold)
}

/// A borrowed view of the segment range `[lo, hi)` of a [`ShadowMemory`],
/// with the part beyond the mapped shadow (if any) reading as the fill byte.
///
/// The view splits the requested range once, up front, into a borrowed slice
/// of mapped shadow bytes plus a virtual fill-valued tail — after that, the
/// scanners below touch no `Option` and no bounds check per segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// First requested segment index (shadow-relative).
    start: SegmentIndex,
    /// Mapped part of the range.
    mapped: &'a [u8],
    /// Number of requested segments past the mapped shadow.
    tail: u64,
    /// Value that the `tail` segments read as.
    fill: u8,
}

impl<'a> SegmentView<'a> {
    /// Number of segments in the view (mapped + virtual tail).
    pub fn len(&self) -> u64 {
        self.mapped.len() as u64 + self.tail
    }

    /// Whether the view covers no segments.
    pub fn is_empty(&self) -> bool {
        self.mapped.is_empty() && self.tail == 0
    }

    /// The mapped portion of the view as a raw slice.
    pub fn mapped(&self) -> &'a [u8] {
        self.mapped
    }

    /// Whether every segment in the view reads as `byte`.
    #[inline]
    pub fn all_eq(&self, byte: u8) -> bool {
        slice_all_eq(self.mapped, byte) && (self.tail == 0 || self.fill == byte)
    }

    /// Segment index (shadow-relative) of the first segment not reading as
    /// `byte`.
    #[inline]
    pub fn first_ne(&self, byte: u8) -> Option<SegmentIndex> {
        if let Some(i) = slice_first_ne(self.mapped, byte) {
            return Some(self.start + i as u64);
        }
        (self.tail > 0 && self.fill != byte).then(|| self.start + self.mapped.len() as u64)
    }

    /// Segment index (shadow-relative) of the first segment reading as a
    /// value `>= threshold` (unsigned byte order).
    #[inline]
    pub fn first_ge(&self, threshold: u8) -> Option<SegmentIndex> {
        if let Some(i) = slice_first_ge(self.mapped, threshold) {
            return Some(self.start + i as u64);
        }
        (self.tail > 0 && self.fill >= threshold).then(|| self.start + self.mapped.len() as u64)
    }
}

impl ShadowMemory {
    /// Borrows the segment range `[lo, hi)` as a [`SegmentView`].
    ///
    /// Unlike [`ShadowMemory::slice`] this never panics: segments past the
    /// mapped shadow are represented as a fill-valued tail, matching the
    /// fill semantics of [`ShadowMemory::get`] — so checkers can scan ranges
    /// derived from wild pointers. A reversed range yields an empty view.
    pub fn view(&self, lo: SegmentIndex, hi: SegmentIndex) -> SegmentView<'_> {
        let hi = hi.max(lo);
        let mapped_lo = lo.min(self.len());
        let mapped_hi = hi.min(self.len());
        SegmentView {
            start: lo,
            mapped: self.slice(mapped_lo, mapped_hi),
            tail: hi - mapped_hi.max(lo),
            fill: self.fill_byte(),
        }
    }

    /// Whether every segment in `[lo, hi)` reads as `byte` (fill semantics
    /// past the mapped shadow; true for an empty range).
    #[inline]
    pub fn all_eq(&self, lo: SegmentIndex, hi: SegmentIndex, byte: u8) -> bool {
        self.view(lo, hi).all_eq(byte)
    }

    /// First segment in `[lo, hi)` not reading as `byte`.
    #[inline]
    pub fn first_ne(&self, lo: SegmentIndex, hi: SegmentIndex, byte: u8) -> Option<SegmentIndex> {
        self.view(lo, hi).first_ne(byte)
    }

    /// First segment in `[lo, hi)` reading as a value `>= threshold`.
    #[inline]
    pub fn first_ge(
        &self,
        lo: SegmentIndex,
        hi: SegmentIndex,
        threshold: u8,
    ) -> Option<SegmentIndex> {
        self.view(lo, hi).first_ge(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressSpace;

    /// Byte-wise references the word-wide scanners must agree with.
    fn ref_first_ne(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> Option<u64> {
        (lo..hi.max(lo)).find(|&i| s.get(i) != byte)
    }

    fn ref_first_ge(s: &ShadowMemory, lo: u64, hi: u64, t: u8) -> Option<u64> {
        (lo..hi.max(lo)).find(|&i| s.get(i) >= t)
    }

    fn ref_all_eq(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> bool {
        (lo..hi.max(lo)).all(|i| s.get(i) == byte)
    }

    fn shadow_with(fill: u8, bytes: &[u8]) -> ShadowMemory {
        let space = AddressSpace::new(0x1_0000, 1 << 10); // 128 segments
        let mut s = ShadowMemory::new(&space, fill);
        for (i, &b) in bytes.iter().enumerate() {
            s.set(i as u64, b);
        }
        s
    }

    #[test]
    fn slice_scanners_match_naive_on_patterns() {
        // Mismatches planted at every offset relative to the 8-byte word
        // boundary, including head/tail remainders.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64] {
            for hit in 0..len {
                let mut v = vec![0x40u8; len];
                v[hit] = 0x4e;
                assert_eq!(slice_first_ne(&v, 0x40), Some(hit), "len={len} hit={hit}");
                assert_eq!(slice_first_ge(&v, 0x4e), Some(hit));
                assert!(!slice_all_eq(&v, 0x40));
            }
            let v = vec![0x40u8; len];
            assert_eq!(slice_first_ne(&v, 0x40), None);
            assert_eq!(slice_first_ge(&v, 0x41), None);
            assert!(slice_all_eq(&v, 0x40));
        }
    }

    #[test]
    fn first_ge_handles_thresholds_above_128() {
        let v = [0u8, 10, 127, 128, 200, 250, 255, 3];
        assert_eq!(slice_first_ge(&v, 0), Some(0));
        assert_eq!(slice_first_ge(&v, 1), Some(1));
        assert_eq!(slice_first_ge(&v, 128), Some(3));
        assert_eq!(slice_first_ge(&v, 129), Some(4));
        assert_eq!(slice_first_ge(&v, 201), Some(5));
        assert_eq!(slice_first_ge(&v, 251), Some(6));
        assert_eq!(slice_first_ge(&v, 255), Some(6));
        assert_eq!(slice_first_ge(&[1u8; 16], 2), None);
    }

    #[test]
    fn view_splits_mapped_and_tail() {
        let s = shadow_with(0xff, &[1, 2, 3]);
        let n = s.len();
        let v = s.view(n - 2, n + 3);
        assert_eq!(v.len(), 5);
        assert_eq!(v.mapped().len(), 2);
        // Entirely past the end: all tail.
        let v = s.view(n + 10, n + 14);
        assert_eq!(v.len(), 4);
        assert_eq!(v.mapped().len(), 0);
        assert!(v.all_eq(0xff));
        assert_eq!(v.first_ne(0xff), None);
        assert_eq!(v.first_ne(0), Some(n + 10));
        // Reversed ranges are empty, matching an empty loop over lo..hi.
        assert!(s.view(5, 2).is_empty());
        assert_eq!(s.first_ne(5, 2, 0), None);
    }

    #[test]
    fn fill_tail_obeys_get_semantics() {
        let s = shadow_with(0x4e, &[0x40; 8]);
        let n = s.len();
        // Uniform fill across the mapped/tail boundary: no mismatch.
        assert_eq!(s.first_ne(n - 4, n + 4, 0x4e), None);
        assert_eq!(s.first_ne(4, n + 4, 0x4e), Some(4), "mapped hit wins");
        assert_eq!(s.first_ne(n - 4, n + 4, 0x40), Some(n - 4));
        assert_eq!(s.first_ge(n - 4, n + 4, 0x4f), None);
        assert_eq!(s.first_ge(n - 4, n + 4, 0x4e), Some(n - 4));
        assert!(s.all_eq(n, n + 100, 0x4e));
        assert!(!s.all_eq(n, n + 100, 0x40));
    }

    #[test]
    fn scanners_agree_with_reference_on_dense_cases() {
        // Dense sweep of a small shadow: every (lo, hi) pair over a mix of
        // values, crossing the mapped end by up to 16 segments.
        let mut bytes = Vec::new();
        for i in 0..40u64 {
            bytes.push(match i % 5 {
                0 => 0x40,
                1 => 0x39,
                2 => 0x49,
                3 => 0x4e,
                _ => 0x00,
            });
        }
        let s = shadow_with(0x4e, &bytes);
        let n = s.len();
        for lo in (0..48).chain(n - 4..n + 8) {
            for hi in (lo..48).chain(n - 4..n + 16).filter(|&h| h >= lo) {
                for probe in [0x00u8, 0x39, 0x40, 0x49, 0x4e, 0x80, 0xff] {
                    assert_eq!(
                        s.first_ne(lo, hi, probe),
                        ref_first_ne(&s, lo, hi, probe),
                        "first_ne lo={lo} hi={hi} probe={probe:#x}"
                    );
                    assert_eq!(
                        s.first_ge(lo, hi, probe),
                        ref_first_ge(&s, lo, hi, probe),
                        "first_ge lo={lo} hi={hi} probe={probe:#x}"
                    );
                    assert_eq!(
                        s.all_eq(lo, hi, probe),
                        ref_all_eq(&s, lo, hi, probe),
                        "all_eq lo={lo} hi={hi} probe={probe:#x}"
                    );
                }
            }
        }
    }
}
