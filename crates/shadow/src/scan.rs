//! Word-wide shadow scanning primitives.
//!
//! Region checks, blame scans, and shadow validation all reduce to three
//! questions over a segment range: *is every shadow byte equal to X*, *where
//! is the first byte different from X*, and *where is the first byte ≥ X*.
//! Answering them through [`ShadowMemory::get`] costs a bounds check, an
//! `Option`, and a fill-byte fallback per segment. This module answers them
//! over borrowed slices, eight segments per `u64` step — the same discipline
//! as production ASan's `mem_is_zero` word loop — while preserving the
//! fill-byte semantics for ranges that run past the mapped shadow.
//!
//! The word loops use SWAR (SIMD-within-a-register) predicates from the
//! classic bit-twiddling repertoire. Each predicate is an *exact* word-level
//! boolean ("does this word contain a hit?"); the hit word is then re-scanned
//! by byte to extract the exact index. That split keeps the fast path
//! branch-light without giving up byte-precise answers, and sidesteps the
//! borrow-propagation subtleties of per-byte SWAR masks.
//!
//! Endianness: words are loaded with `from_le_bytes`, so `trailing_zeros`
//! maps to the lowest-indexed byte on any host.

use crate::shadow::{SegmentIndex, ShadowMemory};

/// `0x0101…01`: a 1 in every byte lane.
const LSB: u64 = u64::from_le_bytes([1; 8]);
/// `0x8080…80`: the sign bit of every byte lane.
const MSB: u64 = u64::from_le_bytes([0x80; 8]);

/// Loads a `u64` from an 8-byte chunk (little-endian lane order).
#[inline]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8) yields 8 bytes"))
}

/// Splats `byte` across all eight lanes.
#[inline]
fn splat(byte: u8) -> u64 {
    LSB * byte as u64
}

/// Exact word-level boolean: does `x` contain a byte strictly greater than
/// `n`? Requires `n <= 127` (bit-twiddling `hasmore` precondition).
#[inline]
fn has_byte_gt(x: u64, n: u8) -> bool {
    debug_assert!(n <= 127);
    (x.wrapping_add(splat(127 - n)) | x) & MSB != 0
}

/// Index of the first byte of `s` not equal to `byte`, scanning eight bytes
/// per step.
#[inline]
pub fn slice_first_ne(s: &[u8], byte: u8) -> Option<usize> {
    let pattern = splat(byte);
    let mut chunks = s.chunks_exact(8);
    for (w, chunk) in chunks.by_ref().enumerate() {
        let x = word(chunk) ^ pattern;
        if x != 0 {
            return Some(w * 8 + x.trailing_zeros() as usize / 8);
        }
    }
    let base = s.len() & !7;
    chunks
        .remainder()
        .iter()
        .position(|&b| b != byte)
        .map(|i| base + i)
}

/// Whether every byte of `s` equals `byte` (true for the empty slice).
#[inline]
pub fn slice_all_eq(s: &[u8], byte: u8) -> bool {
    // A dedicated loop (rather than `slice_first_ne(..).is_none()`) lets the
    // compiler drop the index bookkeeping entirely.
    let pattern = splat(byte);
    let mut chunks = s.chunks_exact(8);
    for chunk in chunks.by_ref() {
        if word(chunk) != pattern {
            return false;
        }
    }
    chunks.remainder().iter().all(|&b| b == byte)
}

/// Index of the first byte of `s` that is `>= threshold` (unsigned), scanning
/// eight bytes per step.
#[inline]
pub fn slice_first_ge(s: &[u8], threshold: u8) -> Option<usize> {
    if threshold == 0 {
        // Every byte qualifies.
        return if s.is_empty() { None } else { Some(0) };
    }
    let mut chunks = s.chunks_exact(8);
    for (w, chunk) in chunks.by_ref().enumerate() {
        let x = word(chunk);
        // Word-level test, exact and false-negative-free in both arms:
        // * threshold <= 128: `b >= t` ⇔ `b > t-1`, and `has_byte_gt` is
        //   exact for n = t-1 <= 127;
        // * threshold > 128: only bytes with the sign bit set can qualify,
        //   so `x & MSB != 0` over-approximates and the byte re-scan settles
        //   it (false positives cost one 8-byte loop, never correctness).
        let hit = if threshold <= 128 {
            has_byte_gt(x, threshold - 1)
        } else {
            x & MSB != 0
        };
        if hit {
            if let Some(i) = chunk.iter().position(|&b| b >= threshold) {
                return Some(w * 8 + i);
            }
        }
    }
    let base = s.len() & !7;
    chunks
        .remainder()
        .iter()
        .position(|&b| b >= threshold)
        .map(|i| base + i)
}

/// A borrowed view of the segment range `[lo, hi)` of a [`ShadowMemory`],
/// with the part beyond the mapped shadow (if any) reading as the fill byte.
///
/// The view splits the requested range once, up front, into a borrowed slice
/// of mapped shadow bytes plus a virtual fill-valued tail — after that, the
/// scanners below touch no `Option` and no bounds check per segment.
#[derive(Debug, Clone, Copy)]
pub struct SegmentView<'a> {
    /// First requested segment index (shadow-relative).
    start: SegmentIndex,
    /// Mapped part of the range.
    mapped: &'a [u8],
    /// Number of requested segments past the mapped shadow.
    tail: u64,
    /// Value that the `tail` segments read as.
    fill: u8,
}

impl<'a> SegmentView<'a> {
    /// Number of segments in the view (mapped + virtual tail).
    pub fn len(&self) -> u64 {
        self.mapped.len() as u64 + self.tail
    }

    /// Whether the view covers no segments.
    pub fn is_empty(&self) -> bool {
        self.mapped.is_empty() && self.tail == 0
    }

    /// The mapped portion of the view as a raw slice.
    pub fn mapped(&self) -> &'a [u8] {
        self.mapped
    }

    /// Whether every segment in the view reads as `byte`.
    #[inline]
    pub fn all_eq(&self, byte: u8) -> bool {
        slice_all_eq(self.mapped, byte) && (self.tail == 0 || self.fill == byte)
    }

    /// Segment index (shadow-relative) of the first segment not reading as
    /// `byte`.
    #[inline]
    pub fn first_ne(&self, byte: u8) -> Option<SegmentIndex> {
        if let Some(i) = slice_first_ne(self.mapped, byte) {
            return Some(self.start + i as u64);
        }
        (self.tail > 0 && self.fill != byte).then(|| self.start + self.mapped.len() as u64)
    }

    /// Segment index (shadow-relative) of the first segment reading as a
    /// value `>= threshold` (unsigned byte order).
    #[inline]
    pub fn first_ge(&self, threshold: u8) -> Option<SegmentIndex> {
        if let Some(i) = slice_first_ge(self.mapped, threshold) {
            return Some(self.start + i as u64);
        }
        (self.tail > 0 && self.fill >= threshold).then(|| self.start + self.mapped.len() as u64)
    }
}

impl ShadowMemory {
    /// Borrows the segment range `[lo, hi)` as a [`SegmentView`].
    ///
    /// Unlike [`ShadowMemory::slice`] this never panics: segments past the
    /// mapped shadow are represented as a fill-valued tail, matching the
    /// fill semantics of [`ShadowMemory::get`] — so checkers can scan ranges
    /// derived from wild pointers. A reversed range yields an empty view.
    pub fn view(&self, lo: SegmentIndex, hi: SegmentIndex) -> SegmentView<'_> {
        let hi = hi.max(lo);
        let mapped_lo = lo.min(self.len());
        let mapped_hi = hi.min(self.len());
        SegmentView {
            start: lo,
            mapped: self.slice(mapped_lo, mapped_hi),
            tail: hi - mapped_hi.max(lo),
            fill: self.fill_byte(),
        }
    }

    /// Whether every segment in `[lo, hi)` reads as `byte` (fill semantics
    /// past the mapped shadow; true for an empty range).
    #[inline]
    pub fn all_eq(&self, lo: SegmentIndex, hi: SegmentIndex, byte: u8) -> bool {
        self.view(lo, hi).all_eq(byte)
    }

    /// First segment in `[lo, hi)` not reading as `byte`.
    #[inline]
    pub fn first_ne(&self, lo: SegmentIndex, hi: SegmentIndex, byte: u8) -> Option<SegmentIndex> {
        self.view(lo, hi).first_ne(byte)
    }

    /// First segment in `[lo, hi)` reading as a value `>= threshold`.
    #[inline]
    pub fn first_ge(
        &self,
        lo: SegmentIndex,
        hi: SegmentIndex,
        threshold: u8,
    ) -> Option<SegmentIndex> {
        self.view(lo, hi).first_ge(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddressSpace;

    /// Byte-wise references the word-wide scanners must agree with.
    fn ref_first_ne(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> Option<u64> {
        (lo..hi.max(lo)).find(|&i| s.get(i) != byte)
    }

    fn ref_first_ge(s: &ShadowMemory, lo: u64, hi: u64, t: u8) -> Option<u64> {
        (lo..hi.max(lo)).find(|&i| s.get(i) >= t)
    }

    fn ref_all_eq(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> bool {
        (lo..hi.max(lo)).all(|i| s.get(i) == byte)
    }

    fn shadow_with(fill: u8, bytes: &[u8]) -> ShadowMemory {
        let space = AddressSpace::new(0x1_0000, 1 << 10); // 128 segments
        let mut s = ShadowMemory::new(&space, fill);
        for (i, &b) in bytes.iter().enumerate() {
            s.set(i as u64, b);
        }
        s
    }

    #[test]
    fn slice_scanners_match_naive_on_patterns() {
        // Mismatches planted at every offset relative to the 8-byte word
        // boundary, including head/tail remainders.
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64] {
            for hit in 0..len {
                let mut v = vec![0x40u8; len];
                v[hit] = 0x4e;
                assert_eq!(slice_first_ne(&v, 0x40), Some(hit), "len={len} hit={hit}");
                assert_eq!(slice_first_ge(&v, 0x4e), Some(hit));
                assert!(!slice_all_eq(&v, 0x40));
            }
            let v = vec![0x40u8; len];
            assert_eq!(slice_first_ne(&v, 0x40), None);
            assert_eq!(slice_first_ge(&v, 0x41), None);
            assert!(slice_all_eq(&v, 0x40));
        }
    }

    #[test]
    fn first_ge_handles_thresholds_above_128() {
        let v = [0u8, 10, 127, 128, 200, 250, 255, 3];
        assert_eq!(slice_first_ge(&v, 0), Some(0));
        assert_eq!(slice_first_ge(&v, 1), Some(1));
        assert_eq!(slice_first_ge(&v, 128), Some(3));
        assert_eq!(slice_first_ge(&v, 129), Some(4));
        assert_eq!(slice_first_ge(&v, 201), Some(5));
        assert_eq!(slice_first_ge(&v, 251), Some(6));
        assert_eq!(slice_first_ge(&v, 255), Some(6));
        assert_eq!(slice_first_ge(&[1u8; 16], 2), None);
    }

    #[test]
    fn view_splits_mapped_and_tail() {
        let s = shadow_with(0xff, &[1, 2, 3]);
        let n = s.len();
        let v = s.view(n - 2, n + 3);
        assert_eq!(v.len(), 5);
        assert_eq!(v.mapped().len(), 2);
        // Entirely past the end: all tail.
        let v = s.view(n + 10, n + 14);
        assert_eq!(v.len(), 4);
        assert_eq!(v.mapped().len(), 0);
        assert!(v.all_eq(0xff));
        assert_eq!(v.first_ne(0xff), None);
        assert_eq!(v.first_ne(0), Some(n + 10));
        // Reversed ranges are empty, matching an empty loop over lo..hi.
        assert!(s.view(5, 2).is_empty());
        assert_eq!(s.first_ne(5, 2, 0), None);
    }

    #[test]
    fn fill_tail_obeys_get_semantics() {
        let s = shadow_with(0x4e, &[0x40; 8]);
        let n = s.len();
        // Uniform fill across the mapped/tail boundary: no mismatch.
        assert_eq!(s.first_ne(n - 4, n + 4, 0x4e), None);
        assert_eq!(s.first_ne(4, n + 4, 0x4e), Some(4), "mapped hit wins");
        assert_eq!(s.first_ne(n - 4, n + 4, 0x40), Some(n - 4));
        assert_eq!(s.first_ge(n - 4, n + 4, 0x4f), None);
        assert_eq!(s.first_ge(n - 4, n + 4, 0x4e), Some(n - 4));
        assert!(s.all_eq(n, n + 100, 0x4e));
        assert!(!s.all_eq(n, n + 100, 0x40));
    }

    #[test]
    fn scanners_agree_with_reference_on_dense_cases() {
        // Dense sweep of a small shadow: every (lo, hi) pair over a mix of
        // values, crossing the mapped end by up to 16 segments.
        let mut bytes = Vec::new();
        for i in 0..40u64 {
            bytes.push(match i % 5 {
                0 => 0x40,
                1 => 0x39,
                2 => 0x49,
                3 => 0x4e,
                _ => 0x00,
            });
        }
        let s = shadow_with(0x4e, &bytes);
        let n = s.len();
        for lo in (0..48).chain(n - 4..n + 8) {
            for hi in (lo..48).chain(n - 4..n + 16).filter(|&h| h >= lo) {
                for probe in [0x00u8, 0x39, 0x40, 0x49, 0x4e, 0x80, 0xff] {
                    assert_eq!(
                        s.first_ne(lo, hi, probe),
                        ref_first_ne(&s, lo, hi, probe),
                        "first_ne lo={lo} hi={hi} probe={probe:#x}"
                    );
                    assert_eq!(
                        s.first_ge(lo, hi, probe),
                        ref_first_ge(&s, lo, hi, probe),
                        "first_ge lo={lo} hi={hi} probe={probe:#x}"
                    );
                    assert_eq!(
                        s.all_eq(lo, hi, probe),
                        ref_all_eq(&s, lo, hi, probe),
                        "all_eq lo={lo} hi={hi} probe={probe:#x}"
                    );
                }
            }
        }
    }
}
