//! The folded-code algebra (paper §4.1 Definition 1, §4.2): encode, decode,
//! and the single-comparison prefix test, in one place.
//!
//! One 8-bit unsigned code per 8-byte segment:
//!
//! | code     | meaning                                                            |
//! |----------|--------------------------------------------------------------------|
//! | `64 − i` | *(i)-folded* segment: the next `2^i` segments are all addressable  |
//! | `72 − k` | *k-partial* segment: only its first `k` bytes (1 ≤ k ≤ 7) are addressable |
//! | `> 72`   | error codes (redzones, freed, unallocated — named by the codec)    |
//!
//! The encoding is *monotone*: a smaller code means more consecutive
//! addressable bytes follow, so "does this segment expose at least `n` bytes?"
//! is the single comparison `m[p] ≤ 72 − n`, and "is it at least
//! (x)-folded?" is `m[p] ≤ 64 − x`.
//!
//! These helpers are the one shared implementation of the fast-check decode
//! `u = (v ≤ 64) << (67 − v)` and its relatives: the O(1) region checker and
//! the word-wide blame scan in `giantsan-core` both call through here instead
//! of re-deriving the bit trick (the `giantsan-core::encoding` module
//! re-exports everything and adds the error-code *policy* — which code means
//! redzone, freed, and so on).

/// Code of a plain "good" segment — a (0)-folded segment summarising itself.
pub const GOOD: u8 = 64;

/// Largest folding degree the codec will emit.
///
/// The paper bounds the degree by 64 (object sizes < 2^64); we cap at 60 so
/// that the decode shift `67 − code` stays below 64 and the decoded byte
/// count fits in a `u64` without overflow. A degree-60 fold already covers
/// 8 · 2^60 bytes, far beyond any simulated object.
pub const MAX_DEGREE: u32 = 60;

/// Smallest folded code (`64 − MAX_DEGREE`).
pub const MIN_FOLDED: u8 = GOOD - MAX_DEGREE as u8;

/// First partial code (`7`-partial).
pub const PARTIAL_7: u8 = 65;

/// Last partial code (`1`-partial).
pub const PARTIAL_1: u8 = 71;

/// Returns the shadow code of an *(degree)*-folded segment.
///
/// # Panics
///
/// Panics if `degree > MAX_DEGREE`.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::{folded, GOOD};
/// assert_eq!(folded(0), GOOD);
/// assert_eq!(folded(3), 61);
/// ```
pub const fn folded(degree: u32) -> u8 {
    assert!(degree <= MAX_DEGREE, "folding degree out of range");
    GOOD - degree as u8
}

/// Returns the shadow code of a *k*-partial segment.
///
/// # Panics
///
/// Panics if `k` is not in `1..=7`.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::partial;
/// assert_eq!(partial(4), 68);
/// ```
pub const fn partial(k: u32) -> u8 {
    assert!(k >= 1 && k <= 7, "partial byte count out of range");
    72 - k as u8
}

/// Computes the folding degree of segment `j` out of `q` good segments:
/// `⌊log2(q − j)⌋`, capped at [`MAX_DEGREE`] (paper §4.1 Figure 5).
///
/// This is the one shared definition of the canonical poisoning pattern:
/// `giantsan-core::poison` delegates here, and the [`crate::kernel`]
/// backends' `write_folded_run` kernels are all verified against it.
///
/// # Panics
///
/// Panics if `j >= q`.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::degree_at;
/// // Figure 5: an object with 8 full segments.
/// let degrees: Vec<u32> = (0..8).map(|j| degree_at(8, j)).collect();
/// assert_eq!(degrees, [3, 2, 2, 2, 2, 1, 1, 0]);
/// ```
pub const fn degree_at(q: u64, j: u64) -> u32 {
    assert!(j < q, "segment index beyond object");
    let remaining = q - j;
    let degree = 63 - remaining.leading_zeros();
    if degree < MAX_DEGREE {
        degree
    } else {
        MAX_DEGREE
    }
}

/// Extracts the folding degree of a folded code, or `None` otherwise.
pub const fn folding_degree(code: u8) -> Option<u32> {
    if code <= GOOD && code >= MIN_FOLDED {
        Some((GOOD - code) as u32)
    } else {
        None
    }
}

/// Extracts `k` from a *k*-partial code, or `None` otherwise.
pub const fn partial_bytes(code: u8) -> Option<u32> {
    if code >= PARTIAL_7 && code <= PARTIAL_1 {
        Some((72 - code) as u32)
    } else {
        None
    }
}

/// Returns `true` for error codes (`> 72`).
pub const fn is_error(code: u8) -> bool {
    code > 72
}

/// The paper's branch-free decode (§4.2): the number of addressable bytes
/// guaranteed to follow the *segment base* of a segment with this code —
/// `(code ≤ 64) << (67 − code)`, i.e. `8 · 2^degree` for folded segments and
/// `0` for everything else.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::{addressable_bytes, folded, partial};
/// assert_eq!(addressable_bytes(folded(0)), 8);
/// assert_eq!(addressable_bytes(folded(5)), 8 << 5);
/// assert_eq!(addressable_bytes(partial(3)), 0);
/// assert_eq!(addressable_bytes(75), 0);
/// ```
#[inline]
pub const fn addressable_bytes(code: u8) -> u64 {
    if code <= GOOD {
        // Codes below MIN_FOLDED never occur; clamp defensively so the shift
        // cannot exceed 63 even on corrupted shadow.
        let shift = 67 - if code < MIN_FOLDED { MIN_FOLDED } else { code } as u32;
        1u64 << shift
    } else {
        0
    }
}

/// Number of addressable bytes a segment with this code exposes *within
/// itself*: 8 for folded codes, `k` for *k*-partial ones, 0 for errors.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::{exposed_bytes, folded, partial};
/// assert_eq!(exposed_bytes(folded(9)), 8);
/// assert_eq!(exposed_bytes(partial(3)), 3);
/// assert_eq!(exposed_bytes(78), 0);
/// ```
#[inline]
pub const fn exposed_bytes(code: u8) -> u64 {
    if code <= GOOD {
        8
    } else if code <= PARTIAL_1 {
        (72 - code) as u64
    } else {
        0
    }
}

/// Does a segment with this code expose at least `needed` addressable bytes
/// (from its own base)? By monotonicity this is the single comparison
/// `code ≤ 72 − needed`, valid for `1 ≤ needed ≤ 8` — folded segments expose
/// all 8 bytes, *k*-partial ones expose `k`.
///
/// # Example
///
/// ```
/// use giantsan_shadow::codes::{exposes_prefix, folded, partial};
/// assert!(exposes_prefix(folded(0), 8));
/// assert!(exposes_prefix(partial(5), 5));
/// assert!(!exposes_prefix(partial(5), 6));
/// ```
#[inline]
pub const fn exposes_prefix(code: u8, needed: u8) -> bool {
    code <= 72 - needed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposed_prefix_agrees_with_exposed_bytes() {
        for code in 0..=u8::MAX {
            for needed in 1..=8u8 {
                assert_eq!(
                    exposes_prefix(code, needed),
                    exposed_bytes(code) >= needed as u64,
                    "code {code} needed {needed}"
                );
            }
        }
    }

    #[test]
    fn decode_is_the_paper_shift() {
        for degree in 0..=MAX_DEGREE {
            assert_eq!(addressable_bytes(folded(degree)), 8u64 << degree);
        }
    }
}
