//! Property tests: the word-wide scanners agree with a byte-wise reference
//! built on `ShadowMemory::get` — over random shadow contents, random
//! `(lo, hi)` ranges (empty, unaligned, straddling, and fully out of range),
//! and every interesting fill/probe byte class (below 0x80, above 0x80, and
//! the exact threshold).

use proptest::prelude::*;

use giantsan_shadow::{AddressSpace, ShadowMemory};

/// Builds a shadow of `segments` segments with `fill`, then plants `writes`
/// as (index, value) pairs inside the mapped range.
fn shadow_with(segments: u64, fill: u8, writes: &[(u64, u8)]) -> ShadowMemory {
    let space = AddressSpace::new(0x1_0000, segments * 8);
    let mut s = ShadowMemory::new(&space, fill);
    for &(i, v) in writes {
        s.set(i % segments, v);
    }
    s
}

fn ref_first_ne(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> Option<u64> {
    (lo..hi.max(lo)).find(|&i| s.get(i) != byte)
}

fn ref_first_ge(s: &ShadowMemory, lo: u64, hi: u64, t: u8) -> Option<u64> {
    (lo..hi.max(lo)).find(|&i| s.get(i) >= t)
}

fn ref_all_eq(s: &ShadowMemory, lo: u64, hi: u64, byte: u8) -> bool {
    (lo..hi.max(lo)).all(|i| s.get(i) == byte)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `first_ne` / `first_ge` / `all_eq` match the byte-wise reference for
    /// arbitrary contents and ranges, including ranges reaching past the
    /// mapped shadow (where fill semantics must hold).
    #[test]
    fn scanners_match_bytewise_reference(
        segments in 1u64..96,
        fill in prop::sample::select(vec![0u8, 0x40, 0x4e, 0x7f, 0x80, 0xfa, 0xff]),
        writes in prop::collection::vec(0u64..96, 0..24),
        values in prop::collection::vec(0u8..=255, 24),
        lo in 0u64..112,
        len in 0u64..112,
        probe in 0u8..=255,
    ) {
        let planted: Vec<(u64, u8)> = writes
            .iter()
            .zip(values.iter())
            .map(|(&i, &v)| (i, v))
            .collect();
        let s = shadow_with(segments, fill, &planted);
        let hi = lo + len;
        prop_assert_eq!(
            s.first_ne(lo, hi, probe),
            ref_first_ne(&s, lo, hi, probe),
            "first_ne segs={} lo={} hi={} probe={:#x}", segments, lo, hi, probe
        );
        prop_assert_eq!(
            s.first_ge(lo, hi, probe),
            ref_first_ge(&s, lo, hi, probe),
            "first_ge segs={} lo={} hi={} probe={:#x}", segments, lo, hi, probe
        );
        prop_assert_eq!(
            s.all_eq(lo, hi, probe),
            ref_all_eq(&s, lo, hi, probe),
            "all_eq segs={} lo={} hi={} probe={:#x}", segments, lo, hi, probe
        );
    }

    /// The scanners are internally consistent: `all_eq ⇔ first_ne == None`,
    /// and any `first_ge` hit is itself `>= threshold` with everything before
    /// it below the threshold.
    #[test]
    fn scanner_internal_consistency(
        segments in 1u64..64,
        fill in 0u8..=255,
        writes in prop::collection::vec(0u64..64, 0..16),
        values in prop::collection::vec(0u8..=255, 16),
        lo in 0u64..80,
        len in 0u64..80,
        probe in 0u8..=255,
    ) {
        let planted: Vec<(u64, u8)> = writes
            .iter()
            .zip(values.iter())
            .map(|(&i, &v)| (i, v))
            .collect();
        let s = shadow_with(segments, fill, &planted);
        let hi = lo + len;
        prop_assert_eq!(s.all_eq(lo, hi, probe), s.first_ne(lo, hi, probe).is_none());
        if let Some(at) = s.first_ge(lo, hi, probe) {
            prop_assert!((lo..hi).contains(&at));
            prop_assert!(s.get(at) >= probe);
            prop_assert!((lo..at).all(|i| s.get(i) < probe));
        } else {
            prop_assert!((lo..hi).all(|i| s.get(i) < probe));
        }
    }
}
