//! Differential property tests: `simd` vs `swar` vs `scalar` kernel
//! backends on random shadow patterns.
//!
//! The backend contract says the three tables may differ in speed only —
//! for every input they must return byte-identical answers. These tests pit
//! all backends (obtained explicitly via [`kernel::select`], independent of
//! the process-wide dispatch) against each other and against the scalar
//! reference:
//!
//! * raw slices of arbitrary bytes, with lengths straddling every step
//!   width (1/8/16/32) and thresholds on both sides of 128 — the range
//!   where the SWAR `has_byte_gt` identity needs its byte-loop fallback;
//! * [`ShadowMemory`] ranges reaching past the mapped shadow, where the
//!   fill-byte tail semantics must survive whichever backend is active
//!   (mirroring `first_ge_handles_thresholds_above_128` in spirit);
//! * the bulk writers (`fill`, `write_folded_run`), byte-compared across
//!   backends.

use proptest::prelude::*;

use giantsan_shadow::kernel::{self, Backend};
use giantsan_shadow::{AddressSpace, ShadowMemory};

/// Slice lengths straddling every backend's step width (1/8/16/32 bytes).
fn lens() -> Vec<usize> {
    vec![
        0, 1, 2, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 40, 47, 48, 63, 64, 65, 100, 127, 128,
        129, 200,
    ]
}

/// Probe/fill bytes hitting both sides of the 0x80 sign bit and the
/// saturation edges the SWAR identity and `max_epu8` care about.
const EDGE_BYTES: [u8; 12] = [
    0x00, 0x01, 0x40, 0x4e, 0x7f, 0x80, 0x81, 0xc8, 0xc9, 0xfe, 0xff, 0x48,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Scan kernels agree across all three backends on random slices —
    /// including thresholds >= 128, where swar must route around its
    /// `has_byte_gt` precondition and simd's `max_epu8` compare is exact.
    #[test]
    fn scan_kernels_agree_on_random_slices(
        len in prop::sample::select(lens()),
        base in prop::sample::select(EDGE_BYTES.to_vec()),
        write_at in prop::collection::vec(0usize..256, 0..12),
        write_val in prop::collection::vec(0u8..=255, 12),
        probe in 0u8..=255,
    ) {
        let mut s = vec![base; len];
        if len > 0 {
            for (&i, &v) in write_at.iter().zip(write_val.iter()) {
                s[i % len] = v;
            }
        }
        let scalar = kernel::select(Backend::Scalar);
        for backend in [Backend::Swar, Backend::Simd] {
            let k = kernel::select(backend);
            // The random probe plus every edge byte as a threshold: the
            // edge list guarantees the >= 128 territory is hit every case.
            for p in EDGE_BYTES.iter().copied().chain([probe]) {
                prop_assert_eq!(
                    k.first_ne(&s, p),
                    scalar.first_ne(&s, p),
                    "first_ne {} len={} probe={:#x}", k.name(), len, p
                );
                prop_assert_eq!(
                    k.first_ge(&s, p),
                    scalar.first_ge(&s, p),
                    "first_ge {} len={} probe={:#x}", k.name(), len, p
                );
                prop_assert_eq!(
                    k.all_eq(&s, p),
                    scalar.all_eq(&s, p),
                    "all_eq {} len={} probe={:#x}", k.name(), len, p
                );
            }
        }
    }

    /// Write kernels produce byte-identical output across backends for every
    /// length (fill) and run shape (write_folded_run).
    #[test]
    fn write_kernels_agree_on_every_length(
        len in prop::sample::select(lens()),
        value in 0u8..=255,
        garbage in 0u8..=255,
    ) {
        let scalar = kernel::select(Backend::Scalar);
        let mut expect_fill = vec![garbage; len];
        scalar.fill(&mut expect_fill, value);
        let mut expect_run = vec![garbage; len];
        scalar.write_folded_run(&mut expect_run);
        for backend in [Backend::Swar, Backend::Simd] {
            let k = kernel::select(backend);
            let mut out = vec![garbage; len];
            k.fill(&mut out, value);
            prop_assert_eq!(&out, &expect_fill, "fill {} len={}", k.name(), len);
            let mut out = vec![garbage; len];
            k.write_folded_run(&mut out);
            prop_assert_eq!(&out, &expect_run, "folded run {} len={}", k.name(), len);
        }
    }

    /// ShadowMemory-level scans agree across *forced* process-wide backends
    /// on ranges running past the mapped shadow: the fill-byte tail is
    /// stitched on above the kernels, and no backend may disturb it.
    #[test]
    fn fill_tails_survive_every_backend(
        segments in 1u64..64,
        fill in prop::sample::select(EDGE_BYTES.to_vec()),
        write_at in prop::collection::vec(0u64..64, 0..12),
        write_val in prop::collection::vec(0u8..=255, 12),
        lo in 0u64..80,
        len in 0u64..80,
        probe in 0u8..=255,
    ) {
        let space = AddressSpace::new(0x1_0000, segments * 8);
        let mut s = ShadowMemory::new(&space, fill);
        for (&i, &v) in write_at.iter().zip(write_val.iter()) {
            s.set(i % segments, v);
        }
        let hi = lo + len;

        let restore = kernel::active().backend();
        let mut answers = Vec::new();
        for backend in Backend::ALL {
            kernel::force(backend);
            answers.push((
                s.first_ne(lo, hi, probe),
                s.first_ge(lo, hi, probe),
                s.all_eq(lo, hi, probe),
            ));
        }
        kernel::force(restore);
        // Reference on get(): the fill-tail ground truth.
        let expect = (
            (lo..hi).find(|&i| s.get(i) != probe),
            (lo..hi).find(|&i| s.get(i) >= probe),
            (lo..hi).all(|i| s.get(i) == probe),
        );
        for (backend, got) in Backend::ALL.iter().zip(&answers) {
            prop_assert_eq!(
                got, &expect,
                "{} lo={} hi={} probe={:#x}", backend, lo, hi, probe
            );
        }
    }
}

/// Deterministic pin of the worked threshold example across every backend —
/// the kernel-level mirror of `scan.rs`'s
/// `first_ge_handles_thresholds_above_128`.
#[test]
fn thresholds_above_128_agree_everywhere() {
    let mut v = vec![0u8, 10, 127, 128, 200, 250, 255, 3];
    v.extend(std::iter::repeat_n(0x40, 40)); // push past SSE2/AVX2 widths
    v.push(0xff);
    for backend in Backend::ALL {
        let k = kernel::select(backend);
        assert_eq!(k.first_ge(&v, 0), Some(0), "{}", k.name());
        assert_eq!(k.first_ge(&v, 1), Some(1), "{}", k.name());
        assert_eq!(k.first_ge(&v, 128), Some(3), "{}", k.name());
        assert_eq!(k.first_ge(&v, 129), Some(4), "{}", k.name());
        assert_eq!(k.first_ge(&v, 201), Some(5), "{}", k.name());
        assert_eq!(k.first_ge(&v, 251), Some(6), "{}", k.name());
        assert_eq!(k.first_ge(&v, 255), Some(6), "{}", k.name());
        assert_eq!(k.first_ge(&v[7..8], 255), None, "{}", k.name());
        assert_eq!(k.first_ge(&[1u8; 48], 2), None, "{}", k.name());
    }
}
