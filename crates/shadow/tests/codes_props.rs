//! Property tests for the shared folded-code algebra: encode/decode
//! round-trips for every legal code, decode safety for every *illegal* one,
//! and the monotonicity the single-comparison checks rely on.

use proptest::prelude::*;

use giantsan_shadow::codes::{
    addressable_bytes, exposed_bytes, exposes_prefix, folded, folding_degree, is_error, partial,
    partial_bytes, GOOD, MAX_DEGREE, MIN_FOLDED, PARTIAL_1, PARTIAL_7,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// decode(encode(degree)) round-trips: a (degree)-folded code decodes to
    /// exactly `8 · 2^degree` addressable bytes and back to its degree.
    #[test]
    fn folded_codes_round_trip(degree in 0u32..=MAX_DEGREE) {
        let code = folded(degree);
        prop_assert_eq!(folding_degree(code), Some(degree));
        prop_assert_eq!(addressable_bytes(code), 8u64 << degree);
        prop_assert_eq!(exposed_bytes(code), 8);
        prop_assert!(!is_error(code));
    }

    /// decode(encode(k)) round-trips for partial codes: a k-partial code
    /// exposes exactly k bytes within itself and none beyond its base.
    #[test]
    fn partial_codes_round_trip(k in 1u32..=7) {
        let code = partial(k);
        prop_assert_eq!(partial_bytes(code), Some(k));
        prop_assert_eq!(exposed_bytes(code), k as u64);
        prop_assert_eq!(addressable_bytes(code), 0);
        prop_assert!(!is_error(code));
    }

    /// Every 8-bit value decodes without panicking, the two decodes agree on
    /// "fully exposed", and the prefix comparison matches exposed_bytes —
    /// even for corrupted codes below MIN_FOLDED or error codes.
    #[test]
    fn decode_is_total_and_consistent(code in 0u8..=255) {
        let addr = addressable_bytes(code);
        let exp = exposed_bytes(code);
        // addressable_bytes counts whole segments from the base: nonzero iff
        // the segment is folded, in which case all 8 own bytes are exposed.
        prop_assert_eq!(addr >= 8, exp == 8);
        for needed in 1u8..=8 {
            prop_assert_eq!(
                exposes_prefix(code, needed),
                exp >= needed as u64,
                "code {} needed {}", code, needed
            );
        }
        // Classification is a partition: folded, partial, or error/invalid
        // (72 itself is unused — neither 0-partial nor an error code).
        let classes = [
            folding_degree(code).is_some(),
            partial_bytes(code).is_some(),
            is_error(code) || code < MIN_FOLDED || code == 72,
        ];
        prop_assert_eq!(classes.iter().filter(|c| **c).count(), 1, "code {}", code);
    }

    /// Monotonicity (paper §4.1): a smaller code never exposes fewer bytes,
    /// so threshold comparisons are sound.
    #[test]
    fn smaller_codes_expose_no_fewer_bytes(a in MIN_FOLDED..=u8::MAX, b in MIN_FOLDED..=u8::MAX) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(addressable_bytes(lo) >= addressable_bytes(hi));
        prop_assert!(exposed_bytes(lo) >= exposed_bytes(hi));
    }
}

#[test]
fn code_layout_constants() {
    assert_eq!(GOOD, 64);
    assert_eq!(MIN_FOLDED, GOOD - MAX_DEGREE as u8);
    assert_eq!(PARTIAL_7, 65);
    assert_eq!(PARTIAL_1, 71);
    // Corrupted low codes clamp instead of shifting out of range.
    assert_eq!(addressable_bytes(0), addressable_bytes(MIN_FOLDED));
}
