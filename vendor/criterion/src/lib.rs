//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a small API-compatible benchmark harness: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, throughput
//! annotation, and `criterion_group!` / `criterion_main!`. Measurement is a
//! straightforward warm-up + timed-batch loop reporting mean ns/iter (plus
//! derived throughput); there is no statistical analysis, HTML report, or
//! baseline comparison. Numbers print to stdout in a stable, greppable
//! format so harness tooling can consume them.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name, an optional
/// parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id made of a function name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id made of a parameter only (the group name carries the function).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted by the `bench_function` family: a plain string or an
/// explicit [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Converts into the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Units processed per iteration, used to derive a rate from the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.measure);
        f(&mut b);
        b.report(&id.label, None);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes batches by time,
    /// not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; adjusts the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.criterion.measure);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measure);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Timing loop handle given to benchmark closures.
pub struct Bencher {
    measure: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    fn new(measure: Duration) -> Self {
        Bencher {
            measure,
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Measures `routine`: a short warm-up sizes the batch, then batches run
    /// until the measurement window is filled.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: estimate the cost of one iteration (at least ~5ms of work
        // or 3 iterations, whichever is more).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(5) {
            hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut total_iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                hint::black_box(routine());
            }
            total_iters += batch;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
        self.iters = total_iters;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.mean_ns.is_nan() {
            println!("{label:<48} (no measurement: iter was never called)");
            return;
        }
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                let gib = n as f64 / self.mean_ns * 1e9 / (1024.0 * 1024.0 * 1024.0);
                format!("  thrpt: {gib:>9.3} GiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let meps = n as f64 / self.mean_ns * 1e9 / 1e6;
                format!("  thrpt: {meps:>9.3} Melem/s")
            }
            None => String::new(),
        };
        println!(
            "{label:<48} time: {:>12.1} ns/iter ({} iters){rate}",
            self.mean_ns, self.iters
        );
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`. CLI arguments (as passed by `cargo bench`)
/// are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        assert!(b.mean_ns.is_finite() && b.mean_ns > 0.0);
        assert!(b.iters > 0);
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = Criterion {
            measure: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Bytes(64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 64), &64u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| black_box(7)));
        group.bench_function("plain", |b| b.iter(|| black_box(1)));
        group.finish();
        c.bench_function("top-level", |b| b.iter(|| black_box(2)));
    }
}
