//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! Only [`Mutex`] with a non-poisoning `lock()` is needed (the thread cache
//! in `giantsan-runtime`). It wraps `std::sync::Mutex` and recovers from
//! poison, which matches `parking_lot`'s semantics closely enough for the
//! simulation: a panicking holder does not permanently wedge the lock.

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`'s API shape:
/// `lock()` returns the guard directly rather than a poison `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard released on drop; dereferences to the protected data.
pub struct MutexGuard<'a, T: ?Sized>(StdGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, a panic in
    /// a previous holder does not surface as an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(
            self.inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        )
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn survives_poison() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 1);
    }
}
