//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors an API-compatible replacement covering exactly the
//! surface the test suite exercises:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! * integer `Range` / `RangeInclusive` strategies,
//!   [`collection::vec`], and
//!   [`sample::select`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: case generation is *deterministic* (seeded per
//! test name), and there is no shrinking — a failing case prints its inputs
//! instead. For this repo's property tests (which probe exhaustive-ish small
//! domains over hundreds of cases) that trade-off costs little and keeps CI
//! runs reproducible.

/// Configuration and error types mirroring `proptest::test_runner`.
pub mod test_runner {
    use std::fmt;

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property assertion (carried out of the case body by
    /// `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure carrying `message`.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-case random source (splitmix64 over a seed derived
    /// from the test name and case index).
    #[derive(Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the property named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot draw from an empty domain");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Value-generation strategies mirroring `proptest::strategy`.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Generates one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "empty range strategy");
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The `Just` strategy: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible element-count range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `elem` and length drawn from
    /// `size` (a `usize`, `Range`, or `RangeInclusive`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies mirroring `proptest::sample`.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding clones of elements of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniformly selects one of `items` (which must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over an empty list");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

/// Prelude mirroring `proptest::prelude`: glob-import to get the macros,
/// `ProptestConfig`, `Strategy`, and the `prop` crate alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, v in prop::collection::vec(0i64..9, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)*
                let __args = format!("{:?}", ($(&$arg,)*));
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "property {} failed at case {}/{}: {}\n    args {}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __e,
                        stringify!(($($arg),*)),
                        __args,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the enclosing property case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    __a,
                    __b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the enclosing property case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    __a,
                    __b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_stay_in_bounds(
            a in 3u64..17,
            b in -24i64..640,
            c in 1u32..=8,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-24..640).contains(&b), "b was {b}");
            prop_assert!((1..=8).contains(&c));
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(1u64..600, 1..5),
            w in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (1..600).contains(&x)));
            prop_assert!([1u32, 2, 4, 8].contains(&w));
            prop_assert_eq!(w.count_ones(), 1);
            prop_assert_ne!(w, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut r1 = TestRng::for_case("x", 0);
        let mut r2 = TestRng::for_case("x", 0);
        let s = 0u64..1000;
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failure_panics_with_args() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x is only {x}");
            }
        }
        always_fails();
    }
}
