//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a tiny API-compatible replacement instead of the real
//! `rand`. Only what the workloads actually call is provided:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit generator (splitmix64 seeded
//!   xoshiro256++), seeded via [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over `Range` / `RangeInclusive` of the primitive
//!   integer types.
//!
//! The streams differ from upstream `rand`'s, which is fine: every consumer
//! in this repo treats the RNG as an arbitrary deterministic source (workload
//! shapes, shuffles), never as a reference stream. Determinism per seed —
//! which the differential fuzzer and benches rely on — is preserved.

use std::ops::{Range, RangeInclusive};

/// Seeding entry point; only the `u64` convenience constructor is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Maps a raw 64-bit draw into `[lo, hi)`. `hi` is exclusive; callers
    /// handle the inclusive case by widening before calling.
    fn from_draw(draw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_draw(draw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                assert!(span > 0, "cannot sample from empty range");
                let off = (draw as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive range that can be sampled for `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly within the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::from_draw(rng.next_u64(), self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + One> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        // Widen `hi` by one to reuse the half-open mapping. The workspace
        // never samples a range ending at the type's maximum value.
        T::from_draw(rng.next_u64(), lo, hi.plus_one())
    }
}

/// Internal helper so `RangeInclusive` sampling can widen its upper bound.
pub trait One {
    /// `self + 1`, panicking on overflow (unused at type maxima here).
    fn plus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            #[inline]
            fn plus_one(self) -> Self {
                self.checked_add(1).expect("inclusive range at type maximum")
            }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random-number source; mirrors the `rand::Rng` surface this repo uses.
pub trait Rng {
    /// Produces the next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

pub mod rngs {
    //! Concrete generators (only `StdRng` is provided).

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded through splitmix64, the
    /// same construction the xoshiro authors recommend. Statistically strong
    /// enough for workload shaping; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-24..640);
            assert!((-24..640).contains(&w));
            let x: u64 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&x));
            let y: i64 = rng.gen_range(0..=0);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..8 reachable");
    }
}
