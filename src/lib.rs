#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

//! # giantsan
//!
//! A comprehensive Rust reproduction of **GiantSan: Efficient Memory
//! Sanitization with Segment Folding** (Ling, Huang, Wang, Cai, Zhang —
//! ASPLOS 2024, <https://doi.org/10.1145/3620665.3640391>).
//!
//! This facade crate re-exports every subsystem of the workspace:
//!
//! * [`shadow`] — simulated address space + raw shadow memory substrate;
//! * [`runtime`] — allocator runtime (redzones, quarantine, stack) and the
//!   [`runtime::Sanitizer`] trait;
//! * [`core`] — the paper's contribution: segment-folding shadow encoding,
//!   O(1) region checks, quasi-bound history caching, anchor-based checks;
//! * [`baselines`] — ASan, ASan--, and LFP comparators;
//! * [`ir`] — the mini-IR and interpreter standing in for LLVM;
//! * [`analysis`] — static analyses and the instrumentation planner;
//! * [`workloads`] — SPEC-like, Juliet-like, CVE, Magma-like and traversal
//!   workload generators;
//! * [`harness`] — table/figure reproduction drivers.
//!
//! # Quickstart
//!
//! ```
//! use giantsan::core::GiantSan;
//! use giantsan::runtime::{AccessKind, Region, RuntimeConfig, Sanitizer};
//!
//! let mut san = GiantSan::new(RuntimeConfig::small());
//! let buf = san.alloc(1024, Region::Heap).unwrap();
//!
//! // One O(1) check protects the whole 1 KiB operation: this is the
//! // paper's headline over ASan's 128 shadow loads for the same region.
//! assert!(san
//!     .check_region(buf.base, buf.base + 1024, AccessKind::Write)
//!     .is_ok());
//!
//! // Overflows past the redzone-protected end are reported.
//! assert!(san
//!     .check_region(buf.base, buf.base + 1025, AccessKind::Write)
//!     .is_err());
//! ```

pub use giantsan_analysis as analysis;
pub use giantsan_baselines as baselines;
pub use giantsan_core as core;
pub use giantsan_harness as harness;
pub use giantsan_ir as ir;
pub use giantsan_runtime as runtime;
pub use giantsan_shadow as shadow;
pub use giantsan_workloads as workloads;
